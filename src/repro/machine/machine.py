"""The simulated multicomputer: nodes, active messages, hardware barrier.

Modeling decisions (documented here because they shape every number the
benchmarks print):

* **Handlers run on a coprocessor.**  On a real CM-5, CMAML handlers
  steal cycles from the destination CPU via polling or interrupts.  We
  instead execute handlers "beside" the destination's compute task:
  a requester observes the full round-trip latency (send overhead +
  wire + per-word + dispatch + handler), but the destination's compute
  task is not slowed.  This keeps the trampoline simple and preserves
  the relative costs the paper's figures depend on (protocol traffic
  and per-access software overhead), at the price of slightly
  flattering communication-heavy runs on *both* systems equally.
* **Handlers are atomic.**  A handler executes at a single simulated
  instant, exactly like an interrupt-level CMAML handler that may not
  block.  Handlers that need multi-step work (e.g. a home node
  forwarding a request to the current owner) send further messages and
  park continuation state in the protocol's tables — the classical
  directory-protocol structure.
* **The control network exists.**  The CM-5 had a dedicated control
  network for barriers; CRL uses it.  :meth:`Machine.hw_barrier` models
  it as a fixed-cost global rendezvous.
"""

from __future__ import annotations

from typing import Callable

from repro.machine.config import MachineConfig
from repro.machine.stats import Stats
from repro.sim import Delay, Future, Simulator


class Node:
    """One processing node.  Layers stash per-node state in attributes."""

    __slots__ = ("machine", "nid", "state")

    def __init__(self, machine: "Machine", nid: int):
        self.machine = machine
        self.nid = nid
        # Per-layer private state, keyed by layer name ("crl", "ace", ...).
        self.state: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.nid}>"


class Machine:
    """A set of nodes joined by an active-message network.

    Parameters
    ----------
    sim:
        The simulator driving this machine.
    config:
        Cycle-cost model; defaults to the CM-5-flavoured constants.
    """

    HW_BARRIER_COST = 170  # ~5us on a 33MHz node: CM-5 control network barrier

    def __init__(self, sim: Simulator, config: MachineConfig | None = None):
        self.sim = sim
        self.config = config or MachineConfig()
        self.nodes = [Node(self, i) for i in range(self.config.n_procs)]
        self.stats = Stats()
        self._barrier_count = 0
        self._barrier_gen = 0
        self._barrier_fut = Future(name="hw_barrier:0")

    @property
    def n_procs(self) -> int:
        return self.config.n_procs

    # -- active messages -------------------------------------------------
    def am_request(
        self,
        src: int,
        dst: int,
        handler: Callable,
        *args,
        payload_words: int = 0,
        category: str = "am.request",
    ):
        """Generator: inject a message from the *calling task* on ``src``.

        Charges the caller the send overhead, then delivers
        ``handler(dst_node, src, *args)`` after the network latency.
        Returns as soon as the message is injected (one-way send).
        """
        yield Delay(self.config.am_send_overhead)
        self._deliver(src, dst, handler, args, payload_words, category)

    def post(
        self,
        src: int,
        dst: int,
        handler: Callable,
        *args,
        payload_words: int = 0,
        category: str = "am.post",
    ) -> None:
        """Send a message from *handler context* (no task to charge).

        The sender-side overhead is folded into the delivery latency,
        modeling the coprocessor injecting the message.
        """
        self.sim.schedule(
            self.config.am_send_overhead,
            lambda: self._deliver(src, dst, handler, args, payload_words, category),
        )

    def _deliver(self, src, dst, handler, args, payload_words, category) -> None:
        if not (0 <= dst < self.n_procs):
            raise ValueError(f"bad destination node {dst}")
        self.stats.count(f"msg.{category}")
        self.stats.count("msg.total")
        self.stats.count("msg.words", payload_words)
        delay = self.config.message_cost(payload_words) + self.config.am_receive_overhead
        node = self.nodes[dst]

        def arrive():
            self.stats.count(f"handler.{getattr(handler, '__name__', 'anon')}")
            result = handler(node, src, *args)
            if result is not None and hasattr(result, "send"):
                # Handler needs to block (rare): promote it to a task.
                self.sim.spawn(result, name=f"handler@{dst}")

        self.sim.schedule(delay, arrive)

    def rpc(
        self,
        src: int,
        dst: int,
        handler: Callable,
        *args,
        payload_words: int = 0,
        category: str = "am.rpc",
    ):
        """Generator: request/reply round trip; returns the reply value.

        The handler receives a :class:`Future` as its first payload
        argument and must eventually call :meth:`reply` on it (possibly
        from a later handler on another node).
        """
        fut = Future(name=f"rpc:{category}")
        yield from self.am_request(
            src, dst, handler, fut, *args, payload_words=payload_words, category=category
        )
        value = yield fut
        return value

    def reply(self, fut: Future, value=None, payload_words: int = 0, category: str = "am.reply") -> None:
        """From handler context: resolve an RPC future after the reply latency."""
        self.stats.count(f"msg.{category}")
        self.stats.count("msg.total")
        self.stats.count("msg.words", payload_words)
        delay = (
            self.config.am_send_overhead
            + self.config.message_cost(payload_words)
            + self.config.am_receive_overhead
        )
        self.sim.schedule(delay, lambda: fut.resolve(value))

    # -- control network ---------------------------------------------------
    def hw_barrier(self, nid: int):
        """Generator: global barrier over all nodes via the control network.

        Every node must call this the same number of times; the cost is
        a fixed ``HW_BARRIER_COST`` after the last arrival.
        """
        del nid  # participation is global; the id only documents the caller
        self._barrier_count += 1
        self.stats.count("barrier.hw_arrive")
        fut = self._barrier_fut
        if self._barrier_count == self.n_procs:
            self._barrier_count = 0
            self._barrier_gen += 1
            self._barrier_fut = Future(name=f"hw_barrier:{self._barrier_gen}")
            released = fut
            self.sim.schedule(self.HW_BARRIER_COST, lambda: released.resolve(None))
        yield fut
