"""The simulated multicomputer: nodes, active messages, hardware barrier.

Modeling decisions (documented here because they shape every number the
benchmarks print):

* **Handlers run on a coprocessor.**  On a real CM-5, CMAML handlers
  steal cycles from the destination CPU via polling or interrupts.  We
  instead execute handlers "beside" the destination's compute task:
  a requester observes the full round-trip latency (send overhead +
  wire + per-word + dispatch + handler), but the destination's compute
  task is not slowed.  This keeps the trampoline simple and preserves
  the relative costs the paper's figures depend on (protocol traffic
  and per-access software overhead), at the price of slightly
  flattering communication-heavy runs on *both* systems equally.
* **Handlers are atomic.**  A handler executes at a single simulated
  instant, exactly like an interrupt-level CMAML handler that may not
  block.  Handlers that need multi-step work (e.g. a home node
  forwarding a request to the current owner) send further messages and
  park continuation state in the protocol's tables — the classical
  directory-protocol structure.
* **The control network exists.**  The CM-5 had a dedicated control
  network for barriers; CRL uses it.  :meth:`Machine.hw_barrier` models
  it as a fixed-cost global rendezvous.
"""

from __future__ import annotations

from functools import partial
from heapq import heappush as _heappush
from typing import Callable

from repro.machine.config import MachineConfig
from repro.machine.stats import Stats, intern_key
from repro.sim import Delay, Future, Simulator


class Node:
    """One processing node.  Layers stash per-node state in attributes."""

    __slots__ = ("machine", "nid", "state")

    def __init__(self, machine: "Machine", nid: int):
        self.machine = machine
        self.nid = nid
        # Per-layer private state, keyed by layer name ("crl", "ace", ...).
        self.state: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.nid}>"


class Machine:
    """A set of nodes joined by an active-message network.

    Parameters
    ----------
    sim:
        The simulator driving this machine.
    config:
        Cycle-cost model; defaults to the CM-5-flavoured constants.
    tracer:
        Optional :class:`repro.obs.TraceBuffer`.  When given, message
        delivery, RPC, and reply paths are **swapped at construction**
        for traced variants that emit causal ``msg.send``/``msg.recv``
        and ``rpc.call``/``rpc.return`` events, feed per-category
        round-trip latency histograms, and bump per-node
        ``node<i>.msg.*`` counters.  With ``tracer=None`` the class
        methods run unchanged — the disabled path is byte-for-byte the
        pre-observability fast path, so it costs nothing.
    """

    HW_BARRIER_COST = 170  # ~5us on a 33MHz node: CM-5 control network barrier

    def __init__(self, sim: Simulator, config: MachineConfig | None = None, tracer=None):
        self.sim = sim
        self.config = config or MachineConfig()
        self.nodes = [Node(self, i) for i in range(self.config.n_procs)]
        self.stats = Stats()
        self._barrier_count = 0
        self._barrier_gen = 0
        self._barrier_fut = Future(name="hw_barrier:0")
        # Hot-path caches: stat keys are built once per distinct
        # category/handler (not one f-string per message), counters are
        # bumped through the raw mapping, and the fixed parts of the
        # message-cost formula are hoisted out of the dataclass.
        self._counts = self.stats.counter_ref()
        self._msg_keys: dict = {}
        self._handler_keys: dict = {}
        self._rpc_names: dict = {}
        self._recv_base = self.config.network_latency + self.config.am_receive_overhead
        self._reply_base = self.config.am_send_overhead + self._recv_base
        self._per_word = self.config.per_word_transfer
        self._d_send = Delay(self.config.am_send_overhead)
        # Observability (DESIGN.md §7): decided once, here.  Traced
        # variants shadow the class methods via instance attributes;
        # their scheduling (delay, seq) streams are identical to the
        # fast path, so simulated cycles do not move.
        self.tracer = tracer
        if tracer is not None:
            self._obs = tracer.tracer("machine")
            self._deliver = self._deliver_traced
            self.rpc = self._rpc_traced
            self.reply = self._reply_traced
            self.post = self._post_traced
            self.defer_post = self._defer_post_traced
            self._node_sent = [
                self.stats.node(i).key("msg.sent") for i in range(self.config.n_procs)
            ]
            self._node_recv = [
                self.stats.node(i).key("msg.recv") for i in range(self.config.n_procs)
            ]
            # Per-(src, category) RPC histogram handles, cached so the
            # round-trip hot path never builds a "node<i>.rpc.<cat>"
            # string twice; run_summary merges them cluster-wide.
            self._rpc_hist_cache = {}
        else:
            self._obs = None

    def _msg_key(self, category: str) -> str:
        key = self._msg_keys.get(category)
        if key is None:
            key = self._msg_keys[category] = intern_key("msg", category)
        return key

    @property
    def n_procs(self) -> int:
        return self.config.n_procs

    # -- active messages -------------------------------------------------
    def am_request(
        self,
        src: int,
        dst: int,
        handler: Callable,
        *args,
        payload_words: int = 0,
        category: str = "am.request",
    ):
        """Generator: inject a message from the *calling task* on ``src``.

        Charges the caller the send overhead, then delivers
        ``handler(dst_node, src, *args)`` after the network latency.
        Returns as soon as the message is injected (one-way send).
        """
        yield self._d_send
        self._deliver(src, dst, handler, args, payload_words, category)

    def post(
        self,
        src: int,
        dst: int,
        handler: Callable,
        *args,
        payload_words: int = 0,
        category: str = "am.post",
    ) -> None:
        """Send a message from *handler context* (no task to charge).

        The sender-side overhead is folded into the delivery latency,
        modeling the coprocessor injecting the message.
        """
        self.sim.schedule(
            self.config.am_send_overhead,
            partial(self._deliver, src, dst, handler, args, payload_words, category),
        )

    def defer_post(
        self,
        delay: int,
        src: int,
        dst: int,
        handler: Callable,
        *args,
        payload_words: int = 0,
        category: str = "am.post",
    ) -> None:
        """``after(delay)`` then :meth:`post`, as one fabric operation.

        Handler-side deferred work that ends in a send (e.g. the
        invalidation-handler cost before the ack leaves) goes through
        here so the traced variant can capture the causal context *now*
        — by the time the deferral fires, the handler extent is gone.
        Cost model: identical to ``schedule(delay, lambda: post(...))``
        (two schedule draws, same delays).
        """
        self.sim.schedule(
            delay,
            partial(
                self.post, src, dst, handler, *args,
                payload_words=payload_words, category=category,
            ),
        )

    def _deliver(self, src, dst, handler, args, payload_words, category) -> None:
        if not (0 <= dst < self.n_procs):
            raise ValueError(f"bad destination node {dst}")
        counts = self._counts
        key = self._msg_keys.get(category)
        if key is None:
            key = self._msg_keys[category] = intern_key("msg", category)
        counts[key] += 1
        counts["msg.total"] += 1
        counts["msg.words"] += payload_words
        delay = self._recv_base + self._per_word * payload_words
        # The arrival event is a C-level partial rather than a closure:
        # closing over seven variables would turn them all into cells
        # and slow the whole delivery path down.
        fn = partial(self._arrive, self.nodes[dst], src, handler, args)
        # sim.schedule(delay, fn), inlined — delivery is the hottest
        # scheduling site outside the kernel itself.  delay is always
        # positive (recv_base includes the network latency), so the
        # same-cycle ring never applies here.
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        jitter = sim._jitter
        if jitter is not None:
            _heappush(sim._queue, (sim.now + delay, jitter.random(), seq, fn))
        else:
            _heappush(sim._queue, (sim.now + delay, seq, fn))

    def _arrive(self, node, src, handler, args) -> None:
        # Handler stats are keyed by the handler object itself: callers
        # pass pre-bound methods, so the probe is an identity hit.
        handler_keys = self._handler_keys
        hkey = handler_keys.get(handler)
        if hkey is None:
            hname = getattr(handler, "__name__", "anon")
            hkey = handler_keys[handler] = intern_key("handler", hname)
        self._counts[hkey] += 1
        result = handler(node, src, *args)
        if result is not None and hasattr(result, "send"):
            # Handler needs to block (rare): promote it to a task.
            self.sim.spawn(result, name=f"handler@{node.nid}")

    # -- traced variants (installed over the fast path by __init__) -----
    # Each mirrors its untraced twin exactly — same counter bumps, same
    # inlined schedule with the same (delay, seq) draws — plus causal
    # event emission.  Keeping them separate (instead of branching
    # inside the fast path) is what makes tracing-off literally free.
    def _ctx(self) -> int:
        """Current dispatch context (task step or handler receive), or -1.

        The ts guard rejects stale contexts: a dispatch that set no
        context of its own (a bare scheduled partial) inherits one only
        within the same cycle, where the resulting zero-weight edge is
        harmless.
        """
        buf = self.tracer
        return buf.ctx_eid if buf.ctx_ts == self.sim.now else -1

    def _post_traced(self, src, dst, handler, *args, payload_words=0, category="am.post"):
        # Same schedule as post() (send overhead folded into delivery);
        # the causal parent is captured *now*, because by the time the
        # partial fires the emitting extent is gone.
        self.sim.schedule(
            self.config.am_send_overhead,
            partial(
                self._deliver_traced,
                src, dst, handler, args, payload_words, category, self._ctx(),
            ),
        )

    def _defer_post_traced(self, delay, src, dst, handler, *args, payload_words=0, category="am.post"):
        # Two schedule draws with the same delays as the untraced
        # defer_post; only the captured causal parent differs.
        self.sim.schedule(
            delay,
            partial(
                self._post_parent_traced,
                self._ctx(), src, dst, handler, args, payload_words, category,
            ),
        )

    def _post_parent_traced(self, parent, src, dst, handler, args, payload_words, category):
        self.sim.schedule(
            self.config.am_send_overhead,
            partial(self._deliver_traced, src, dst, handler, args, payload_words, category, parent),
        )

    def _deliver_traced(self, src, dst, handler, args, payload_words, category, parent=-1):
        if not (0 <= dst < self.n_procs):
            raise ValueError(f"bad destination node {dst}")
        if parent == -1:
            parent = self._ctx()
        counts = self._counts
        key = self._msg_keys.get(category)
        if key is None:
            key = self._msg_keys[category] = intern_key("msg", category)
        counts[key] += 1
        counts["msg.total"] += 1
        counts["msg.words"] += payload_words
        counts[self._node_sent[src]] += 1
        counts[self._node_recv[dst]] += 1
        eid = self._obs.emit(
            self.sim.now,
            "msg.send",
            node=src,
            parent=parent,
            data={"dst": dst, "category": category, "words": payload_words},
        )
        delay = self._recv_base + self._per_word * payload_words
        fn = partial(self._arrive_traced, eid, self.nodes[dst], src, handler, args)
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        jitter = sim._jitter
        if jitter is not None:
            _heappush(sim._queue, (sim.now + delay, jitter.random(), seq, fn))
        else:
            _heappush(sim._queue, (sim.now + delay, seq, fn))

    def _arrive_traced(self, parent_eid, node, src, handler, args) -> None:
        handler_keys = self._handler_keys
        hkey = handler_keys.get(handler)
        if hkey is None:
            hname = getattr(handler, "__name__", "anon")
            hkey = handler_keys[handler] = intern_key("handler", hname)
        self._counts[hkey] += 1
        eid = self._obs.emit(
            self.sim.now,
            "msg.recv",
            node=node.nid,
            parent=parent_eid,
            data={"src": src, "handler": hkey[len("handler."):]},
        )
        buf = self.tracer
        prev_eid, prev_ts = buf.ctx_eid, buf.ctx_ts
        buf.ctx_eid = eid
        buf.ctx_ts = self.sim.now
        try:
            result = handler(node, src, *args)
        finally:
            buf.ctx_eid, buf.ctx_ts = prev_eid, prev_ts
        if result is not None and hasattr(result, "send"):
            self.sim.spawn(result, name=f"handler@{node.nid}")

    def _rpc_traced(self, src, dst, handler, *args, payload_words: int = 0, category: str = "am.rpc"):
        name = self._rpc_names.get(category)
        if name is None:
            name = self._rpc_names[category] = intern_key("rpc:" + category)
        obs = self._obs
        t0 = self.sim.now
        eid = obs.emit(t0, "rpc.call", node=src, data={"dst": dst, "category": category})
        fut = Future(name=name)
        yield self._d_send
        self._deliver_traced(src, dst, handler, (fut, *args), payload_words, category, parent=eid)
        value = yield fut
        # Round trip as the caller experienced it (send overhead, both
        # wire legs, handler work) — the trace-level "stall time".
        # Recorded per node so run_summary can show both the cluster
        # aggregate (via Histogram.merge) and per-node tails.
        lat = self.sim.now - t0
        hist = self._rpc_hist_cache.get((src, category))
        if hist is None:
            hist = self._rpc_hist_cache[(src, category)] = self.tracer.hist(
                f"node{src}.rpc.{category}"
            )
        hist.add(lat)
        obs.emit(
            self.sim.now,
            "rpc.return",
            node=src,
            parent=eid,
            data={"category": category, "lat": lat},
        )
        return value

    def _reply_traced(self, fut: Future, value=None, payload_words: int = 0, category: str = "am.reply") -> None:
        counts = self._counts
        key = self._msg_keys.get(category)
        if key is None:
            key = self._msg_keys[category] = intern_key("msg", category)
        counts[key] += 1
        counts["msg.total"] += 1
        counts["msg.words"] += payload_words
        # Replies carry no explicit src/dst (the future is the address),
        # so the events sit on the global track; the flow arrow still
        # links send to receive, and the context parent links the reply
        # back to the request (or task dispatch) it services.
        eid = self._obs.emit(
            self.sim.now,
            "msg.send",
            parent=self._ctx(),
            data={"category": category, "words": payload_words},
        )
        delay = self._reply_base + self._per_word * payload_words
        fn = partial(self._reply_arrive_traced, eid, category, fut, value)
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        jitter = sim._jitter
        if jitter is not None:
            _heappush(sim._queue, (sim.now + delay, jitter.random(), seq, fn))
        else:
            _heappush(sim._queue, (sim.now + delay, seq, fn))

    def _reply_arrive_traced(self, parent_eid, category, fut, value) -> None:
        eid = self._obs.emit(
            self.sim.now,
            "msg.recv",
            parent=parent_eid,
            data={"category": category, "future": fut.name},
        )
        # Stamp the waker: the task.step this resolve wakes will parent
        # to this receive, carrying the critical path across the wire.
        fut._obs_eid = eid
        fut.resolve(value)

    def rpc(
        self,
        src: int,
        dst: int,
        handler: Callable,
        *args,
        payload_words: int = 0,
        category: str = "am.rpc",
    ):
        """Generator: request/reply round trip; returns the reply value.

        The handler receives a :class:`Future` as its first payload
        argument and must eventually call :meth:`reply` on it (possibly
        from a later handler on another node).
        """
        name = self._rpc_names.get(category)
        if name is None:
            name = self._rpc_names[category] = intern_key("rpc:" + category)
        fut = Future(name=name)
        # am_request, inlined: the delegation frame would otherwise sit
        # on the resume path of every round trip in the system.
        yield self._d_send
        self._deliver(src, dst, handler, (fut, *args), payload_words, category)
        value = yield fut
        return value

    def reply(self, fut: Future, value=None, payload_words: int = 0, category: str = "am.reply") -> None:
        """From handler context: resolve an RPC future after the reply latency."""
        counts = self._counts
        key = self._msg_keys.get(category)
        if key is None:
            key = self._msg_keys[category] = intern_key("msg", category)
        counts[key] += 1
        counts["msg.total"] += 1
        counts["msg.words"] += payload_words
        delay = self._reply_base + self._per_word * payload_words
        fn = fut.resolve if value is None else partial(fut.resolve, value)
        # sim.schedule(delay, fn), inlined; delay > 0 (it includes a
        # full send + receive overhead), so the ring never applies.
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        jitter = sim._jitter
        if jitter is not None:
            _heappush(sim._queue, (sim.now + delay, jitter.random(), seq, fn))
        else:
            _heappush(sim._queue, (sim.now + delay, seq, fn))

    # -- control network ---------------------------------------------------
    def hw_barrier(self, nid: int):
        """Generator: global barrier over all nodes via the control network.

        Every node must call this the same number of times; the cost is
        a fixed ``HW_BARRIER_COST`` after the last arrival.
        """
        self._barrier_count += 1
        self.stats.count("barrier.hw_arrive")
        obs = self._obs
        epoch = self._barrier_gen
        if obs is not None:
            arrive_eid = obs.emit(self.sim.now, "barrier.arrive", node=nid, data={"epoch": epoch})
        fut = self._barrier_fut
        if self._barrier_count == self.n_procs:
            self._barrier_count = 0
            self._barrier_gen += 1
            self._barrier_fut = Future(name=f"hw_barrier:{self._barrier_gen}")
            released = fut
            if obs is None:
                self.sim.schedule(self.HW_BARRIER_COST, lambda: released.resolve(None))
            else:
                # The release is caused by the *last* arrival — this
                # one — so the edge carries exactly HW_BARRIER_COST and
                # every woken task.step parents to the release.
                def _release():
                    released._obs_eid = obs.emit(
                        self.sim.now,
                        "barrier.release",
                        parent=arrive_eid,
                        data={"epoch": epoch},
                    )
                    released.resolve(None)

                self.sim.schedule(self.HW_BARRIER_COST, _release)
        yield fut
