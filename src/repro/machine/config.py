"""Machine cost model.

All constants are simulated cycles on a 33 MHz SPARC-class node (one
cycle ~ 30 ns).  They are deliberately CM-5-flavoured — a short active
message costs a few microseconds end to end — but only *relative*
magnitudes matter for the reproduced figures, and every experiment can
override them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineConfig:
    """Cycle costs for the simulated multicomputer.

    Attributes
    ----------
    n_procs:
        Number of processing nodes (the paper uses 32).
    am_send_overhead:
        Cycles the *sender's* CPU spends injecting an active message.
    am_receive_overhead:
        Cycles of dispatch overhead at the receiver before the handler runs.
    network_latency:
        Wire/switch latency for the first word of a message.
    per_word_transfer:
        Additional cycles per 8-byte payload word (bulk-transfer rate).
    handler_cost:
        Base cost of executing a (non-trivial) protocol handler body.
    """

    n_procs: int = 32
    am_send_overhead: int = 60
    am_receive_overhead: int = 40
    network_latency: int = 100
    per_word_transfer: int = 4
    handler_cost: int = 30

    def __post_init__(self):
        if self.n_procs < 1:
            raise ValueError(f"n_procs must be >= 1, got {self.n_procs}")
        for field in (
            "am_send_overhead",
            "am_receive_overhead",
            "network_latency",
            "per_word_transfer",
            "handler_cost",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")

    def message_cost(self, payload_words: int = 0) -> int:
        """One-way delivery time for a message carrying ``payload_words`` words."""
        return self.network_latency + self.per_word_transfer * payload_words

    def with_(self, **kw) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)
