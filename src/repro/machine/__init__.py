"""Simulated distributed-memory multicomputer with Active Messages.

Models the paper's evaluation platform — a 32-node Thinking Machines
CM-5 running CMAML active messages — as a configurable cost model on
top of :mod:`repro.sim`.  All higher layers (the CRL baseline, the Ace
runtime, every protocol) communicate exclusively through
:meth:`Machine.am_request` / :meth:`Machine.am_reply`, mirroring the
paper's claim that "Ace is portable to any system that supports an
Active Messages mechanism".
"""

from repro.machine.config import MachineConfig
from repro.machine.machine import Machine, Node
from repro.machine.stats import PhaseScopeError, Stats

__all__ = ["Machine", "MachineConfig", "Node", "PhaseScopeError", "Stats"]
