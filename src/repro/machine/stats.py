"""Event counters for experiments.

A single :class:`Stats` object hangs off each :class:`~repro.machine.machine.Machine`;
runtimes and protocols increment named counters (message categories,
protocol transitions, stall cycles) and the benchmark harness renders
them next to execution times.  Counters are plain integers keyed by
string so new layers never need schema changes.

Counter keys on hot paths should be built **once** — with
:func:`intern_key` at engine-construction time — not via an f-string
per call: interning makes every later dict probe an identity-fast
hash hit and keeps key construction off the per-event path.  Layers
that bump several counters per simulated message may also grab the
raw mapping via :meth:`Stats.counter_ref` and update it in place,
trading a method call per bump for a plain dict operation.
"""

from __future__ import annotations

import sys
from collections import Counter


def intern_key(*parts: str) -> str:
    """Join ``parts`` with dots and intern the result.

    Call at setup time (engine/runtime ``__init__``) to pre-build the
    stat keys a hot path will use, e.g. ``intern_key(prefix, "read_hit")``.
    """
    return sys.intern(".".join(parts))


class Stats:
    """Hierarchical string-keyed counters (convention: ``layer.event``)."""

    def __init__(self):
        self._counts: Counter = Counter()

    def count(self, key: str, n: int = 1) -> None:
        """Add ``n`` to counter ``key``."""
        self._counts[key] += n

    def counter_ref(self) -> Counter:
        """The live underlying mapping, for hot paths that bump several
        counters per event.  Mutate only by incrementing values; the
        reference stays valid for the lifetime of this object
        (:meth:`reset` clears it in place)."""
        return self._counts

    def get(self, key: str) -> int:
        """Current value of ``key`` (0 if never counted)."""
        return self._counts[key]

    def with_prefix(self, prefix: str) -> dict:
        """All counters whose key starts with ``prefix`` (dot-joined)."""
        if not prefix.endswith("."):
            prefix = prefix + "."
        return {k: v for k, v in self._counts.items() if k.startswith(prefix)}

    def snapshot(self) -> dict:
        """Copy of every counter, for diffing before/after a phase."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero all counters."""
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Stats({body})"
