"""Event counters for experiments.

A single :class:`Stats` object hangs off each :class:`~repro.machine.machine.Machine`;
runtimes and protocols increment named counters (message categories,
protocol transitions, stall cycles) and the benchmark harness renders
them next to execution times.  Counters are plain integers keyed by
string so new layers never need schema changes.

Counter keys on hot paths should be built **once** — with
:func:`intern_key` at engine-construction time — not via an f-string
per call: interning makes every later dict probe an identity-fast
hash hit and keeps key construction off the per-event path.  Layers
that bump several counters per simulated message may also grab the
raw mapping via :meth:`Stats.counter_ref` and update it in place,
trading a method call per bump for a plain dict operation.
"""

from __future__ import annotations

import sys
from collections import Counter
from contextlib import contextmanager


class PhaseScopeError(ValueError):
    """Unbalanced phase scoping: a pop without a push, or phases left
    open at the end of a run.

    Subclasses :class:`ValueError` for backwards compatibility; carries
    the offending phase stack so callers (and CI logs) see exactly
    which pushes were never matched.
    """

    def __init__(self, message: str, stack: list[str]):
        stacked = " > ".join(stack) if stack else "<empty>"
        super().__init__(f"{message} (phase stack: {stacked})")
        #: innermost-last names of the phases open when the error fired
        self.stack = list(stack)


def intern_key(*parts: str) -> str:
    """Join ``parts`` with dots and intern the result.

    Call at setup time (engine/runtime ``__init__``) to pre-build the
    stat keys a hot path will use, e.g. ``intern_key(prefix, "read_hit")``.
    """
    return sys.intern(".".join(parts))


class _NodeStats:
    """Per-node counting adapter: ``stats.node(3).count("msg.sent")``
    bumps ``node3.msg.sent`` in the owning :class:`Stats`.

    Keys are interned once per (node, key) pair and cached, so a layer
    that keeps the adapter around pays one dict probe per bump — the
    same discipline as :func:`intern_key`.  The adapter writes through
    to the owner's live mapping, so it composes with
    :meth:`Stats.counter_ref` and survives :meth:`Stats.reset`.
    """

    __slots__ = ("_counts", "_prefix", "_keys")

    def __init__(self, stats: "Stats", nid: int):
        self._counts = stats._counts
        self._prefix = f"node{nid}."
        self._keys: dict[str, str] = {}

    def count(self, key: str, n: int = 1) -> None:
        k = self._keys.get(key)
        if k is None:
            k = self._keys[key] = sys.intern(self._prefix + key)
        self._counts[k] += n

    def key(self, key: str) -> str:
        """The full interned key this adapter bumps for ``key``."""
        k = self._keys.get(key)
        if k is None:
            k = self._keys[key] = sys.intern(self._prefix + key)
        return k


class Stats:
    """Hierarchical string-keyed counters (convention: ``layer.event``).

    Beyond flat counting, two scoping mechanisms feed the
    observability layer (DESIGN.md §7) without touching the hot path:

    * **Phases** — :meth:`push_phase`/:meth:`pop_phase` bracket a
      program region; the pop computes the counter delta across the
      region and accumulates it under the phase name in :attr:`phases`.
      Scoping is snapshot-based, so counting itself never checks for
      an active phase: a phase costs two dict copies total, zero per
      event.
    * **Per node** — :meth:`node` returns a cached adapter that counts
      under a ``node<i>.`` prefix with interned keys.
    """

    def __init__(self):
        self._counts: Counter = Counter()
        self._phase_stack: list[tuple[str, dict]] = []
        self._node_scopes: dict[int, _NodeStats] = {}
        #: accumulated per-phase counter deltas: {name: Counter}
        self.phases: dict[str, Counter] = {}

    def count(self, key: str, n: int = 1) -> None:
        """Add ``n`` to counter ``key``."""
        self._counts[key] += n

    def counter_ref(self) -> Counter:
        """The live underlying mapping, for hot paths that bump several
        counters per event.  Mutate only by incrementing values; the
        reference stays valid for the lifetime of this object
        (:meth:`reset` clears it in place)."""
        return self._counts

    def get(self, key: str) -> int:
        """Current value of ``key`` (0 if never counted)."""
        return self._counts[key]

    def with_prefix(self, prefix: str) -> dict:
        """All counters under ``prefix`` in the dot hierarchy.

        The prefix matches **whole dot-separated tokens**: it selects
        the bare key ``prefix`` itself and every ``prefix.<rest>``,
        and never crosses a token boundary (``with_prefix("crl")``
        does *not* match ``crlx.y``).  A trailing dot is a pure
        spelling variant: ``with_prefix("crl.")`` ≡
        ``with_prefix("crl")``, bare key included.
        """
        bare = prefix.rstrip(".")
        dotted = bare + "."
        return {
            k: v for k, v in self._counts.items() if k == bare or k.startswith(dotted)
        }

    def by_node(self, prefix: str | None = None) -> dict:
        """Counters grouped by node id: ``{nid: {rest: value}}``.

        Selects every ``node<i>.<rest>`` counter; with ``prefix``, only
        those whose ``rest`` matches it under the same whole-token rule
        as :meth:`with_prefix`.  The summarizers in
        :mod:`repro.obs.export` and ``tools/profile.py`` use this to
        render per-node tables without re-parsing key strings.
        """
        bare = None if prefix is None else prefix.rstrip(".")
        dotted = None if bare is None else bare + "."
        out: dict[int, dict] = {}
        for key, v in self._counts.items():
            if not key.startswith("node"):
                continue
            head, _, rest = key.partition(".")
            nid = head[4:]
            if not rest or not nid.isdigit():
                continue
            if dotted is not None and rest != bare and not rest.startswith(dotted):
                continue
            out.setdefault(int(nid), {})[rest] = v
        return out

    # -- scoping --------------------------------------------------------
    def node(self, nid: int) -> _NodeStats:
        """Cached per-node counting adapter (keys under ``node<nid>.``)."""
        scope = self._node_scopes.get(nid)
        if scope is None:
            scope = self._node_scopes[nid] = _NodeStats(self, nid)
        return scope

    @property
    def current_phase(self) -> str | None:
        """Name of the innermost open phase (None outside any phase)."""
        return self._phase_stack[-1][0] if self._phase_stack else None

    def push_phase(self, name: str) -> None:
        """Begin a named phase (nestable; pops must match pushes)."""
        self._phase_stack.append((name, dict(self._counts)))

    def open_phases(self) -> list[str]:
        """Names of the currently open phases, outermost first."""
        return [name for name, _ in self._phase_stack]

    def require_balanced(self) -> None:
        """Raise :class:`PhaseScopeError` if any phase is still open.

        Called at the end of a run: a leftover push would silently
        misattribute every later counter bump to a phase the program
        thought it had closed.
        """
        if self._phase_stack:
            raise PhaseScopeError(
                f"{len(self._phase_stack)} phase(s) still open at end of run",
                self.open_phases(),
            )

    def pop_phase(self) -> dict:
        """End the innermost phase; accumulate and return its delta."""
        if not self._phase_stack:
            raise PhaseScopeError("pop_phase with no phase pushed", [])
        name, base = self._phase_stack.pop()
        get = base.get
        delta = {k: d for k, v in self._counts.items() if (d := v - get(k, 0))}
        self.phases.setdefault(name, Counter()).update(delta)
        return delta

    @contextmanager
    def phase(self, name: str):
        """Context manager form of :meth:`push_phase`/:meth:`pop_phase`."""
        self.push_phase(name)
        try:
            yield self
        finally:
            self.pop_phase()

    def snapshot(self) -> dict:
        """Copy of every counter, for diffing before/after a phase."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero all counters and forget phases.

        The mapping handed out by :meth:`counter_ref` is cleared **in
        place**, so references held by engines stay live and later
        bumps remain visible through :meth:`get`.
        """
        self._counts.clear()
        self._phase_stack.clear()
        self.phases.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Stats({body})"
