"""Event counters for experiments.

A single :class:`Stats` object hangs off each :class:`~repro.machine.machine.Machine`;
runtimes and protocols increment named counters (message categories,
protocol transitions, stall cycles) and the benchmark harness renders
them next to execution times.  Counters are plain integers keyed by
string so new layers never need schema changes.
"""

from __future__ import annotations

from collections import Counter


class Stats:
    """Hierarchical string-keyed counters (convention: ``layer.event``)."""

    def __init__(self):
        self._counts: Counter = Counter()

    def count(self, key: str, n: int = 1) -> None:
        """Add ``n`` to counter ``key``."""
        self._counts[key] += n

    def get(self, key: str) -> int:
        """Current value of ``key`` (0 if never counted)."""
        return self._counts[key]

    def with_prefix(self, prefix: str) -> dict:
        """All counters whose key starts with ``prefix`` (dot-joined)."""
        if not prefix.endswith("."):
            prefix = prefix + "."
        return {k: v for k, v in self._counts.items() if k.startswith(prefix)}

    def snapshot(self) -> dict:
        """Copy of every counter, for diffing before/after a phase."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero all counters."""
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Stats({body})"
