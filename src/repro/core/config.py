"""Cycle costs specific to the Ace runtime layer."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class AceConfig:
    """Costs of the space/protocol indirection (§4.1).

    ``dispatch_cost`` is charged on every runtime primitive: look up the
    region's space in a hash table, follow the space's protocol function
    pointer.  The compiler's direct-dispatch optimization eliminates it
    (and the whole call, for null hooks).
    """

    dispatch_cost: int = 10
    space_create: int = 90
    gmalloc_extra: int = 25     # space bookkeeping on top of the protocol's create
    change_protocol: int = 70   # per-node swap bookkeeping (excl. flush + barriers)

    def with_(self, **kw) -> "AceConfig":
        return replace(self, **kw)
