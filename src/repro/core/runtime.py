"""The Ace runtime: Table 2 library routines + Figure 3 primitives.

Every data primitive performs the §4.1 dispatch: resolve the region's
space via the region→space hash table, then call through the space's
protocol pointers.  ``direct=True`` on a primitive skips the dispatch
charge — that is exactly what the compiler's direct-dispatch
optimization emits when dataflow analysis proves the protocol unique.
"""

from __future__ import annotations

from repro.core.config import AceConfig
from repro.core.space import Space
from repro.dsm import ACE_SC_COSTS, BarrierService, CoherenceEngine, LockService, as_transport
from repro.memory import RegionDirectory
from repro.protocols.base import ProtocolMisuse
from repro.protocols.registry import ProtocolRegistry, default_registry
from repro.sim import Delay


def _stale_handle(handle, space: Space) -> ProtocolMisuse:
    return ProtocolMisuse(
        f"stale handle for region {handle.region.rid}: space {space.sid} "
        "changed protocol since it was mapped — re-map after Ace_ChangeProtocol"
    )


class AceRuntime:
    """One Ace runtime instance spanning all nodes of a machine.

    Parameters
    ----------
    fabric:
        The simulated multicomputer (or any coherence-core transport).
    registry:
        Protocol registry (defaults to the library's
        :data:`~repro.protocols.registry.default_registry`).
    config:
        Runtime-layer costs.
    barrier_algorithm:
        ``"hw"`` (CM-5 control network) or ``"dissemination"``.
    n_dir_shards:
        Directory shard count for the shared SC coherence engine (see
        :class:`~repro.dsm.directory.DirectoryService`).  The default 1
        is the flat directory every earlier release ran; serving-scale
        workloads (:mod:`repro.serve`) raise it so home-side state is
        split across independent per-shard tables.
    check:
        Enable the dynamic sanitizer: every annotation call is mirrored
        into a :class:`~repro.sanitize.dynamic.DynamicChecker` (races,
        use-after-unmap).  Strictly zero-cost when ``False`` — the
        checked wrappers are installed as instance attributes only when
        requested, so the default construction path is untouched; even
        when ``True`` the wrappers charge no cycles, so the simulated
        clock matches an unchecked run.
    checker:
        Supply a pre-built checker instead (implies ``check=True``).
    """

    def __init__(
        self,
        fabric,
        registry: ProtocolRegistry | None = None,
        config: AceConfig | None = None,
        barrier_algorithm: str = "hw",
        n_dir_shards: int = 1,
        check: bool = False,
        checker=None,
    ):
        transport = as_transport(fabric)
        self.transport = transport
        self.machine = transport.machine
        self.registry = registry or default_registry
        self.config = config or AceConfig()
        self.regions = RegionDirectory()
        self.spaces: list[Space] = []
        self.region_space: dict[int, Space] = {}
        # Observability: protocol lifecycle is rare, so the runtime only
        # emits space creation / protocol swap events — the per-access
        # dispatch fast path below carries no tracing branches at all
        # (message-level detail comes from the machine layer).
        tracer = transport.tracer
        self._obs = tracer.tracer("runtime") if tracer is not None else None
        # Dynamic sanitizer (built before the coherence engine so the
        # cache/hooks layers can report into it).
        if checker is None and check:
            from repro.sanitize.dynamic import DynamicChecker

            checker = DynamicChecker(
                transport.n_procs,
                obs=tracer.tracer("sanitize") if tracer is not None else None,
                sim=transport.sim,
            )
        self.checker = checker
        # Shared services protocols delegate to — all built over the one
        # transport, so every layer sees the same fabric (and the same
        # traced message path when observability is on).
        self.sc_engine = CoherenceEngine(
            transport,
            self.regions,
            ACE_SC_COSTS,
            stats_prefix="ace.sc",
            n_dir_shards=n_dir_shards,
            checker=checker,
        )
        self.locks = LockService(transport, self.regions, stats_prefix="ace.lock")
        self._barrier = BarrierService(transport, algorithm=barrier_algorithm)
        self._space_ctr = [0] * transport.n_procs
        self._stats = transport.stats
        self._sim = transport.sim
        self._counts = transport.stats.counter_ref()  # hot-path counter access
        # Delay singletons for the fixed runtime charges (see sim.kernel:
        # pooled anyway, but a pre-bound attribute also skips __new__).
        self._d_dispatch = Delay(self.config.dispatch_cost)
        self._d_space_create = Delay(self.config.space_create)
        self._d_gmalloc_extra = Delay(self.config.gmalloc_extra)
        self._d_change_protocol = Delay(self.config.change_protocol)
        if checker is not None:
            self._install_checked(checker)

    # ------------------------------------------------------------------
    # dynamic sanitizer wrappers
    # ------------------------------------------------------------------
    def _install_checked(self, checker) -> None:
        """Swap in checker-notifying variants of the annotation primitives.

        Mirrors the instance-attribute pattern used by the DSM layers
        (:meth:`RegionCache._install_reliable`): an unchecked runtime
        keeps the plain bound methods, so ``check=False`` is strictly
        zero-cost.  The wrappers observe and delegate — they yield no
        extra :class:`Delay`, so even a checked run's simulated clock is
        bit-identical to an unchecked one.

        Ordering matters for race detection: accesses are recorded
        *before* the protocol acts (the race exists at the program point
        of the access, not after coherence traffic resolves it), while
        map/lock acquisitions are recorded *after* the delegate returns
        (the resource is only held once the protocol grants it) and lock
        releases *before* (the happens-before edge is published at the
        moment of release).
        """
        inner_map = self.map
        inner_unmap = self.unmap
        inner_start_read = self.start_read
        inner_start_write = self.start_write
        inner_rendezvous = self.rendezvous
        inner_lock = self.lock
        inner_unlock = self.unlock

        def cmap(nid, rid, direct=False):
            handle = yield from inner_map(nid, rid, direct)
            checker.map_acquired(nid, handle.region.rid)
            return handle

        def cunmap(nid, handle, direct=False):
            yield from inner_unmap(nid, handle, direct)
            checker.unmapped(nid, handle.region.rid)

        def cstart_read(nid, handle, direct=False):
            checker.access(nid, handle.region.rid, write=False)
            yield from inner_start_read(nid, handle, direct)

        def cstart_write(nid, handle, direct=False):
            checker.access(nid, handle.region.rid, write=True)
            yield from inner_start_write(nid, handle, direct)

        def crendezvous(nid):
            checker.barrier_arrive(nid)
            yield from inner_rendezvous(nid)

        def clock(nid, rid, direct=False):
            yield from inner_lock(nid, rid, direct)
            checker.lock_acquired(nid, rid)

        def cunlock(nid, rid, direct=False):
            checker.lock_released(nid, rid)
            yield from inner_unlock(nid, rid, direct)

        self.map = cmap
        self.unmap = cunmap
        self.start_read = cstart_read
        self.start_write = cstart_write
        self.rendezvous = crendezvous
        self.lock = clock
        self.unlock = cunlock

    # ------------------------------------------------------------------
    # Table 2 library routines
    # ------------------------------------------------------------------
    def new_space(self, nid: int, protocol_name: str):
        """Generator (collective): ``Ace_NewSpace(protocol)`` → space id.

        All nodes execute the same SPMD allocation sequence; the first
        arrival instantiates the space, later arrivals attach to it.
        """
        yield self._d_space_create
        idx = self._space_ctr[nid]
        self._space_ctr[nid] += 1
        if idx == len(self.spaces):
            space = Space(sid=idx)
            space.protocol = self.registry.create(protocol_name, self, space)
            self.spaces.append(space)
            if self._obs is not None:
                self._obs.emit(
                    self._sim.now,
                    "space.new",
                    node=nid,
                    data={"sid": idx, "protocol": protocol_name},
                )
        space = self.spaces[idx]
        if space.protocol.name != protocol_name:
            raise ProtocolMisuse(
                f"SPMD divergence: node {nid} created space {idx} with protocol "
                f"{protocol_name!r} but it already runs {space.protocol.name!r}"
            )
        self._stats.count("ace.new_space")
        yield from space.protocol.init_space(nid)
        return space.sid

    def gmalloc(self, nid: int, sid: int, size: int):
        """Generator: ``Ace_GMalloc(space, size)`` → region id (homed at ``nid``)."""
        space = self._space(sid)
        yield self._d_gmalloc_extra
        rid = yield from space.protocol.create(nid, size)
        space.regions.append(rid)
        self.region_space[rid] = space
        self._stats.count("ace.gmalloc")
        if self._obs is not None:
            # Region→space mapping as data: attribution joins this with
            # space.new / space.protocol events to fold per-region wait
            # cycles into per-protocol buckets.
            self._obs.emit(
                self._sim.now,
                "region.alloc",
                node=nid,
                data={"rid": rid, "sid": sid, "size": size, "proto": space.protocol.name},
            )
        return rid

    def change_protocol(self, nid: int, sid: int, protocol_name: str):
        """Generator (collective): ``Ace_ChangeProtocol(space, protocol)``.

        Semantics per §3.1: the *old* protocol defines the transition —
        each node flushes its cached state to the base state, everyone
        synchronizes, the protocol object is swapped exactly once, and
        the new protocol initializes per node.  All previously mapped
        handles for the space become stale.
        """
        space = self._space(sid)
        if space.protocol.name == protocol_name:
            # No-op change; still a legal (cheap) collective call.
            yield self._d_change_protocol
            return
        yield self._d_change_protocol
        yield from space.protocol.flush_node(nid)
        yield from self.rendezvous(nid)
        if nid == 0:
            space.pdata = {}
            space.protocol = self.registry.create(protocol_name, self, space)
            space.generation += 1
            self._stats.count("ace.change_protocol")
            if self._obs is not None:
                self._obs.emit(
                    self._sim.now,
                    "space.protocol",
                    node=nid,
                    data={"sid": sid, "protocol": protocol_name},
                )
        yield from self.rendezvous(nid)
        yield from space.protocol.init_space(nid)

    def barrier(self, nid: int, sid: int):
        """Generator: ``Ace_Barrier(space)`` — the space's protocol barrier."""
        space = self._space(sid)
        yield self._d_dispatch
        self._counts["ace.barrier"] += 1
        yield from space.protocol.barrier(nid)

    def lock(self, nid: int, rid: int, direct: bool = False):
        """Generator: ``Ace_Lock(region)`` via the region's protocol."""
        space = self._space_of_rid(rid)
        if not direct and not space.protocol.spec.hardware:
            yield self._d_dispatch
        self._counts["ace.lock"] += 1
        yield from space.protocol.lock(nid, rid)

    def unlock(self, nid: int, rid: int, direct: bool = False):
        """Generator: ``Ace_UnLock(region)``."""
        space = self._space_of_rid(rid)
        if not direct and not space.protocol.spec.hardware:
            yield self._d_dispatch
        self._counts["ace.unlock"] += 1
        yield from space.protocol.unlock(nid, rid)

    # ------------------------------------------------------------------
    # Figure 3 primitives (what the compiler inserts)
    # ------------------------------------------------------------------
    def map(self, nid: int, rid: int, direct: bool = False):
        """Generator: ``ACE_MAP`` — region id → local handle."""
        space = self._space_of_rid(rid)
        if not direct and not space.protocol.spec.hardware:
            yield self._d_dispatch
        self._counts["ace.map"] += 1
        handle = yield from space.protocol.map(nid, rid)
        meta = handle.meta
        meta["ace_gen"] = space.generation
        # Cache the region→space resolution on the handle: §4.1's hash
        # lookup is paid once per map, not on every start/end access.
        meta["ace_space"] = space
        return handle

    def unmap(self, nid: int, handle, direct: bool = False):
        """Generator: ``ACE_UNMAP``."""
        space = self._space_of_handle(handle)
        if not direct and not space.protocol.spec.hardware:
            yield self._d_dispatch
        self._counts["ace.unmap"] += 1
        yield from space.protocol.unmap(nid, handle)

    # The four access primitives below inline ``_dispatch`` (and fetch
    # ``space.protocol`` once): every shared access in the system funnels
    # through them, so one saved call and attribute probe each is a
    # measurable slice of fig7a/fig7b wall time.
    def start_read(self, nid: int, handle, direct: bool = False):
        """Generator: ``ACE_START_READ``."""
        meta = handle.meta
        space = meta.get("ace_space")
        if space is None:
            space = self._space_of_rid(handle.region.rid)
        if meta.get("ace_gen") != space.generation:
            raise _stale_handle(handle, space)
        self._counts["ace.start_read"] += 1
        proto = space.protocol
        if proto.soft and not direct:
            yield self._d_dispatch
        yield from proto.start_read(nid, handle)

    def end_read(self, nid: int, handle, direct: bool = False):
        """Generator: ``ACE_END_READ``."""
        meta = handle.meta
        space = meta.get("ace_space")
        if space is None:
            space = self._space_of_rid(handle.region.rid)
        if meta.get("ace_gen") != space.generation:
            raise _stale_handle(handle, space)
        self._counts["ace.end_read"] += 1
        proto = space.protocol
        if proto.soft and not direct:
            yield self._d_dispatch
        yield from proto.end_read(nid, handle)

    def start_write(self, nid: int, handle, direct: bool = False):
        """Generator: ``ACE_START_WRITE``."""
        meta = handle.meta
        space = meta.get("ace_space")
        if space is None:
            space = self._space_of_rid(handle.region.rid)
        if meta.get("ace_gen") != space.generation:
            raise _stale_handle(handle, space)
        self._counts["ace.start_write"] += 1
        proto = space.protocol
        if proto.soft and not direct:
            yield self._d_dispatch
        yield from proto.start_write(nid, handle)

    def end_write(self, nid: int, handle, direct: bool = False):
        """Generator: ``ACE_END_WRITE``."""
        meta = handle.meta
        space = meta.get("ace_space")
        if space is None:
            space = self._space_of_rid(handle.region.rid)
        if meta.get("ace_gen") != space.generation:
            raise _stale_handle(handle, space)
        self._counts["ace.end_write"] += 1
        proto = space.protocol
        if proto.soft and not direct:
            yield self._d_dispatch
        yield from proto.end_write(nid, handle)

    # ------------------------------------------------------------------
    # services used by protocols
    # ------------------------------------------------------------------
    def rendezvous(self, nid: int):
        """Generator: the bare global barrier (no protocol actions)."""
        yield from self._barrier.wait(nid)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def _space(self, sid: int) -> Space:
        try:
            return self.spaces[sid]
        except IndexError:
            raise ProtocolMisuse(f"unknown space id {sid}") from None

    def _space_of_rid(self, rid: int) -> Space:
        space = self.region_space.get(rid)
        if space is None:
            raise ProtocolMisuse(f"region {rid} was not allocated with Ace_GMalloc")
        return space

    def _space_of_handle(self, handle) -> Space:
        space = handle.meta.get("ace_space")
        if space is not None:
            return space
        return self._space_of_rid(handle.region.rid)

    def space_protocol(self, sid: int) -> str:
        """Name of the protocol currently bound to ``sid`` (for tests/tools)."""
        return self._space(sid).protocol.name
