"""The Ace runtime system (§3, §4.1 of the paper).

The runtime implements the Table 2 library — ``Ace_NewSpace``,
``Ace_GMalloc``, ``Ace_ChangeProtocol``, ``Ace_Barrier``, ``Ace_Lock``,
``Ace_UnLock`` — and the Figure 3 annotation primitives — ``ACE_MAP``,
``ACE_UNMAP``, ``ACE_START_READ``, ``ACE_END_READ``, ``ACE_START_WRITE``,
``ACE_END_WRITE``.  Every primitive first resolves the region's *space*
through a hash table and dispatches through the space's protocol
pointers (§4.1), charging the dispatch-indirection cost the paper
identifies as Ace's overhead relative to CRL on coarse-grained codes.
"""

from repro.core.config import AceConfig
from repro.core.runtime import AceRuntime
from repro.core.space import Space

__all__ = ["AceConfig", "AceRuntime", "Space"]
