"""Spaces: the indirection that binds data structures to protocols (§2.2).

A space "manages a subset of the address space and handles all
allocations, accesses and synchronization to data within it".  In the
runtime it is a structure holding the protocol instance (function
pointers, in the paper), the list of member regions, and a private
slot protocols use to associate per-data-structure state (e.g. a
static-update protocol's sharer lists) — §4.1.
"""

from __future__ import annotations


class Space:
    """One space.  ``generation`` increments on every protocol change so
    stale handles (mapped under the old protocol) can be rejected."""

    __slots__ = ("sid", "protocol", "regions", "pdata", "generation")

    def __init__(self, sid: int):
        self.sid = sid
        self.protocol = None  # set by AceRuntime.new_space / change_protocol
        self.regions: list[int] = []
        # Protocol-private data, keyed however the protocol likes; reset
        # on protocol change ("a pointer by which protocols may associate
        # data with a space", §4.1).
        self.pdata: dict = {}
        self.generation = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        proto = self.protocol.name if self.protocol else None
        return f"<Space {self.sid} protocol={proto} regions={len(self.regions)}>"
