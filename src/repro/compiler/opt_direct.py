"""Direct dispatch (§4.2, third optimization).

"If the compiler can determine that there is a unique protocol
associated with an access, it replaces calls to Ace protocol dispatch
routines with direct calls to the appropriate protocol routine ...
In addition, if a protocol defines certain actions to be null, then
calls to that protocol action can be removed."

Concretely: an annotation op whose protocol set is a singleton gets
``direct = True`` (the interpreter skips the space-lookup dispatch
charge); if the unique protocol registers that hook null *and* is
optimizable, the op is deleted outright.  Devirtualization is always
safe — it only shortens the call path — but deletion removes the hook
invocation itself, and Figure 1's ``optimizable`` flag is exactly the
protocol designer's statement about whether that is allowed: a
non-optimizable protocol (RaceDetect, Counter) may declare a hook null
for dispatch purposes while still requiring every call to run.
"""

from __future__ import annotations

from repro.compiler.ir import ProgramIR

_HOOK_OF = {
    "start_read": "start_read",
    "end_read": "end_read",
    "start_write": "start_write",
    "end_write": "end_write",
}


def direct_dispatch(program: ProgramIR, registry) -> tuple[int, int]:
    """Run the pass; returns (n_devirtualized, n_deleted)."""
    devirt = 0
    deleted = 0
    for fn in program.funcs.values():
        for block in fn.blocks.values():
            keep = []
            for ins in block.instrs:
                if (
                    ins.op in ("map", "unmap", "start_read", "end_read", "start_write", "end_write")
                    and ins.protocols is not None
                    and len(ins.protocols) == 1
                ):
                    (proto,) = ins.protocols
                    spec = registry.spec(proto)
                    hook = _HOOK_OF.get(ins.op)
                    if hook is not None and spec.optimizable and spec.is_null(hook):
                        deleted += 1
                        continue  # null handler: remove the call entirely
                    ins.direct = True
                    devirt += 1
                keep.append(ins)
            block.instrs = keep
    return devirt, deleted
