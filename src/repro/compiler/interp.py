"""IR interpreter: runs compiled AceC as an SPMD program on the Ace runtime.

Every plain IR op charges a small fixed cycle cost, batched into one
``Delay`` right before the next runtime interaction — so compute cost
is identical across optimization levels and the Table 4 deltas come
only from the annotation ops each level leaves behind.  Annotation ops
call straight into :class:`~repro.core.runtime.AceRuntime`, honouring
the ``direct`` flag the direct-dispatch pass set.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compiler.errors import AceRuntimeErr
from repro.compiler.ir import Const, ProgramIR
from repro.sim import Delay

#: cycles per plain IR op
OP_COST = {
    "const": 1,
    "mov": 1,
    "bin": 2,
    "un": 2,
    "idx_load": 2,
    "idx_store": 2,
    "deref_load": 3,
    "deref_store": 3,
    "jmp": 1,
    "br": 2,
    "ret": 2,
    "call": 12,
}

_MATH_COST = {"sqrt": 20, "fabs": 4, "floor": 4, "min": 3, "max": 3, "idiv": 8, "imod": 8, "inf": 1}

_BIG = 1e30


class Interp:
    """One node's interpreter instance."""

    def __init__(self, ir: ProgramIR, ctx, bb: dict, prints: list, host_data: dict | None):
        self.ir = ir
        self.ctx = ctx
        self.bb = bb
        self.prints = prints
        self.host_data = host_data or {}
        self.pending = 0

    # -- cost batching ---------------------------------------------------
    def _flush(self):
        if self.pending:
            cycles, self.pending = self.pending, 0
            yield Delay(cycles)

    # -- entry -------------------------------------------------------------
    def run(self):
        """Generator: execute main(); returns its value."""
        result = yield from self._exec("main", [])
        yield from self._flush()
        return result

    # -- function execution ---------------------------------------------------
    def _exec(self, fname: str, args: list):
        fn = self.ir.funcs[fname]
        env: dict = dict(zip(fn.params, args))
        # handle-typed arrays hold RegionCopy objects, numeric ones floats
        arrays = {
            name: [None] * size if fn.var_types[name].is_handle else np.zeros(size)
            for name, size in fn.arrays.items()
        }
        block = fn.blocks[fn.entry]
        i = 0

        def val(operand):
            if isinstance(operand, Const):
                return operand.value
            try:
                return env[operand]
            except KeyError:
                raise AceRuntimeErr(f"{fname}: read of unset variable {operand}") from None

        while True:
            ins = block.instrs[i]
            op = ins.op
            self.pending += OP_COST.get(op, 1)
            if op == "mov" or op == "const":
                env[ins.dst] = val(ins.args[0])
            elif op == "bin":
                env[ins.dst] = _binop(ins.args[0].value, val(ins.args[1]), val(ins.args[2]))
            elif op == "un":
                operand = val(ins.args[1])
                env[ins.dst] = -operand if ins.args[0].value == "-" else float(not operand)
            elif op == "idx_load":
                arr = arrays[ins.args[0]]
                item = arr[self._index(arr, val(ins.args[1]), ins)]
                env[ins.dst] = float(item) if isinstance(arr, np.ndarray) else item
            elif op == "idx_store":
                arr = arrays[ins.args[0]]
                arr[self._index(arr, val(ins.args[1]), ins)] = val(ins.args[2])
            elif op == "deref_load":
                h = val(ins.args[0])
                data = h.data
                env[ins.dst] = float(data[self._index(data, val(ins.args[1]), ins)])
            elif op == "deref_store":
                h = val(ins.args[0])
                data = h.data
                data[self._index(data, val(ins.args[1]), ins)] = val(ins.args[2])
            elif op == "jmp":
                block = fn.blocks[ins.args[0].value]
                i = 0
                continue
            elif op == "br":
                target = ins.args[1].value if val(ins.args[0]) else ins.args[2].value
                block = fn.blocks[target]
                i = 0
                continue
            elif op == "ret":
                return val(ins.args[0])
            elif op == "call":
                argvals = [val(a) for a in ins.args[1:]]
                env[ins.dst] = yield from self._exec(ins.args[0].value, argvals)
            elif op == "builtin":
                result = yield from self._builtin(ins, val)
                if ins.dst is not None:
                    env[ins.dst] = result
            elif op == "map":
                yield from self._flush()
                rid = int(val(ins.args[0]))
                env[ins.dst] = yield from self._runtime.map(self.ctx.nid, rid, direct=ins.direct)
            elif op in ("unmap", "start_read", "end_read", "start_write", "end_write"):
                yield from self._flush()
                h = val(ins.args[0])
                fn_rt = getattr(self._runtime, op)
                yield from fn_rt(self.ctx.nid, h, direct=ins.direct)
            else:  # pragma: no cover - lowering emits only the ops above
                raise AceRuntimeErr(f"unknown IR op {op!r}")
            i += 1

    @property
    def _runtime(self):
        return self.ctx.backend.runtime

    def _index(self, arr, idx, ins) -> int:
        j = int(idx)
        if not 0 <= j < len(arr):
            raise AceRuntimeErr(f"line {ins.line}: index {j} out of bounds (size {len(arr)})")
        return j

    # -- builtins ------------------------------------------------------------
    def _builtin(self, ins, val):
        name = ins.args[0].value
        args = ins.args[1:]
        if name in _MATH_COST:
            self.pending += _MATH_COST[name]
            if name == "sqrt":
                return math.sqrt(val(args[0]))
            if name == "fabs":
                return abs(val(args[0]))
            if name == "floor":
                return float(math.floor(val(args[0])))
            if name == "min":
                return min(val(args[0]), val(args[1]))
            if name == "max":
                return max(val(args[0]), val(args[1]))
            if name == "idiv":
                return float(int(val(args[0])) // int(val(args[1])))
            if name == "imod":
                return float(int(val(args[0])) % int(val(args[1])))
            if name == "inf":
                return _BIG
        if name == "work":
            self.pending += int(val(args[0]))
            return None
        if name == "my_proc":
            self.pending += 2
            return float(self.ctx.nid)
        if name == "num_procs":
            self.pending += 2
            return float(self.ctx.n_procs)
        if name == "print":
            self.prints.append((self.ctx.nid, val(args[0])))
            return None
        if name == "host_data":
            self.pending += 4
            key = val(args[0])
            try:
                return float(self.host_data[key][int(val(args[1]))])
            except (KeyError, IndexError):
                raise AceRuntimeErr(f"host_data({key!r}, {int(val(args[1]))}) missing") from None
        if name == "bb_put":
            self.pending += 4
            self.bb[(val(args[0]), int(val(args[1])))] = val(args[2])
            return None
        if name == "bb_get":
            self.pending += 4
            key = (val(args[0]), int(val(args[1])))
            try:
                return self.bb[key]
            except KeyError:
                raise AceRuntimeErr(
                    f"bb_get{key!r}: not published yet (missing barrier?)"
                ) from None
        # runtime library calls
        yield from self._flush()
        ctx = self.ctx
        if name == "ace_new_space":
            sid = yield from ctx.new_space(val(args[0]))
            return float(sid)
        if name == "ace_gmalloc":
            rid = yield from ctx.gmalloc(int(val(args[0])), int(val(args[1])))
            return float(rid)
        if name == "ace_change_protocol":
            yield from ctx.change_protocol(int(val(args[0])), val(args[1]))
            return None
        if name == "ace_barrier":
            yield from ctx.barrier(int(val(args[0])))
            return None
        if name == "ace_lock":
            yield from ctx.lock(int(val(args[0])))
            return None
        if name == "ace_unlock":
            yield from ctx.unlock(int(val(args[0])))
            return None
        raise AceRuntimeErr(f"unimplemented builtin {name!r}")  # pragma: no cover


def _binop(op: str, a, b):
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise AceRuntimeErr("division by zero")
        return a / b
    if op == "%":
        if int(b) == 0:
            raise AceRuntimeErr("modulo by zero")
        return float(int(a) % int(b))
    if op == "==":
        return float(a == b)
    if op == "!=":
        return float(a != b)
    if op == "<":
        return float(a < b)
    if op == ">":
        return float(a > b)
    if op == "<=":
        return float(a <= b)
    if op == ">=":
        return float(a >= b)
    if op == "&&":
        return float(bool(a) and bool(b))
    if op == "||":
        return float(bool(a) or bool(b))
    raise AceRuntimeErr(f"unknown operator {op!r}")  # pragma: no cover
