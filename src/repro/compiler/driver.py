"""Compilation driver: source → optimized IR → simulated execution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.analysis import analyze
from repro.compiler.annotate import insert_annotations
from repro.compiler.interp import Interp
from repro.compiler.ir import ProgramIR
from repro.compiler.lowering import lower_program
from repro.compiler.opt_direct import direct_dispatch
from repro.compiler.opt_loops import hoist_loop_invariant
from repro.compiler.opt_merge import merge_calls
from repro.compiler.parser_ import parse
from repro.facade import run_spmd
from repro.machine import MachineConfig
from repro.protocols.registry import ProtocolRegistry, default_registry


@dataclass(frozen=True)
class OptConfig:
    """Which of the §4.2 passes run (Table 4's rows)."""

    li: bool
    mc: bool
    dc: bool
    name: str


OPT_BASE = OptConfig(False, False, False, "base")
OPT_LI = OptConfig(True, False, False, "LI")
OPT_LI_MC = OptConfig(True, True, False, "LI+MC")
OPT_DIRECT = OptConfig(True, True, True, "LI+MC+DC")


@dataclass
class CompiledProgram:
    """Compiled AceC: IR plus what the passes did."""

    ir: ProgramIR
    opt: OptConfig
    registry: ProtocolRegistry
    pass_stats: dict = field(default_factory=dict)

    def dump(self) -> str:
        return self.ir.dump()


@dataclass
class CompiledRun:
    """Outcome of running a compiled program."""

    time: int
    results: list          # main()'s return value per node
    prints: list           # (nid, value) from print()
    bb: dict               # bulletin board contents
    run_result: object     # the underlying facade RunResult

    @property
    def stats(self):
        return self.run_result.stats

    def region_data(self, rid: int):
        """Canonical (home) contents of a region, for validation."""
        return self.run_result.backend.runtime.regions.get(int(rid)).home_data


def compile_source(
    source: str,
    opt: OptConfig = OPT_DIRECT,
    registry: ProtocolRegistry | None = None,
    sanitize: bool = False,
) -> CompiledProgram:
    """Compile AceC source at the given optimization level.

    With ``sanitize=True`` the static annotation checker runs twice —
    on the analyzed IR straight after lowering (front-end bugs) and
    again after the optimization passes (pass bugs) — raising
    :class:`~repro.compiler.errors.AnnotationError` on any discipline
    violation.  ``pass_stats["sanitize"]`` records both clean phases.
    """
    registry = registry or default_registry
    ast = parse(source)
    ir = lower_program(ast)
    insert_annotations(ir)
    analyze(ir, registry)
    stats = {}
    if sanitize:
        from repro.sanitize import check_or_raise

        check_or_raise(ir, registry, phase="post-lowering")
    if opt.li:
        stats["hoisted"] = hoist_loop_invariant(ir, registry)
    if opt.mc:
        stats["merged"] = merge_calls(ir, registry)
    if opt.dc:
        devirt, deleted = direct_dispatch(ir, registry)
        stats["devirtualized"] = devirt
        stats["deleted"] = deleted
    if sanitize:
        check_or_raise(ir, registry, phase=f"post-optimization ({opt.name})", strict=False)
        stats["sanitize"] = ["post-lowering", f"post-optimization ({opt.name})"]
    return CompiledProgram(ir=ir, opt=opt, registry=registry, pass_stats=stats)


def run_compiled(
    program: CompiledProgram,
    n_procs: int = 4,
    host_data: dict | None = None,
    machine_config: MachineConfig | None = None,
) -> CompiledRun:
    """Execute a compiled program SPMD on a fresh simulated machine."""
    bb: dict = {}
    prints: list = []

    def spmd(ctx):
        return Interp(program.ir, ctx, bb, prints, host_data).run()

    res = run_spmd(
        spmd,
        backend="ace",
        n_procs=n_procs,
        machine_config=machine_config,
        registry=program.registry,
    )
    return CompiledRun(time=res.time, results=res.results, prints=prints, bb=bb, run_result=res)
