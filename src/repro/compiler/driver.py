"""Compilation driver: source → optimized IR → simulated execution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.analysis import analyze
from repro.compiler.annotate import insert_annotations
from repro.compiler.interp import Interp
from repro.compiler.ir import ProgramIR
from repro.compiler.lowering import lower_program
from repro.compiler.opt_direct import direct_dispatch
from repro.compiler.opt_loops import hoist_loop_invariant
from repro.compiler.opt_merge import merge_calls
from repro.compiler.parser_ import parse
from repro.facade import run_spmd
from repro.machine import MachineConfig
from repro.protocols.registry import ProtocolRegistry, default_registry


@dataclass(frozen=True)
class OptConfig:
    """Which of the §4.2 passes run (Table 4's rows)."""

    li: bool
    mc: bool
    dc: bool
    name: str


OPT_BASE = OptConfig(False, False, False, "base")
OPT_LI = OptConfig(True, False, False, "LI")
OPT_LI_MC = OptConfig(True, True, False, "LI+MC")
OPT_DIRECT = OptConfig(True, True, True, "LI+MC+DC")


#: execution backends for compiled programs: the closure codegen is the
#: default hot path; the tree-walking interpreter stays available as
#: the differential-testing oracle (DESIGN.md §12).
BACKENDS = ("closures", "interp")


#: memoized front end: benchmarks (and Table 4 itself) compile the same
#: source at all four optimization levels, and lexing + parsing
#: dominate compile time.  Lowering never mutates the AST — it builds
#: fresh IR structures — so one AST is safely shared across compiles
#: (the determinism tests pin dump-for-dump identical output).
_PARSE_CACHE: dict[str, object] = {}
_PARSE_CACHE_MAX = 128


def _parse_cached(source: str):
    ast = _PARSE_CACHE.get(source)
    if ast is None:
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            _PARSE_CACHE.clear()
        ast = _PARSE_CACHE[source] = parse(source)
    return ast


@dataclass
class CompiledProgram:
    """Compiled AceC: IR plus what the passes did."""

    ir: ProgramIR
    opt: OptConfig
    registry: ProtocolRegistry
    pass_stats: dict = field(default_factory=dict)
    backend: str = "closures"
    _closures: object = field(default=None, repr=False, compare=False)

    def dump(self) -> str:
        return self.ir.dump()

    def closures(self):
        """The closure-compiled form (built once, after the passes ran)."""
        if self._closures is None:
            from repro.compiler.codegen import compile_closures

            self._closures = compile_closures(self.ir)
        return self._closures


@dataclass
class CompiledRun:
    """Outcome of running a compiled program."""

    time: int
    results: list          # main()'s return value per node
    prints: list           # (nid, value) from print()
    bb: dict               # bulletin board contents
    run_result: object     # the underlying facade RunResult

    @property
    def stats(self):
        return self.run_result.stats

    def region_data(self, rid: int):
        """Canonical (home) contents of a region, for validation."""
        return self.run_result.backend.runtime.regions.get(int(rid)).home_data


def compile_source(
    source: str,
    opt: OptConfig = OPT_DIRECT,
    registry: ProtocolRegistry | None = None,
    sanitize: bool = False,
    backend: str = "closures",
) -> CompiledProgram:
    """Compile AceC source at the given optimization level.

    With ``sanitize=True`` the static annotation checker runs twice —
    on the analyzed IR straight after lowering (front-end bugs) and
    again after the optimization passes (pass bugs) — raising
    :class:`~repro.compiler.errors.AnnotationError` on any discipline
    violation.  ``pass_stats["sanitize"]`` records both clean phases.

    ``backend`` picks the execution engine ``run_compiled`` will use:
    ``"closures"`` (default) walks the optimized IR once and emits
    pre-bound Python closures; ``"interp"`` is the tree-walking
    interpreter, kept as the differential-testing oracle.  Both produce
    bit-identical results, simulated cycles, and kernel event streams.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}")
    registry = registry or default_registry
    ast = _parse_cached(source)
    ir = lower_program(ast)
    insert_annotations(ir)
    analyze(ir, registry)
    stats = {}
    if sanitize:
        from repro.sanitize import check_or_raise

        check_or_raise(ir, registry, phase="post-lowering")
    if opt.li:
        stats["hoisted"] = hoist_loop_invariant(ir, registry)
    if opt.mc:
        stats["merged"] = merge_calls(ir, registry)
    if opt.dc:
        devirt, deleted = direct_dispatch(ir, registry)
        stats["devirtualized"] = devirt
        stats["deleted"] = deleted
    if sanitize:
        check_or_raise(ir, registry, phase=f"post-optimization ({opt.name})", strict=False)
        stats["sanitize"] = ["post-lowering", f"post-optimization ({opt.name})"]
    return CompiledProgram(ir=ir, opt=opt, registry=registry, pass_stats=stats, backend=backend)


def run_compiled(
    program: CompiledProgram,
    n_procs: int = 4,
    host_data: dict | None = None,
    machine_config: MachineConfig | None = None,
    backend: str | None = None,
) -> CompiledRun:
    """Execute a compiled program SPMD on a fresh simulated machine.

    ``backend`` overrides the one recorded at :func:`compile_source`
    time (``"closures"`` or ``"interp"``); the two are bit-identical in
    results, cycles, and kernel events (the oracle tests pin this).
    """
    which = backend if backend is not None else program.backend
    bb: dict = {}
    prints: list = []

    if which == "closures":
        from repro.compiler.codegen import bind_node

        closures = program.closures()

        def spmd(ctx):
            return bind_node(closures, ctx, bb, prints, host_data)

    elif which == "interp":

        def spmd(ctx):
            return Interp(program.ir, ctx, bb, prints, host_data).run()

    else:
        raise ValueError(f"unknown backend {which!r}; choose from {sorted(BACKENDS)}")

    res = run_spmd(
        spmd,
        backend="ace",
        n_procs=n_procs,
        machine_config=machine_config,
        registry=program.registry,
    )
    return CompiledRun(time=res.time, results=res.results, prints=prints, bb=bb, run_result=res)
