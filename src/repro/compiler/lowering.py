"""AST → IR lowering: scoped renaming, CFG construction, loop recording."""

from __future__ import annotations

from repro.compiler import ast_nodes as A
from repro.compiler.builtins_def import ANNOTATION_CALLS, BUILTINS
from repro.compiler.errors import AceCompileError
from repro.compiler.ir import Block, Const, FuncIR, Instr, LoopInfo, ProgramIR


class _FuncLowerer:
    def __init__(self, fn: A.Func, program: A.ProgramAST):
        self.fn = fn
        self.program = program
        self.ir = FuncIR(name=fn.name, params=[], entry="entry")
        self.scopes: list[dict] = [{}]
        self.uniq = 0
        self.tmp = 0
        self.block: Block = self._new_block("entry")
        self.loop_stack: list = []  # (exit_label, continue_label)
        self._block_counter = 0

    # -- naming ----------------------------------------------------------
    def _fresh_name(self, name: str) -> str:
        self.uniq += 1
        return f"{name}${self.uniq}"

    def _declare(self, name: str, typ: A.TypeSpec, line: int) -> str:
        if name in self.scopes[-1]:
            raise AceCompileError(f"line {line}: {name!r} redeclared in the same scope")
        unique = self._fresh_name(name)
        self.scopes[-1][name] = unique
        self.ir.var_types[unique] = typ
        return unique

    def _lookup(self, name: str, line: int) -> str:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise AceCompileError(f"line {line}: undeclared variable {name!r}")

    def _temp(self) -> str:
        self.tmp += 1
        return f"%t{self.tmp}"

    # -- blocks ------------------------------------------------------------
    def _new_block(self, name: str | None = None) -> Block:
        if name is None:
            self._block_counter += 1
            name = f"bb{self._block_counter}"
        block = Block(name)
        self.ir.blocks[name] = block
        return block

    def emit(self, instr: Instr) -> None:
        self.block.instrs.append(instr)

    def _set_block(self, block: Block) -> None:
        self.block = block

    def _terminated(self) -> bool:
        return bool(self.block.instrs) and self.block.instrs[-1].op in ("jmp", "br", "ret")

    def _jump(self, target: str, line: int = 0) -> None:
        if not self._terminated():
            self.emit(Instr("jmp", args=[Const(target)], line=line))

    # -- entry point -----------------------------------------------------------
    def lower(self) -> FuncIR:
        for ptype, pname in self.fn.params:
            self.ir.params.append(self._declare(pname, ptype, self.fn.line))
        self.lower_stmts(self.fn.body)
        if not self._terminated():
            self.emit(Instr("ret", args=[Const(0.0)], line=self.fn.line))
        return self.ir

    def lower_stmts(self, stmts: list) -> None:
        for stmt in stmts:
            self.lower_stmt(stmt)

    # -- statements ----------------------------------------------------------
    def lower_stmt(self, stmt) -> None:
        if self._terminated():
            # dead code after return/break: create an unreachable block
            self._set_block(self._new_block())
        method = getattr(self, f"_lower_{type(stmt).__name__.lower()}")
        method(stmt)

    def _lower_decl(self, stmt: A.Decl) -> None:
        unique = self._declare(stmt.name, stmt.typ, stmt.line)
        if stmt.typ.array_size is not None:
            self.ir.arrays[unique] = stmt.typ.array_size
            if stmt.init is not None:
                raise AceCompileError(f"line {stmt.line}: array initializers not supported")
            return
        if stmt.init is not None:
            src = self.lower_expr(stmt.init)
            self.emit(Instr("mov", dst=unique, args=[src], line=stmt.line))
        else:
            self.emit(Instr("const", dst=unique, args=[Const(0.0)], line=stmt.line))

    def _lower_assign(self, stmt: A.Assign) -> None:
        line = stmt.line
        if isinstance(stmt.target, A.Var):
            unique = self._lookup(stmt.target.name, line)
            value = self._compound_value(stmt, lambda: self._read_var(unique, line))
            self.emit(Instr("mov", dst=unique, args=[value], line=line))
            return
        # element assignment
        base = self._lookup(stmt.target.base.name, line)
        typ = self.ir.var_types[base]
        idx = self.lower_expr(stmt.target.index)
        if typ.array_size is not None:
            value = self._compound_value(stmt, lambda: self._emit_load("idx_load", base, idx, line))
            self.emit(Instr("idx_store", args=[base, idx, value], line=line))
        elif typ.is_shared_ptr:
            base_val = base  # variable holding the region id
            value = self._compound_value(
                stmt, lambda: self._emit_load("shared_load", base_val, idx, line)
            )
            self.emit(Instr("shared_store", args=[base_val, idx, value], line=line))
        elif typ.is_mapped_ptr:
            value = self._compound_value(stmt, lambda: self._emit_load("deref_load", base, idx, line))
            self.emit(Instr("deref_store", args=[base, idx, value], line=line))
        else:
            raise AceCompileError(f"line {line}: cannot index scalar {stmt.target.base.name!r}")

    def _compound_value(self, stmt: A.Assign, load_current):
        value = self.lower_expr(stmt.value)
        if stmt.op == "=":
            return value
        current = load_current()
        dst = self._temp()
        self.emit(Instr("bin", dst=dst, args=[Const(stmt.op[0]), current, value], line=stmt.line))
        return dst

    def _read_var(self, unique: str, line: int):
        return unique

    def _emit_load(self, op: str, base, idx, line: int) -> str:
        dst = self._temp()
        self.emit(Instr(op, dst=dst, args=[base, idx], line=line))
        return dst

    def _lower_if(self, stmt: A.If) -> None:
        cond = self.lower_expr(stmt.cond)
        then_b = self._new_block()
        else_b = self._new_block() if stmt.els else None
        join_b = self._new_block()
        self.emit(
            Instr(
                "br",
                args=[cond, Const(then_b.name), Const(else_b.name if else_b else join_b.name)],
                line=stmt.line,
            )
        )
        self._set_block(then_b)
        self.scopes.append({})
        self.lower_stmts(stmt.then)
        self.scopes.pop()
        self._jump(join_b.name, stmt.line)
        if else_b is not None:
            self._set_block(else_b)
            self.scopes.append({})
            self.lower_stmts(stmt.els)
            self.scopes.pop()
            self._jump(join_b.name, stmt.line)
        self._set_block(join_b)

    def _lower_while(self, stmt: A.While) -> None:
        self._lower_loop(init=None, cond=stmt.cond, step=None, body=stmt.body, line=stmt.line)

    def _lower_for(self, stmt: A.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        self._lower_loop(init=None, cond=stmt.cond, step=stmt.step, body=stmt.body, line=stmt.line)
        self.scopes.pop()

    def _lower_loop(self, init, cond, step, body, line) -> None:
        del init  # handled by callers
        preheader = self.block
        header = self._new_block()
        body_b = self._new_block()
        step_b = self._new_block() if step is not None else None
        exit_b = self._new_block()
        continue_target = step_b.name if step_b else header.name

        pre_existing = set(self.ir.blocks.keys())
        self._jump(header.name, line)
        self._set_block(header)
        if cond is not None:
            cond_v = self.lower_expr(cond)
            self.emit(Instr("br", args=[cond_v, Const(body_b.name), Const(exit_b.name)], line=line))
        else:
            self.emit(Instr("jmp", args=[Const(body_b.name)], line=line))

        self._set_block(body_b)
        self.scopes.append({})
        self.loop_stack.append((exit_b.name, continue_target))
        self.lower_stmts(body)
        self.loop_stack.pop()
        self.scopes.pop()
        self._jump(continue_target, line)
        if step_b is not None:
            self._set_block(step_b)
            self.lower_stmt(step)
            self._jump(header.name, line)

        # loop membership: header, body, step + any blocks created while
        # lowering the body (nested ifs/loops), but not the exit block
        members = set(self.ir.blocks.keys()) - pre_existing
        members.update({header.name, body_b.name})
        if step_b is not None:
            members.add(step_b.name)
        members.discard(exit_b.name)
        self.ir.loops.append(
            LoopInfo(preheader=preheader.name, header=header.name, body=members, exit=exit_b.name)
        )
        self._set_block(exit_b)

    def _lower_return(self, stmt: A.Return) -> None:
        value = self.lower_expr(stmt.value) if stmt.value is not None else Const(0.0)
        self.emit(Instr("ret", args=[value], line=stmt.line))

    def _lower_break(self, stmt: A.Break) -> None:
        if not self.loop_stack:
            raise AceCompileError(f"line {stmt.line}: break outside a loop")
        self.emit(Instr("jmp", args=[Const(self.loop_stack[-1][0])], line=stmt.line))

    def _lower_continue(self, stmt: A.Continue) -> None:
        if not self.loop_stack:
            raise AceCompileError(f"line {stmt.line}: continue outside a loop")
        self.emit(Instr("jmp", args=[Const(self.loop_stack[-1][1])], line=stmt.line))

    def _lower_exprstmt(self, stmt: A.ExprStmt) -> None:
        if not isinstance(stmt.expr, A.Call):
            raise AceCompileError(f"line {stmt.line}: expression statement has no effect")
        self.lower_expr(stmt.expr)

    # -- expressions --------------------------------------------------------------
    def lower_expr(self, expr):
        if isinstance(expr, A.Num):
            return Const(float(expr.value))
        if isinstance(expr, A.Str):
            return Const(expr.value)
        if isinstance(expr, A.Var):
            return self._lookup(expr.name, expr.line)
        if isinstance(expr, A.Unary):
            operand = self.lower_expr(expr.operand)
            dst = self._temp()
            self.emit(Instr("un", dst=dst, args=[Const(expr.op), operand], line=expr.line))
            return dst
        if isinstance(expr, A.Binary):
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            dst = self._temp()
            self.emit(Instr("bin", dst=dst, args=[Const(expr.op), left, right], line=expr.line))
            return dst
        if isinstance(expr, A.Index):
            base = self._lookup(expr.base.name, expr.line)
            typ = self.ir.var_types[base]
            idx = self.lower_expr(expr.index)
            if typ.array_size is not None:
                return self._emit_load("idx_load", base, idx, expr.line)
            if typ.is_shared_ptr:
                return self._emit_load("shared_load", base, idx, expr.line)
            if typ.is_mapped_ptr:
                return self._emit_load("deref_load", base, idx, expr.line)
            raise AceCompileError(f"line {expr.line}: cannot index scalar {expr.base.name!r}")
        if isinstance(expr, A.Call):
            return self._lower_call(expr)
        raise AceCompileError(f"cannot lower expression {expr!r}")  # pragma: no cover

    def _lower_call(self, expr: A.Call):
        args = [self.lower_expr(a) for a in expr.args]
        if expr.name in ANNOTATION_CALLS:
            op = ANNOTATION_CALLS[expr.name]
            if len(args) != 1:
                raise AceCompileError(f"line {expr.line}: {expr.name} takes one argument")
            if op == "map":
                dst = self._temp()
                self.emit(Instr("map", dst=dst, args=args, line=expr.line))
                return dst
            self.emit(Instr(op, args=args, line=expr.line))
            return Const(0.0)
        if expr.name in BUILTINS:
            n_args, has_result = BUILTINS[expr.name]
            if len(args) != n_args:
                raise AceCompileError(
                    f"line {expr.line}: {expr.name} expects {n_args} args, got {len(args)}"
                )
            dst = self._temp() if has_result else None
            self.emit(Instr("builtin", dst=dst, args=[Const(expr.name), *args], line=expr.line))
            return dst if dst is not None else Const(0.0)
        if expr.name in self.program.funcs:
            callee = self.program.funcs[expr.name]
            if len(args) != len(callee.params):
                raise AceCompileError(
                    f"line {expr.line}: {expr.name} expects {len(callee.params)} args, "
                    f"got {len(args)}"
                )
            dst = self._temp()
            self.emit(Instr("call", dst=dst, args=[Const(expr.name), *args], line=expr.line))
            return dst
        raise AceCompileError(f"line {expr.line}: unknown function {expr.name!r}")


def lower_program(ast: A.ProgramAST) -> ProgramIR:
    """Lower every function; returns the whole-program IR."""
    funcs = {}
    for name, fn in ast.funcs.items():
        funcs[name] = _FuncLowerer(fn, ast).lower()
    return ProgramIR(funcs)
