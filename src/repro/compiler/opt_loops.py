"""Loop-invariant motion of protocol calls (§4.2, first optimization).

"ACE_MAP and ACE_START_* calls are moved above a loop, while ACE_END_*
calls are moved below a loop.  This optimization is performed only if
all the possible protocols of an access are optimizable."  And no code
ever moves past a synchronization call.

Per loop (innermost first, so hoisted calls can keep climbing):

* a ``map`` whose region-id operand is invariant (constant, or never
  defined inside the loop) moves to the preheader;
* for a handle whose every annotation inside the loop is
  ``start_read``/``end_read`` (or every one ``start_write``/
  ``end_write`` — mixed read/write accesses are not merged, per the
  paper's footnote), and which is defined outside the loop, the
  START/END pairs collapse to one START in the preheader and one END
  in the exit block.
"""

from __future__ import annotations

from repro.compiler.ir import Const, FuncIR, Instr, ProgramIR, SYNC_BUILTINS


def _loop_instrs(fn: FuncIR, body: set):
    for bname in body:
        yield from fn.blocks[bname].instrs


def _defs_in(fn: FuncIR, body: set) -> set:
    return {ins.dst for ins in _loop_instrs(fn, body) if ins.dst is not None}


def _has_sync(fn: FuncIR, body: set, program: ProgramIR, _seen=None) -> bool:
    """Does the loop contain a synchronization point (directly or via calls)?"""
    for ins in _loop_instrs(fn, body):
        if ins.op == "builtin" and ins.args[0].value in SYNC_BUILTINS:
            return True
        if ins.op == "call":
            if _call_has_sync(program, ins.args[0].value, set()):
                return True
    return False


def _call_has_sync(program: ProgramIR, fname: str, seen: set) -> bool:
    if fname in seen:
        return False
    seen.add(fname)
    fn = program.funcs[fname]
    for ins in fn.all_instrs():
        if ins.op == "builtin" and ins.args[0].value in SYNC_BUILTINS:
            return True
        if ins.op == "call" and _call_has_sync(program, ins.args[0].value, seen):
            return True
    return False


def _optimizable(ins: Instr, registry) -> bool:
    if ins.protocols is None:
        return False
    return all(registry.spec(p).optimizable for p in ins.protocols)


def hoist_loop_invariant(program: ProgramIR, registry) -> int:
    """Run the pass; returns the number of instructions moved."""
    moved = 0
    for fn in program.funcs.values():
        for loop in fn.loops:  # innermost-first by construction
            if _has_sync(fn, loop.body, program):
                continue
            moved += _hoist_maps(fn, loop, registry)
            moved += _hoist_start_end(fn, loop, registry)
    return moved


def _insert_preheader(fn: FuncIR, loop, instrs: list) -> None:
    pre = fn.blocks[loop.preheader].instrs
    for ins in instrs:
        pre.insert(len(pre) - 1, ins)  # before the terminator


def _insert_exit(fn: FuncIR, loop, instrs: list) -> None:
    fn.blocks[loop.exit].instrs[0:0] = instrs


def _hoist_maps(fn: FuncIR, loop, registry) -> int:
    moved = 0
    defs = _defs_in(fn, loop.body)
    for bname in sorted(loop.body):
        block = fn.blocks[bname]
        keep = []
        for ins in block.instrs:
            if (
                ins.op == "map"
                and _optimizable(ins, registry)
                and (isinstance(ins.args[0], Const) or ins.args[0] not in defs)
            ):
                _insert_preheader(fn, loop, [ins])
                defs.discard(ins.dst)
                moved += 1
            else:
                keep.append(ins)
        block.instrs = keep
    return moved


def _hoist_start_end(fn: FuncIR, loop, registry) -> int:
    # classify annotation usage per handle inside the loop
    defs = _defs_in(fn, loop.body)
    usage: dict[str, set] = {}
    opt_ok: dict[str, bool] = {}
    for ins in _loop_instrs(fn, loop.body):
        if ins.op in ("start_read", "end_read", "start_write", "end_write", "unmap"):
            h = ins.args[0]
            usage.setdefault(h, set()).add(ins.op)
            opt_ok[h] = opt_ok.get(h, True) and _optimizable(ins, registry)

    moved = 0
    for h, ops in sorted(usage.items()):
        if h in defs or not opt_ok.get(h, False):
            continue
        if ops == {"start_read", "end_read"}:
            start_op, end_op = "start_read", "end_read"
        elif ops == {"start_write", "end_write"}:
            start_op, end_op = "start_write", "end_write"
        else:
            continue  # mixed modes or unmaps: leave alone (paper footnote)
        protos = None
        removed = 0
        for bname in sorted(loop.body):
            block = fn.blocks[bname]
            keep = []
            for ins in block.instrs:
                if ins.op in (start_op, end_op) and ins.args[0] == h:
                    protos = ins.protocols if protos is None else protos | ins.protocols
                    removed += 1
                else:
                    keep.append(ins)
            block.instrs = keep
        if removed:
            _insert_preheader(fn, loop, [Instr(start_op, args=[h], protocols=protos)])
            _insert_exit(fn, loop, [Instr(end_op, args=[h], protocols=protos)])
            moved += removed
    return moved
