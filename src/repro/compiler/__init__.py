"""The Ace compiler for AceC, a C subset with the ``shared`` qualifier (§3, §4.2).

Pipeline (mirroring the paper's SUIF-based compiler):

1. **Front end** — :mod:`lexer` / :mod:`parser_` produce an AST for
   AceC: functions, recursion, ``int``/``double`` scalars and local
   arrays, ``shared`` region pointers, and the Ace library calls
   (Tables 1-2).  Two programming styles coexist, as in the paper:
   *source-level* programs dereference ``shared`` pointers directly
   and let the compiler insert annotations (Figure 5); *runtime-level*
   programs (the "hand-optimized" Table 4 rows) call ``ace_map`` /
   ``ace_start_read`` / ... explicitly on ``mapped`` handles (Figure 4).
2. **Lowering** — :mod:`lowering` builds a per-function CFG of basic
   blocks over a linear IR (:mod:`ir`).
3. **Annotation insertion** — :mod:`annotate` wraps every shared
   dereference in MAP / START / END, exactly the Figure 5 recipe.
4. **Analysis** — :mod:`analysis` reproduces §4.2's interprocedural
   dataflow: region values are traced to their ``ace_gmalloc`` sites,
   spaces to their ``ace_new_space`` sites, and protocol states are
   propagated from ``ace_new_space``/``ace_change_protocol`` through
   dominators and call edges, yielding the *set of possible protocols*
   for every annotated access.
5. **Optimizations** — :mod:`opt_loops` (loop-invariant MAP/START/END
   motion), :mod:`opt_merge` (available-expression merging of
   redundant protocol calls, Figure 6), :mod:`opt_direct` (direct
   dispatch + null-handler deletion).  All passes respect the
   registry's ``optimizable`` flags and never move code past
   synchronization.
6. **Execution** — two bit-identical backends run the optimized IR as
   an SPMD program on the simulated Ace runtime, charging per-op cycle
   costs so Table 4's ladder falls out of real pass behaviour:
   :mod:`codegen` (default) walks the IR once and emits pre-bound
   Python closures fused per basic block; :mod:`interp` is the
   tree-walking interpreter, retained as the differential-testing
   oracle (``compile_source(backend="interp")``).
"""

from repro.compiler.driver import (
    BACKENDS,
    OPT_BASE,
    OPT_DIRECT,
    OPT_LI,
    OPT_LI_MC,
    CompiledProgram,
    OptConfig,
    compile_source,
    run_compiled,
)
from repro.compiler.errors import AceCompileError, AceRuntimeErr, AceSyntaxError

__all__ = [
    "AceCompileError",
    "AceRuntimeErr",
    "AceSyntaxError",
    "BACKENDS",
    "CompiledProgram",
    "OPT_BASE",
    "OPT_DIRECT",
    "OPT_LI",
    "OPT_LI_MC",
    "OptConfig",
    "compile_source",
    "run_compiled",
]
