"""Recursive-descent parser for AceC."""

from __future__ import annotations

from repro.compiler.ast_nodes import (
    Assign,
    Binary,
    Break,
    Call,
    Continue,
    Decl,
    ExprStmt,
    For,
    Func,
    If,
    Index,
    Num,
    ProgramAST,
    Return,
    Str,
    TypeSpec,
    Unary,
    Var,
    While,
)
from repro.compiler.errors import AceSyntaxError
from repro.compiler.lexer import Token, tokenize

# precedence climbing table: op -> (precedence, right_assoc)
_BINOPS = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.toks = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.toks[min(self.pos + ahead, len(self.toks) - 1)]

    def next(self) -> Token:
        tok = self.toks[self.pos]
        self.pos += 1
        return tok

    def error(self, msg: str) -> None:
        tok = self.peek()
        raise AceSyntaxError(f"{msg} (found {tok.value!r})", tok.line, tok.col)

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            self.error(f"expected {value or kind}")
        return self.next()

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.next()
        return None

    # -- grammar --------------------------------------------------------
    def parse_program(self) -> ProgramAST:
        funcs: dict[str, Func] = {}
        while self.peek().kind != "eof":
            fn = self.parse_func()
            if fn.name in funcs:
                self.error(f"function {fn.name!r} defined twice")
            funcs[fn.name] = fn
        if "main" not in funcs:
            tok = self.peek()
            raise AceSyntaxError("program has no main()", tok.line, tok.col)
        return ProgramAST(funcs)

    def _at_type(self) -> bool:
        tok = self.peek()
        return tok.kind == "kw" and tok.value in ("int", "double", "void", "shared", "mapped")

    def parse_type(self) -> TypeSpec:
        shared = bool(self.accept("kw", "shared"))
        mapped = bool(self.accept("kw", "mapped"))
        tok = self.peek()
        if tok.kind != "kw" or tok.value not in ("int", "double", "void"):
            self.error("expected type name")
        base = self.next().value
        is_ptr = False
        if self.accept("op", "*"):
            is_ptr = True
        if (shared or mapped) and not is_ptr:
            self.error("shared/mapped declarations must be pointers (e.g. 'shared double *p')")
        if is_ptr and not (shared or mapped):
            self.error("raw pointers are not supported; use 'shared' or 'mapped'")
        return TypeSpec(base, is_shared_ptr=shared and is_ptr, is_mapped_ptr=mapped and is_ptr)

    def parse_func(self) -> Func:
        line = self.peek().line
        ret = self.parse_type()
        name = self.expect("ident").value
        self.expect("op", "(")
        params = []
        if not self.accept("op", ")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect("ident").value
                params.append((ptype, pname))
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        self.expect("op", "{")
        body = self.parse_block_body()
        return Func(ret, name, params, body, line=line)

    def parse_block_body(self) -> list:
        stmts = []
        while not self.accept("op", "}"):
            if self.peek().kind == "eof":
                self.error("unexpected end of input (missing '}')")
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self):
        tok = self.peek()
        if self._at_type():
            return self.parse_decl()
        if tok.kind == "kw" and tok.value == "if":
            return self.parse_if()
        if tok.kind == "kw" and tok.value == "while":
            return self.parse_while()
        if tok.kind == "kw" and tok.value == "for":
            return self.parse_for()
        if tok.kind == "kw" and tok.value == "return":
            self.next()
            value = None if self.peek().value == ";" else self.parse_expr()
            self.expect("op", ";")
            return Return(value, line=tok.line)
        if tok.kind == "kw" and tok.value == "break":
            self.next()
            self.expect("op", ";")
            return Break(line=tok.line)
        if tok.kind == "kw" and tok.value == "continue":
            self.next()
            self.expect("op", ";")
            return Continue(line=tok.line)
        if tok.kind == "op" and tok.value == "{":
            # flatten nested blocks into an If(1){...} is ugly; just inline
            self.next()
            body = self.parse_block_body()
            return If(Num(1.0, line=tok.line), body, [], line=tok.line)
        stmt = self.parse_simple_stmt()
        self.expect("op", ";")
        return stmt

    def parse_decl(self) -> Decl:
        line = self.peek().line
        typ = self.parse_type()
        name = self.expect("ident").value
        if self.accept("op", "["):
            size_tok = self.expect("num")
            size = int(float(size_tok.value))
            self.expect("op", "]")
            typ = TypeSpec(typ.base, typ.is_shared_ptr, typ.is_mapped_ptr, array_size=size)
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return Decl(typ, name, init, line=line)

    def parse_if(self) -> If:
        line = self.next().line  # 'if'
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt_or_block()
        els = []
        if self.accept("kw", "else"):
            els = self.parse_stmt_or_block()
        return If(cond, then, els, line=line)

    def parse_while(self) -> While:
        line = self.next().line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt_or_block()
        return While(cond, body, line=line)

    def parse_for(self) -> For:
        line = self.next().line
        self.expect("op", "(")
        init = None
        if not self.accept("op", ";"):
            init = self.parse_decl() if self._at_type() else self._semi(self.parse_simple_stmt())
        cond = None
        if not self.accept("op", ";"):
            cond = self.parse_expr()
            self.expect("op", ";")
        step = None
        if self.peek().value != ")":
            step = self.parse_simple_stmt()
        self.expect("op", ")")
        body = self.parse_stmt_or_block()
        return For(init, cond, step, body, line=line)

    def _semi(self, stmt):
        self.expect("op", ";")
        return stmt

    def parse_stmt_or_block(self) -> list:
        if self.accept("op", "{"):
            return self.parse_block_body()
        return [self.parse_stmt()]

    def parse_simple_stmt(self):
        """Assignment, ++/--, or expression statement (no trailing ';')."""
        line = self.peek().line
        expr = self.parse_expr()
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("=", "+=", "-=", "*=", "/="):
            if not isinstance(expr, (Var, Index)):
                self.error("assignment target must be a variable or element")
            op = self.next().value
            value = self.parse_expr()
            return Assign(expr, op, value, line=line)
        if tok.kind == "op" and tok.value in ("++", "--"):
            if not isinstance(expr, (Var, Index)):
                self.error("++/-- target must be a variable or element")
            self.next()
            delta = Num(1.0, line=line)
            return Assign(expr, "+=" if tok.value == "++" else "-=", delta, line=line)
        return ExprStmt(expr, line=line)

    # -- expressions ------------------------------------------------------
    def parse_expr(self, min_prec: int = 1):
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "op" or tok.value not in _BINOPS:
                return left
            prec = _BINOPS[tok.value]
            if prec < min_prec:
                return left
            op = self.next().value
            right = self.parse_expr(prec + 1)
            left = Binary(op, left, right, line=tok.line)

    def parse_unary(self):
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("-", "!"):
            self.next()
            return Unary(tok.value, self.parse_unary(), line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self):
        atom = self.parse_atom()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.value == "[":
                if not isinstance(atom, Var):
                    self.error("only simple names can be indexed")
                self.next()
                idx = self.parse_expr()
                self.expect("op", "]")
                atom = Index(atom, idx, line=tok.line)
            else:
                return atom

    def parse_atom(self):
        tok = self.peek()
        if tok.kind == "num":
            self.next()
            return Num(float(tok.value), line=tok.line)
        if tok.kind == "str":
            self.next()
            return Str(tok.value, line=tok.line)
        if tok.kind == "op" and tok.value == "(":
            self.next()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        if tok.kind == "ident":
            name = self.next().value
            if self.accept("op", "("):
                args = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                return Call(name, args, line=tok.line)
            return Var(name, line=tok.line)
        self.error("expected expression")


def parse(source: str) -> ProgramAST:
    """Parse AceC source text into an AST."""
    return Parser(tokenize(source)).parse_program()
