"""Linear IR over basic blocks.

Operands are either plain variable names (``str``) — source variables
keep scoped unique names, temporaries are ``%tN`` — or :class:`Const`
wrappers.  Instructions are small mutable objects so optimization
passes can rewrite in place.

Shared-memory access ops appear in two flavours:

* pre-annotation (only straight out of lowering, source-level style):
  ``shared_load dst, rid, idx`` / ``shared_store rid, idx, src``;
* post-annotation: ``map``/``unmap``/``start_read``/``end_read``/
  ``start_write``/``end_write`` plus ``deref_load``/``deref_store`` on
  mapped handles — the Figure 3 primitive set.

Annotation ops carry two analysis/optimization fields: ``protocols``
(the §4.2 "set of possible protocols" for the access) and ``direct``
(set by the direct-dispatch pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: ops that transfer control (always the last instruction of a block)
TERMINATORS = ("jmp", "br", "ret")

#: annotation ops inserted around shared accesses
ANNOTATION_OPS = ("map", "unmap", "start_read", "end_read", "start_write", "end_write")

#: runtime calls that are synchronization points — no code motion past
#: them (§4.2: "code is never moved past synchronization calls")
SYNC_BUILTINS = ("ace_barrier", "ace_lock", "ace_unlock", "ace_change_protocol")


@dataclass(frozen=True)
class Const:
    """Literal operand (numbers; strings for protocol/space names)."""

    value: float | str


@dataclass
class Instr:
    """One IR instruction; field use depends on ``op``."""

    op: str
    dst: str | None = None
    args: list = field(default_factory=list)
    line: int = 0
    # annotation-op analysis results:
    protocols: frozenset | None = None
    direct: bool = False

    def uses(self) -> list[str]:
        """Variable names this instruction reads."""
        return [a for a in self.args if isinstance(a, str)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op]
        if self.dst is not None:
            parts.append(f"{self.dst} <-")
        parts.extend(
            repr(a.value) if isinstance(a, Const) else str(a) for a in self.args
        )
        flags = ""
        if self.direct:
            flags += " [direct]"
        return " ".join(parts) + flags


@dataclass
class Block:
    """Basic block: straight-line instrs; last one is a terminator."""

    name: str
    instrs: list = field(default_factory=list)

    @property
    def terminator(self) -> Instr:
        return self.instrs[-1]

    def successors(self) -> list[str]:
        t = self.terminator
        if t.op == "jmp":
            return [t.args[0].value]
        if t.op == "br":
            return [t.args[1].value, t.args[2].value]
        return []


@dataclass
class LoopInfo:
    """A structured loop recorded during lowering."""

    preheader: str
    header: str
    body: set          # block names strictly inside the loop (incl. header)
    exit: str


@dataclass
class FuncIR:
    """One function's IR."""

    name: str
    params: list  # unique param names
    entry: str
    blocks: dict = field(default_factory=dict)  # name -> Block
    arrays: dict = field(default_factory=dict)  # unique name -> size
    loops: list = field(default_factory=list)   # LoopInfo, innermost-first
    var_types: dict = field(default_factory=dict)  # unique name -> TypeSpec

    def block_order(self) -> list:
        """Blocks in a stable reverse-postorder from entry."""
        seen = set()
        order = []

        def visit(name):
            if name in seen:
                return
            seen.add(name)
            for succ in self.blocks[name].successors():
                visit(succ)
            order.append(name)

        visit(self.entry)
        order.reverse()
        # unreachable blocks go last, deterministic
        for name in self.blocks:
            if name not in seen:
                order.append(name)
        return order

    def all_instrs(self):
        for name in self.block_order():
            yield from self.blocks[name].instrs

    def predecessors(self) -> dict:
        preds: dict[str, list] = {n: [] for n in self.blocks}
        for name, block in self.blocks.items():
            for succ in block.successors():
                preds[succ].append(name)
        return preds


@dataclass
class ProgramIR:
    """Whole-program IR."""

    funcs: dict  # name -> FuncIR

    def dump(self) -> str:
        """Readable listing (tests assert on annotation shapes with this)."""
        lines = []
        for fname, fn in self.funcs.items():
            lines.append(f"func {fname}({', '.join(fn.params)}):")
            for bname in fn.block_order():
                lines.append(f"  {bname}:")
                for ins in self.funcs[fname].blocks[bname].instrs:
                    lines.append(f"    {ins!r}")
        return "\n".join(lines)
