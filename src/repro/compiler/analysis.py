"""§4.2's dataflow analyses: spaces for accesses, protocols for spaces.

Two cooperating analyses, exactly as the paper sketches:

1. **Origin analysis** (flow-insensitive, interprocedural): every
   value is mapped to the set of ``ace_gmalloc`` sites (for region
   ids / handles) and ``ace_new_space`` sites (for spaces) it may
   originate from.  Implemented as a worklist over an assignment
   graph spanning variables, local-array cells, function
   parameters/returns, and bulletin-board keys (the id-broadcast
   channel every SPMD program needs).

2. **Protocol-state analysis** (flow-sensitive within functions,
   summarized across calls): ``ace_new_space`` and
   ``ace_change_protocol`` act as strong updates on a space site's
   protocol set when the target site and protocol name are unique;
   otherwise weak updates.  Function entry states are the union over
   call sites; a call to a function that may (transitively) change a
   site's protocol widens that site to all protocols it is ever
   associated with.  Iterated to fixpoint over the call graph, so
   recursion is handled.

The product — ``instr.protocols`` on every annotation op *and* on the
``deref_load``/``deref_store`` accesses they bracket — drives all
three optimization passes and the sanitizer: a pass may touch an
access only if *every* possible protocol is registered optimizable,
direct dispatch fires only when the set is a singleton, and the
discipline checker (:mod:`repro.sanitize.static_check`) uses the same
stamp to decide whether a bare deref is a legally elided null hook or
a violation.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from repro.compiler.ir import Const, ProgramIR


@dataclass(frozen=True)
class SpaceSite:
    """An ace_new_space call site."""

    func: str
    index: int  # position in the function's instruction order

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"space@{self.func}:{self.index}"


@dataclass(frozen=True)
class RegionSite:
    """An ace_gmalloc call site."""

    func: str
    index: int

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"region@{self.func}:{self.index}"


class AnalysisResult:
    """What the optimizer consumes."""

    def __init__(self, all_protocol_names):
        self.all_protocols = frozenset(all_protocol_names)
        # filled in by analyze():
        self.initial_protocol: dict = {}   # SpaceSite -> str | None
        self.ever_protocols: dict = {}     # SpaceSite -> frozenset[str]
        self.region_spaces: dict = {}      # RegionSite -> frozenset[SpaceSite]


def _node(func: str, var: str) -> str:
    return f"{func}::{var}"


def analyze(program: ProgramIR, registry) -> AnalysisResult:
    """Run both analyses; stamps ``protocols`` on every annotation op."""
    result = AnalysisResult(registry.names())
    origins = _origin_analysis(program, result)
    _protocol_state_analysis(program, result, origins)
    return result


# ---------------------------------------------------------------------------
# origin analysis
# ---------------------------------------------------------------------------
def _origin_analysis(program: ProgramIR, result: AnalysisResult) -> dict:
    """Returns node -> set of sites; fills result.region_spaces partially."""
    edges: dict[str, set] = defaultdict(set)   # src node -> dst nodes
    seeds: dict[str, set] = defaultdict(set)   # node -> initial origin set
    gmalloc_space_operands: list = []          # (RegionSite, operand node | None)

    def operand_node(func, arg):
        return _node(func, arg) if isinstance(arg, str) else None

    def add_edge(src_node, dst_node):
        if src_node and dst_node:
            edges[src_node].add(dst_node)

    for fname, fn in program.funcs.items():
        for index, ins in enumerate(fn.all_instrs()):
            dst = operand_node(fname, ins.dst)
            if ins.op == "mov":
                add_edge(operand_node(fname, ins.args[0]), dst)
            elif ins.op == "idx_load":
                add_edge(_node(fname, f"arr:{ins.args[0]}"), dst)
            elif ins.op == "idx_store":
                add_edge(operand_node(fname, ins.args[2]), _node(fname, f"arr:{ins.args[0]}"))
            elif ins.op == "map":
                add_edge(operand_node(fname, ins.args[0]), dst)
            elif ins.op == "call":
                callee = ins.args[0].value
                callee_fn = program.funcs[callee]
                for param, arg in zip(callee_fn.params, ins.args[1:]):
                    add_edge(operand_node(fname, arg), _node(callee, param))
                add_edge(_node(callee, "<ret>"), dst)
            elif ins.op == "ret":
                add_edge(operand_node(fname, ins.args[0]), _node(fname, "<ret>"))
            elif ins.op == "builtin":
                bname = ins.args[0].value
                if bname == "ace_new_space":
                    site = SpaceSite(fname, index)
                    seeds[dst].add(site) if dst else None
                    proto = ins.args[1]
                    result.initial_protocol[site] = (
                        proto.value if isinstance(proto, Const) and isinstance(proto.value, str)
                        else None
                    )
                elif bname == "ace_gmalloc":
                    site = RegionSite(fname, index)
                    if dst:
                        seeds[dst].add(site)
                    gmalloc_space_operands.append((site, operand_node(fname, ins.args[1])))
                elif bname == "bb_put":
                    key = ins.args[1]
                    keyname = key.value if isinstance(key, Const) else "<any>"
                    add_edge(operand_node(fname, ins.args[3]), f"bb::{keyname}")
                elif bname == "bb_get":
                    key = ins.args[1]
                    keyname = key.value if isinstance(key, Const) else "<any>"
                    add_edge(f"bb::{keyname}", dst)

    # worklist propagation
    origins: dict[str, set] = defaultdict(set)
    work = deque()
    for node, sites in seeds.items():
        origins[node] |= sites
        work.append(node)
    while work:
        node = work.popleft()
        for dst in edges.get(node, ()):
            before = len(origins[dst])
            origins[dst] |= origins[node]
            if len(origins[dst]) != before:
                work.append(dst)

    # region site -> space sites
    for site, space_node in gmalloc_space_operands:
        spaces = origins.get(space_node, set()) if space_node else set()
        result.region_spaces[site] = frozenset(s for s in spaces if isinstance(s, SpaceSite))
    return origins


# ---------------------------------------------------------------------------
# protocol-state analysis
# ---------------------------------------------------------------------------
def _protocol_state_analysis(program: ProgramIR, result: AnalysisResult, origins) -> None:
    funcs = program.funcs

    # 1. gather: which sites does each change_protocol possibly target,
    #    and the set of protocols ever associated with each site.
    ever: dict[SpaceSite, set] = defaultdict(set)
    for site, initial in result.initial_protocol.items():
        ever[site].add(initial) if initial else ever[site].update(result.all_protocols)
    changes_in: dict[str, list] = defaultdict(list)  # func -> [(targets, names)]
    for fname, fn in funcs.items():
        for ins in fn.all_instrs():
            if ins.op == "builtin" and ins.args[0].value == "ace_change_protocol":
                node = _node(fname, ins.args[1]) if isinstance(ins.args[1], str) else None
                targets = frozenset(
                    s for s in origins.get(node, set()) if isinstance(s, SpaceSite)
                ) if node else frozenset()
                name_arg = ins.args[2]
                name = (
                    name_arg.value
                    if isinstance(name_arg, Const) and isinstance(name_arg.value, str)
                    else None
                )
                if not targets:
                    targets = frozenset(result.initial_protocol)  # unknown: all sites
                for site in targets:
                    ever[site].update([name] if name else result.all_protocols)
                changes_in[fname].append((targets, name))
    result.ever_protocols = {s: frozenset(p) for s, p in ever.items()}

    # 2. transitive "may change protocols" summary per function
    may_change: dict[str, set] = {f: set() for f in funcs}
    for fname, items in changes_in.items():
        for targets, _ in items:
            may_change[fname] |= set(targets)
    changed = True
    while changed:
        changed = False
        for fname, fn in funcs.items():
            for ins in fn.all_instrs():
                if ins.op == "call":
                    callee = ins.args[0].value
                    new = may_change[callee] - may_change[fname]
                    if new:
                        may_change[fname] |= new
                        changed = True

    all_sites = list(result.initial_protocol)

    def widen(site):
        return result.ever_protocols.get(site, result.all_protocols)

    # 3. interprocedural forward dataflow: state = {site: frozenset(protos)}
    entry_state: dict[str, dict] = {f: {} for f in funcs}
    entry_state["main"] = {s: widen(s) for s in all_sites}
    # per (func, block) in-state; recompute until call-graph fixpoint
    access_protocols: dict[int, frozenset] = {}

    def transfer_block(fname, state, block, record):
        state = dict(state)
        calls_out = []
        for ins in block.instrs:
            if ins.op in ("map", "start_read", "end_read", "start_write", "end_write",
                          "unmap", "deref_load", "deref_store"):
                if record:
                    node = _node(fname, ins.args[0]) if isinstance(ins.args[0], str) else None
                    region_sites = [
                        s for s in origins.get(node, set()) if isinstance(s, RegionSite)
                    ]
                    protos: set = set()
                    if not region_sites:
                        protos = set(result.all_protocols)
                    for rsite in region_sites:
                        spaces = result.region_spaces.get(rsite, frozenset())
                        if not spaces:
                            protos |= set(result.all_protocols)
                        for ssite in spaces:
                            protos |= set(state.get(ssite, widen(ssite)))
                    access_protocols[id(ins)] = frozenset(protos)
            elif ins.op == "builtin":
                bname = ins.args[0].value
                if bname == "ace_new_space":
                    idx = _instr_index(program.funcs[fname], ins)
                    site = SpaceSite(fname, idx)
                    initial = result.initial_protocol.get(site)
                    state[site] = frozenset([initial]) if initial else widen(site)
                elif bname == "ace_change_protocol":
                    node = _node(fname, ins.args[1]) if isinstance(ins.args[1], str) else None
                    targets = [
                        s for s in origins.get(node, set()) if isinstance(s, SpaceSite)
                    ] or all_sites
                    name_arg = ins.args[2]
                    name = (
                        name_arg.value
                        if isinstance(name_arg, Const) and isinstance(name_arg.value, str)
                        else None
                    )
                    if len(targets) == 1 and name:
                        state[targets[0]] = frozenset([name])  # strong update
                    else:
                        for site in targets:
                            cur = set(state.get(site, widen(site)))
                            cur.update([name] if name else result.all_protocols)
                            state[site] = frozenset(cur)
            elif ins.op == "call":
                callee = ins.args[0].value
                calls_out.append((callee, dict(state)))
                for site in may_change[callee]:
                    state[site] = widen(site)
        return state, calls_out

    def run_function(fname, record):
        """Forward dataflow over fname's CFG; returns call-out states."""
        fn = funcs[fname]
        in_states: dict[str, dict] = {fn.entry: dict(entry_state[fname])}
        work = deque([fn.entry])
        call_outs: list = []
        visited_budget = 0
        while work:
            bname = work.popleft()
            visited_budget += 1
            if visited_budget > 20_000:  # pragma: no cover - safety valve
                break
            state = in_states.get(bname, {})
            out_state, calls = transfer_block(fname, state, fn.blocks[bname], record)
            call_outs.extend(calls)
            for succ in fn.blocks[bname].successors():
                merged = _merge_states(in_states.get(succ), out_state, widen)
                if merged is not None:
                    in_states[succ] = merged
                    work.append(succ)
        return call_outs

    # call-graph fixpoint on entry states
    for _ in range(len(funcs) + 2):
        new_entries: dict[str, dict] = {f: {} for f in funcs}
        new_entries["main"] = entry_state["main"]
        for fname in funcs:
            for callee, state in run_function(fname, record=False):
                merged = _merge_states(new_entries.get(callee) or None, state, widen)
                if merged is not None:
                    new_entries[callee] = merged
                elif not new_entries[callee]:
                    new_entries[callee] = dict(state)
        if new_entries == entry_state:
            break
        entry_state = new_entries

    # final recording pass
    for fname in funcs:
        run_function(fname, record=True)

    # stamp instructions
    for fname, fn in funcs.items():
        for ins in fn.all_instrs():
            if id(ins) in access_protocols:
                ins.protocols = access_protocols[id(ins)]
            elif ins.op in ("map", "start_read", "end_read", "start_write", "end_write",
                            "unmap", "deref_load", "deref_store"):
                if ins.protocols is None:
                    ins.protocols = result.all_protocols


def _merge_states(current, incoming, widen):
    """Union-merge; returns the new state if it changed, else None."""
    if current is None:
        return dict(incoming)
    merged = dict(current)
    changed = False
    for site, protos in incoming.items():
        old = merged.get(site)
        new = frozenset(protos) if old is None else frozenset(old | protos)
        if new != old:
            merged[site] = new
            changed = True
    return merged if changed else None


def _instr_index(fn, target) -> int:
    for index, ins in enumerate(fn.all_instrs()):
        if ins is target:
            return index
    return -1  # pragma: no cover
