"""AST node definitions for AceC."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TypeSpec:
    """Declared type: base in {'int','double','void'}; shared/mapped
    pointers hold region ids / mapped handles; arrays are local."""

    base: str
    is_shared_ptr: bool = False
    is_mapped_ptr: bool = False
    array_size: int | None = None

    @property
    def is_handle(self) -> bool:
        return self.is_shared_ptr or self.is_mapped_ptr


# ---------------------------------------------------------------- expressions
@dataclass
class Num:
    value: float
    line: int = 0


@dataclass
class Str:
    value: str
    line: int = 0


@dataclass
class Var:
    name: str
    line: int = 0


@dataclass
class Index:
    base: Var
    index: "Expr"
    line: int = 0


@dataclass
class Call:
    name: str
    args: list
    line: int = 0


@dataclass
class Unary:
    op: str
    operand: "Expr"
    line: int = 0


@dataclass
class Binary:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


Expr = Num | Str | Var | Index | Call | Unary | Binary


# ---------------------------------------------------------------- statements
@dataclass
class Decl:
    typ: TypeSpec
    name: str
    init: Expr | None
    line: int = 0


@dataclass
class Assign:
    target: Var | Index
    op: str  # '=', '+=', '-=', '*=', '/='
    value: Expr
    line: int = 0


@dataclass
class If:
    cond: Expr
    then: list
    els: list
    line: int = 0


@dataclass
class While:
    cond: Expr
    body: list
    line: int = 0


@dataclass
class For:
    init: "Stmt | None"
    cond: Expr | None
    step: "Stmt | None"
    body: list
    line: int = 0


@dataclass
class Return:
    value: Expr | None
    line: int = 0


@dataclass
class Break:
    line: int = 0


@dataclass
class Continue:
    line: int = 0


@dataclass
class ExprStmt:
    expr: Expr
    line: int = 0


Stmt = Decl | Assign | If | While | For | Return | Break | Continue | ExprStmt


# ---------------------------------------------------------------- top level
@dataclass
class Func:
    ret: TypeSpec
    name: str
    params: list  # [(TypeSpec, name)]
    body: list = field(default_factory=list)
    line: int = 0


@dataclass
class ProgramAST:
    funcs: dict  # name -> Func
