"""Closure-compilation backend: lowered, optimized IR → pre-bound Python closures.

The tree-walking interpreter (:mod:`repro.compiler.interp`) pays, per
IR instruction, a string-compare dispatch chain, an ``OP_COST`` dict
probe, and one ``isinstance`` + dict hash per operand.  This backend
walks the IR exactly **once per compile** and emits, per instruction, a
small Python closure with everything pre-resolved:

* variables live in a flat register file (a plain list); operand slots
  are bound into the closure at compile time, so a read is one list
  index plus an ``is``-check against the unset sentinel;
* runs of computation-only instructions are fused per basic block into
  *segments*: each segment is emitted as straight-line Python source
  (operand slots and literals baked in, registers mirrored in locals)
  and compiled to one function — one dispatch and one call per
  segment instead of per instruction, with the segment's static cycle
  cost pre-summed into a single constant;
* builtins, runtime entry points, and region-handle plumbing are
  resolved at **bind time** (once per node per run): ``ace_barrier``
  becomes the node context's bound ``barrier``, ``map`` the runtime's
  bound ``map`` with the node id pre-applied, and so on — the hot loop
  never does an attribute lookup.  Node-dependent builtins inside a
  segment (``my_proc``, ``bb_put``, ...) are the one exception: the
  generated code calls them through a bind-time table ``S``.

The emitted program is still a generator over the simulation kernel
and reproduces the interpreter's behaviour *bit-for-bit*: the same
``Delay`` values flushed at the same points, the same runtime calls in
the same order, the same error messages on the same inputs.  The
interpreter stays untouched as the differential-testing oracle
(``tests/compiler/test_codegen_oracle.py`` pins the equivalence).

Cost accounting invariant: the interpreter accumulates per-op costs
into ``pending`` and flushes one ``Delay`` right before each runtime
interaction.  Fusing static costs to segment granularity is safe
because no flush can occur *inside* a segment — the total pending at
every flush point is identical, so the yielded ``Delay`` stream (and
therefore simulated cycles and golden traces) is too.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compiler.errors import AceRuntimeErr
from repro.compiler.ir import Const, ProgramIR
from repro.compiler.interp import _BIG, _MATH_COST, OP_COST
from repro.sim import Delay
from repro.sim.kernel import _DELAY_POOL, _DELAY_POOL_SIZE

#: register-file sentinel for "never assigned" (reads raise, like the
#: interpreter's env KeyError path)
_UNSET = object()

#: ops with no kernel interaction: fused into segments
_PURE_OPS = frozenset(
    ("const", "mov", "bin", "un", "idx_load", "idx_store", "deref_load", "deref_store")
)

#: builtins with no kernel interaction (host-side work; cost only)
_PURE_BUILTINS = frozenset(_MATH_COST) | frozenset(
    ("work", "my_proc", "num_procs", "print", "host_data", "bb_put", "bb_get")
)

#: runtime-library builtins: flush pending, then drive a context generator
_LIB_BUILTINS = frozenset(
    ("ace_new_space", "ace_gmalloc", "ace_change_protocol", "ace_barrier",
     "ace_lock", "ace_unlock")
)

# action tags (driver dispatch)
_SEG, _JMP, _BR, _RET, _MAP, _RT, _LIB, _CALL = range(8)

#: binary operators emitted verbatim into generated segment code
_ARITH = frozenset(("+", "-", "*"))
_CMP = frozenset(("==", "!=", "<", ">", "<=", ">="))


# Error helpers the generated code calls instead of carrying its own
# f-string raise sites: one short call per check keeps the per-program
# ``compile()`` bill (the dominant codegen cost) proportional to logic,
# not message text.  Messages match the interpreter's character-for-
# character.
def _oob(line, j, a):
    raise AceRuntimeErr(f"line {line}: index {j} out of bounds (size {len(a)})")


def _unset(fname, operand):
    raise AceRuntimeErr(f"{fname}: read of unset variable {operand}")


class _BindEnv:
    """Everything a node-bound program needs, resolved once per run."""

    __slots__ = ("ctx", "nid", "n_procs", "runtime", "bb", "prints", "host_data")

    def __init__(self, ctx, bb, prints, host_data):
        self.ctx = ctx
        self.nid = ctx.nid
        self.n_procs = ctx.n_procs
        self.runtime = ctx.backend.runtime
        self.bb = bb
        self.prints = prints
        self.host_data = host_data or {}


# ------------------------------------------------------------------ getters
def _getter(operand, fname, slots, safe=()):
    """Compile an operand into ``get(regs) -> value``.

    ``safe`` holds the slots definitely assigned at this program point
    (the must-assign dataflow result): reads of those skip the unset
    check entirely — the interpreter's KeyError path is unreachable.
    """
    if isinstance(operand, Const):
        v = operand.value
        return lambda regs: v
    i = slots[operand]
    if i in safe:
        return lambda regs: regs[i]
    msg = f"{fname}: read of unset variable {operand}"

    def get(regs):
        x = regs[i]
        if x is _UNSET:
            raise AceRuntimeErr(msg)
        return x

    return get


def _must_assigned(fn, slots) -> dict:
    """Per-block must-assign sets: slots set on *every* path to entry.

    Slots never revert to unset, so this is a plain forward dataflow
    with intersection at joins; params are bound on function entry
    (lowering rejects arity mismatches at call sites).
    """
    order = fn.block_order()
    preds = fn.predecessors()
    gen: dict = {}
    for bname in order:
        g = set()
        for ins in fn.blocks[bname].instrs:
            if ins.dst is not None:
                g.add(slots[ins.dst])
        gen[bname] = g
    params = {slots[p] for p in fn.params}
    ins_: dict = {b: None for b in order}  # None = not yet reached
    ins_[fn.entry] = set(params)
    changed = True
    while changed:
        changed = False
        for b in order:
            if b == fn.entry:
                continue  # always reached with exactly the params bound
            outs = [ins_[p] | gen[p] for p in preds[b] if ins_[p] is not None]
            new = set.intersection(*outs) if outs else set(params)
            if new != ins_[b]:
                ins_[b] = new
                changed = True
    return ins_


# ------------------------------------------------------ segment emission
# A segment — a run of computation-only instructions — is emitted as
# straight-line Python source and compiled once per program (one exec
# of the joined module, not one per segment).  Register slots and
# literals are baked into the text; registers the segment touches are
# mirrored in locals (``v<slot>``), written through to ``regs`` so the
# driver's branch/return getters and later segments observe them.
# Statement order tracks the interpreter exactly — including Python's
# own right-hand-side-first evaluation inside subscript stores — so
# error ordering is preserved too.

class _SegEmitter:
    """Accumulates source lines for one segment.

    ``assigned`` is the running must-assign set for the surrounding
    block walk (shared, mutated in place): reads of assigned slots
    skip the unset check; a read that *does* pass its check proves the
    slot set for the rest of the block.
    """

    __slots__ = (
        "fname", "slots", "aslots", "assigned", "lines", "loaded", "acache",
        "env_facs", "cost",
    )

    def __init__(self, fname, slots, aslots, assigned):
        self.fname = fname
        self.slots = slots
        self.aslots = aslots
        self.assigned = assigned
        self.lines: list = []
        self.loaded: set = set()   # slots whose local mirror v<i> is loaded
        self.acache: set = set()   # array slots with a local a<i>
        self.env_facs: list = []   # bind-time step factories, called via S[k]
        self.cost = 0

    def read(self, operand) -> str:
        """Emit the load (and unset check, if needed); return an atom."""
        if isinstance(operand, Const):
            return repr(operand.value)
        i = self.slots[operand]
        name = f"v{i}"
        if i not in self.loaded:
            self.lines.append(f"{name} = regs[{i}]")
            if i not in self.assigned:
                self.lines.append(
                    f"if {name} is _UNSET: _unset({self.fname!r}, {operand!r})"
                )
                self.assigned.add(i)
            self.loaded.add(i)
        return name

    def write(self, dst, expr) -> None:
        i = self.slots[dst]
        self.lines.append(f"v{i} = regs[{i}] = {expr}")
        self.loaded.add(i)
        self.assigned.add(i)

    def array(self, name) -> str:
        i = self.aslots[name]
        a = f"a{i}"
        if i not in self.acache:
            self.lines.append(f"{a} = arrays[{i}]")
            self.acache.add(i)
        return a

    def index(self, arr, idx_expr, line) -> None:
        """Emit ``j = int(...)`` plus the interpreter's bounds check."""
        self.lines.append(f"j = int({idx_expr})")
        self.lines.append(f"if not 0 <= j < len({arr}): _oob({line}, j, {arr})")

    def env_step(self, fac, dst) -> None:
        """Defer one node-dependent builtin to a bind-time step table."""
        k = len(self.env_facs)
        self.env_facs.append(fac)
        self.lines.append(f"S[{k}](regs, arrays, st)")
        if dst is not None:
            # the step writes regs[dst] behind the local mirror's back
            i = self.slots[dst]
            self.loaded.discard(i)
            self.assigned.add(i)


def _emit_pure(em: _SegEmitter, ins, fn) -> None:
    """Emit one computation-only instruction into the segment."""
    op = ins.op
    if op == "mov" or op == "const":
        em.write(ins.dst, em.read(ins.args[0]))
    elif op == "bin":
        o = ins.args[0].value
        a = em.read(ins.args[1])
        b = em.read(ins.args[2])
        if o in _ARITH:
            em.write(ins.dst, f"{a} {o} {b}")
        elif o in _CMP:
            em.write(ins.dst, f"float({a} {o} {b})")
        elif o == "/":
            em.lines.append(f"if {b} == 0: raise AceRuntimeErr('division by zero')")
            em.write(ins.dst, f"{a} / {b}")
        elif o == "%":
            em.lines.append(f"if int({b}) == 0: raise AceRuntimeErr('modulo by zero')")
            em.write(ins.dst, f"float(int({a}) % int({b}))")
        elif o == "&&":
            em.write(ins.dst, f"float(bool({a}) and bool({b}))")
        else:  # "||"
            em.write(ins.dst, f"float(bool({a}) or bool({b}))")
    elif op == "un":
        x = em.read(ins.args[1])
        em.write(ins.dst, f"-{x}" if ins.args[0].value == "-" else f"float(not {x})")
    elif op == "idx_load":
        a = em.array(ins.args[0])
        em.index(a, em.read(ins.args[1]), ins.line)
        numeric = not fn.var_types[ins.args[0]].is_handle
        em.write(ins.dst, f"float({a}[j])" if numeric else f"{a}[j]")
    elif op == "idx_store":
        a = em.array(ins.args[0])
        v = em.read(ins.args[2])  # RHS first, as in the interpreter's store
        em.index(a, em.read(ins.args[1]), ins.line)
        em.lines.append(f"{a}[j] = {v}")
    elif op == "deref_load":
        h = em.read(ins.args[0])
        em.lines.append(f"d = {h}.data")
        em.index("d", em.read(ins.args[1]), ins.line)
        em.write(ins.dst, "float(d[j])")
    else:  # deref_store
        h = em.read(ins.args[0])
        em.lines.append(f"d = {h}.data")
        v = em.read(ins.args[2])  # RHS first, as in the interpreter's store
        em.index("d", em.read(ins.args[1]), ins.line)
        em.lines.append(f"d[j] = {v}")


#: builtins inlined directly into segment source (env-independent);
#: each entry maps to an emitter given the read argument atoms
_INLINE_BUILTINS = {
    "sqrt": lambda a: f"math.sqrt({a[0]})",
    "fabs": lambda a: f"abs({a[0]})",
    "floor": lambda a: f"float(math.floor({a[0]}))",
    "min": lambda a: f"min({a[0]}, {a[1]})",
    "max": lambda a: f"max({a[0]}, {a[1]})",
    "idiv": lambda a: f"float(int({a[0]}) // int({a[1]}))",
    "imod": lambda a: f"float(int({a[0]}) % int({a[1]}))",
    "inf": lambda a: "_BIG",
}


def _emit_builtin(em: _SegEmitter, ins) -> None:
    """Emit one pure builtin; env-dependent ones go through ``S``."""
    name = ins.args[0].value
    em.cost += OP_COST.get("builtin", 1)
    if name in _MATH_COST:
        em.cost += _MATH_COST[name]
        expr = _INLINE_BUILTINS[name]([em.read(a) for a in ins.args[1:]])
        if ins.dst is not None:
            em.write(ins.dst, expr)
        else:  # evaluate for effect (exceptions), as the interpreter does
            em.lines.append(expr)
        return
    if name == "work":
        x = em.read(ins.args[1])
        em.lines.append(f"st[0] += int({x})")
        if ins.dst is not None:  # interp stores the builtin's None result
            em.write(ins.dst, "None")
        return
    # node-dependent: resolved at bind time, called via the S table
    em.cost += {"my_proc": 2, "num_procs": 2, "print": 0}.get(name, 4)
    em.env_step(_c_builtin_env(ins, em.fname, em.slots, em.assigned), ins.dst)


#: compiled segments cached by exact source text: programs (and the
#: same program at different optimization levels) share a lot of
#: identical straight-line runs, and slot numbers are baked into the
#: text, so equal text means equal behaviour.  Bounded like the parse
#: cache so property tests compiling arbitrary programs can't grow it
#: without limit.
_SEG_CACHE: dict[str, object] = {}
_SEG_CACHE_MAX = 8192


class _ProgCode:
    """Collects sources of segments not already cached; one exec per program."""

    __slots__ = ("chunks", "new")

    def __init__(self):
        self.chunks: list = []
        self.new: dict = {}  # key -> module-local name

    def add(self, em: _SegEmitter) -> str:
        """Register the segment's source; returns its cache key."""
        body = [f"st[0] += {em.cost}"] if em.cost else []
        body += em.lines
        if not body:  # pragma: no cover - close_seg never emits empties
            body = ["pass"]
        if em.env_facs:
            # bind-time factory form: generated code reaches the bound
            # node-dependent steps through S
            key = "S:" + "\n".join(body)
        else:
            # env-free: the compiled function is bind-invariant, shared
            # by every node of every run
            key = "\n".join(body)
        if key not in _SEG_CACHE and key not in self.new:
            name = f"_seg{len(self.new)}"
            self.new[key] = name
            if em.env_facs:
                src = (
                    f"def {name}(S):\n  def run(regs, arrays, st):\n"
                    + "\n".join("    " + b for b in body)
                    + "\n  return run"
                )
            else:
                src = f"def {name}(regs, arrays, st):\n" + "\n".join(
                    "  " + b for b in body
                )
            self.chunks.append(src)
        return key

    def build(self) -> dict:
        """Compile the misses and publish them into the shared cache."""
        if self.chunks:
            if len(_SEG_CACHE) + len(self.new) > _SEG_CACHE_MAX:
                _SEG_CACHE.clear()
            g = {
                "_UNSET": _UNSET, "AceRuntimeErr": AceRuntimeErr, "math": math,
                "_BIG": _BIG, "_oob": _oob, "_unset": _unset,
            }
            exec(compile("\n".join(self.chunks), "<acec-codegen>", "exec"), g)
            for key, name in self.new.items():
                _SEG_CACHE[key] = g[name]
        return _SEG_CACHE


# --------------------------------------------- node-dependent builtins
def _c_builtin_env(ins, fname, slots, safe=()):
    """Bind-time factory for a node-dependent host builtin.

    Returns ``fac(env) -> step(regs, arrays, st)``; the step mirrors
    the interpreter's semantics exactly (argument conversions, error
    messages, and storing ``None`` results when ``dst`` is set).
    """
    name = ins.args[0].value
    dst = slots[ins.dst] if ins.dst is not None else None
    gs = [_getter(a, fname, slots, safe) for a in ins.args[1:]]

    def store(compute):
        # interp stores the builtin's result whenever dst is set (None
        # results included)
        if dst is None:
            return lambda regs, arrays, st: compute(regs, st) and None

        def step(regs, arrays, st):
            regs[dst] = compute(regs, st)

        return step

    if name == "my_proc":
        def fac(env):
            me = float(env.nid)
            return store(lambda regs, st: me)

        return fac
    if name == "num_procs":
        def fac(env):
            n = float(env.n_procs)
            return store(lambda regs, st: n)

        return fac
    if name == "print":
        g0 = gs[0]

        def fac(env):
            prints = env.prints
            nid = env.nid

            def fn(regs, st):
                prints.append((nid, g0(regs)))
                return None

            return store(fn)

        return fac
    if name == "host_data":
        g0, g1 = gs

        def fac(env):
            hd = env.host_data

            def fn(regs, st):
                key = g0(regs)
                idx = int(g1(regs))
                try:
                    return float(hd[key][idx])
                except (KeyError, IndexError):
                    raise AceRuntimeErr(f"host_data({key!r}, {idx}) missing") from None

            return store(fn)

        return fac
    if name == "bb_put":
        g0, g1, g2 = gs

        def fac(env):
            bb = env.bb

            def fn(regs, st):
                bb[(g0(regs), int(g1(regs)))] = g2(regs)
                return None

            return store(fn)

        return fac
    if name == "bb_get":
        g0, g1 = gs

        def fac(env):
            bb = env.bb

            def fn(regs, st):
                key = (g0(regs), int(g1(regs)))
                try:
                    return bb[key]
                except KeyError:
                    raise AceRuntimeErr(
                        f"bb_get{key!r}: not published yet (missing barrier?)"
                    ) from None

            return store(fn)

        return fac
    raise AceRuntimeErr(f"unimplemented builtin {name!r}")  # pragma: no cover


# ------------------------------------------------------- library builtins
def _c_builtin_lib(ins, fname, slots, safe=()):
    """Compile an ``ace_*`` runtime call into a bind-time runner factory.

    The runner is a generator function mirroring the interpreter's
    post-flush tail exactly (argument conversions included).
    """
    name = ins.args[0].value
    dst = slots[ins.dst] if ins.dst is not None else None
    gs = [_getter(a, fname, slots, safe) for a in ins.args[1:]]
    if name == "ace_new_space":
        (g0,) = gs

        def fac(env):
            new_space = env.ctx.new_space

            def runner(regs):
                sid = yield from new_space(g0(regs))
                return float(sid)

            return runner

    elif name == "ace_gmalloc":
        g0, g1 = gs

        def fac(env):
            gmalloc = env.ctx.gmalloc

            def runner(regs):
                rid = yield from gmalloc(int(g0(regs)), int(g1(regs)))
                return float(rid)

            return runner

    elif name == "ace_change_protocol":
        g0, g1 = gs

        def fac(env):
            change_protocol = env.ctx.change_protocol

            def runner(regs):
                yield from change_protocol(int(g0(regs)), g1(regs))
                return None

            return runner

    elif name == "ace_barrier":
        (g0,) = gs

        def fac(env):
            barrier = env.ctx.barrier

            def runner(regs):
                yield from barrier(int(g0(regs)))
                return None

            return runner

    elif name == "ace_lock":
        (g0,) = gs

        def fac(env):
            lock = env.ctx.lock

            def runner(regs):
                yield from lock(int(g0(regs)))
                return None

            return runner

    elif name == "ace_unlock":
        (g0,) = gs

        def fac(env):
            unlock = env.ctx.unlock

            def runner(regs):
                yield from unlock(int(g0(regs)))
                return None

            return runner

    else:  # pragma: no cover - lowering emits only the names above
        raise AceRuntimeErr(f"unimplemented builtin {name!r}")
    return (_LIB, fac, dst)


# ------------------------------------------------------------- templates
class _FuncTemplate:
    __slots__ = ("name", "nslots", "param_slots", "array_inits", "entry", "blocks")

    def __init__(self, name, nslots, param_slots, array_inits, entry, blocks):
        self.name = name
        self.nslots = nslots
        self.param_slots = param_slots
        self.array_inits = array_inits  # [(is_handle, size), ...] by array slot
        self.entry = entry
        self.blocks = blocks  # [((action template, ...), terminator), ...]


class ClosureProgram:
    """Per-instruction thunks, fused per basic block — ready to bind."""

    __slots__ = ("funcs",)

    def __init__(self, funcs):
        self.funcs = funcs  # name -> _FuncTemplate


def compile_closures(ir: ProgramIR) -> ClosureProgram:
    """One walk over lowered, optimized IR → a bindable closure program.

    Every segment's source accumulates into one module compiled with a
    single ``exec`` per program; the walk leaves segment *names* in the
    action templates, patched to the compiled factories here.
    """
    code = _ProgCode()
    funcs = {name: _compile_func(fn, code) for name, fn in ir.funcs.items()}
    g = code.build()
    for ft in funcs.values():
        ft.blocks = [
            (
                tuple(
                    (_SEG, g[a[1]], a[2]) if a[0] == _SEG else a for a in acts
                ),
                term,
            )
            for acts, term in ft.blocks
        ]
    return ClosureProgram(funcs)


def _compile_func(fn, code: _ProgCode) -> _FuncTemplate:
    fname = fn.name
    # flat register file: every name the function mentions gets a slot
    slots: dict = {}

    def slot(name):
        i = slots.get(name)
        if i is None:
            i = slots[name] = len(slots)
        return i

    for p in fn.params:
        slot(p)
    for block in fn.blocks.values():
        for ins in block.instrs:
            if ins.dst is not None:
                slot(ins.dst)
            for a in ins.args:
                if isinstance(a, str) and a not in fn.arrays:
                    slot(a)
    aslots = {name: i for i, name in enumerate(fn.arrays)}
    array_inits = [
        (fn.var_types[name].is_handle, size) for name, size in fn.arrays.items()
    ]

    order = fn.block_order()
    bidx = {name: i for i, name in enumerate(order)}
    must = _must_assigned(fn, slots)
    blocks = [
        _compile_block(
            fn, fn.blocks[bname], fname, slots, aslots, bidx, code,
            set(must[bname] or ()),
        )
        for bname in order
    ]
    return _FuncTemplate(
        fname,
        len(slots),
        [slots[p] for p in fn.params],
        array_inits,
        bidx[fn.entry],
        blocks,
    )


#: terminator tags — compiled blocks end in exactly one of these, kept
#: out of the straight-line dispatch chain entirely
_TERMINATORS = frozenset((_JMP, _BR, _RET))


def _compile_block(fn, block, fname, slots, aslots, bidx, code, assigned):
    # ``assigned`` starts as the block's must-assign-in set and grows as
    # the walk passes definitions; every getter/emitter consults it at
    # its own program point, so checks survive exactly where a read
    # really can be the first on some path.
    actions: list = []
    seg: list = [None]  # currently-open segment emitter, if any

    def emitter() -> _SegEmitter:
        if seg[0] is None:
            seg[0] = _SegEmitter(fname, slots, aslots, assigned)
        return seg[0]

    def close_seg():
        if seg[0] is not None:
            actions.append((_SEG, code.add(seg[0]), tuple(seg[0].env_facs)))
            seg[0] = None

    for ins in block.instrs:
        op = ins.op
        if op in _PURE_OPS:
            em = emitter()
            em.cost += OP_COST.get(op, 1)
            _emit_pure(em, ins, fn)
        elif op == "builtin":
            name = ins.args[0].value
            if name in _PURE_BUILTINS:
                _emit_builtin(emitter(), ins)
            else:
                close_seg()
                actions.append(_c_builtin_lib(ins, fname, slots, assigned))
                if ins.dst is not None:
                    assigned.add(slots[ins.dst])
        elif op == "map":
            close_seg()
            actions.append(
                (
                    _MAP,
                    slots[ins.dst],
                    _getter(ins.args[0], fname, slots, assigned),
                    ins.direct,
                )
            )
            assigned.add(slots[ins.dst])
        elif op in ("unmap", "start_read", "end_read", "start_write", "end_write"):
            close_seg()
            actions.append(
                (_RT, op, _getter(ins.args[0], fname, slots, assigned), ins.direct)
            )
        elif op == "call":
            close_seg()
            actions.append(
                (
                    _CALL,
                    slots[ins.dst],
                    ins.args[0].value,
                    tuple(_getter(a, fname, slots, assigned) for a in ins.args[1:]),
                )
            )
            assigned.add(slots[ins.dst])
        elif op == "jmp":
            close_seg()
            actions.append((_JMP, bidx[ins.args[0].value]))
        elif op == "br":
            close_seg()
            actions.append(
                (
                    _BR,
                    _getter(ins.args[0], fname, slots, assigned),
                    bidx[ins.args[1].value],
                    bidx[ins.args[2].value],
                )
            )
        elif op == "ret":
            close_seg()
            actions.append((_RET, _getter(ins.args[0], fname, slots, assigned)))
        else:  # pragma: no cover - lowering emits only the ops above
            raise AceRuntimeErr(f"unknown IR op {op!r}")
    close_seg()  # unreachable unless the block lacks a terminator
    if not actions or actions[-1][0] not in _TERMINATORS:
        # Lowering always terminates blocks; mirror the interpreter's
        # behaviour (it would walk off block.instrs) defensively.
        raise AceRuntimeErr(
            f"{fname}: block {block.name!r} has no terminator"
        )  # pragma: no cover
    return tuple(actions[:-1]), actions[-1]


# ----------------------------------------------------------------- bind
def bind_node(program: ClosureProgram, ctx, bb, prints, host_data):
    """Bind a compiled program to one node; returns the SPMD generator.

    Resolution order mirrors the interpreter: runtime-library builtins
    go through the node context (``ctx.barrier`` handles the default-
    space multiplexing), annotation ops through the backend runtime
    with the node id pre-applied.
    """
    env = _BindEnv(ctx, bb, prints, host_data)
    runners: dict = {}
    block_tables: dict = {}
    for name, ft in program.funcs.items():
        blocks: list = []
        block_tables[name] = blocks
        runners[name] = _make_runner(ft, blocks)
    for name, ft in program.funcs.items():
        table = block_tables[name]
        for acts, term in ft.blocks:
            table.append((tuple(_bind_action(a, env, runners) for a in acts), term))
    # The top-level activation of main() gets its own runner whose ret
    # also flushes the final pending cycles — saving the wrapper
    # generator frame every kernel resume would otherwise traverse.
    # Recursive calls to main() go through runners["main"], which must
    # NOT flush at its ret (the interpreter only flushes once, at the
    # very end of Interp.run()).
    main_top = _make_runner(program.funcs["main"], block_tables["main"], top=True)
    return main_top([], [0])


def _bind_action(a, env, runners):
    tag = a[0]
    if tag == _SEG:
        # segments bind to the bare compiled function — the driver
        # treats any non-tuple action as a segment, the hottest case.
        # a[2] holds the bind-time step factories the generated code
        # reaches through its S table; without any, a[1] is already the
        # bind-invariant compiled function itself
        if a[2]:
            return a[1](tuple(fac(env) for fac in a[2]))
        return a[1]
    if tag == _MAP:
        return (_MAP, a[1], a[2], env.runtime.map, env.nid, a[3])
    if tag == _RT:
        return (_RT, getattr(env.runtime, a[1]), env.nid, a[2], a[3])
    if tag == _LIB:
        return (_LIB, a[1](env), a[2])
    if tag == _CALL:
        return (_CALL, a[1], runners[a[2]], a[3])
    return a  # _JMP / _BR / _RET are fully static


def _make_runner(ft: _FuncTemplate, blocks: list, top: bool = False):
    """Build the per-activation driver for one function.

    ``blocks`` is the (possibly still-empty) bound-action table,
    captured by reference so mutually recursive functions can resolve
    each other before any table is filled.

    ``top=True`` builds the variant for the program's single top-level
    ``main()`` activation: its ``ret`` also flushes the final pending
    cycles (what ``Interp.run()`` does after ``_exec`` returns), so the
    bound program needs no wrapper generator around it.

    Dispatch layout: terminators (jmp/br/ret) are stored separately
    from the block body; segments — the hottest action by far — bind
    to bare functions, so their dispatch is a single class test, and
    the remaining tags are ordered by measured frequency (annotation
    ops before calls).  The per-block terminator pays at most two
    compares.  Pending-cycle flushes index the kernel's Delay pool
    directly instead of going through ``Delay.__new__``.
    """
    nslots = ft.nslots
    param_slots = ft.param_slots
    array_inits = ft.array_inits
    entry = ft.entry
    pool = _DELAY_POOL
    pool_size = _DELAY_POOL_SIZE

    def run(args, st):
        regs = [_UNSET] * nslots
        for s, v in zip(param_slots, args):
            regs[s] = v
        arrays = [
            [None] * size if is_handle else np.zeros(size)
            for is_handle, size in array_inits
        ]
        b = entry
        while True:
            acts, term = blocks[b]
            for act in acts:
                if act.__class__ is not tuple:  # segment: bare function
                    act(regs, arrays, st)
                    continue
                tag = act[0]
                if tag == _RT:
                    st[0] += 1
                    p = st[0]
                    st[0] = 0
                    yield pool[p] if p < pool_size else Delay(p)
                    yield from act[1](act[2], act[3](regs), act[4])
                elif tag == _MAP:
                    st[0] += 1
                    p = st[0]
                    st[0] = 0
                    yield pool[p] if p < pool_size else Delay(p)
                    regs[act[1]] = yield from act[3](act[4], int(act[2](regs)), act[5])
                elif tag == _LIB:
                    st[0] += 1
                    p = st[0]
                    st[0] = 0
                    yield pool[p] if p < pool_size else Delay(p)
                    r = yield from act[1](regs)
                    if act[2] is not None:
                        regs[act[2]] = r
                else:  # _CALL
                    st[0] += 12
                    regs[act[1]] = yield from act[2]([g(regs) for g in act[3]], st)
            tag = term[0]
            if tag == _BR:
                st[0] += 2
                b = term[2] if term[1](regs) else term[3]
            elif tag == _JMP:
                st[0] += 1
                b = term[1]
            elif not top:  # _RET
                st[0] += 2
                return term[1](regs)
            else:  # _RET of the top-level main(): final flush, then stop
                st[0] += 2
                result = term[1](regs)  # may raise: must precede the flush
                p = st[0]
                st[0] = 0
                if p:
                    yield pool[p] if p < pool_size else Delay(p)
                return result

    return run
