"""Compiler and interpreter error types."""


class AceCompileError(Exception):
    """Any error raised while compiling an AceC program."""


class AceSyntaxError(AceCompileError):
    """Lexical or syntactic error, with source position."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"line {line}:{col}: {message}")
        self.line = line
        self.col = col


class AnnotationError(AceCompileError):
    """Annotation-discipline violations found by the sanitizer.

    Raised by :func:`repro.sanitize.static_check.check_or_raise`;
    carries the full violation list so tools can render per-line
    diagnostics, and names the pipeline phase (post-lowering vs.
    post-optimization) so a pass bug is distinguishable from a
    front-end bug.
    """

    def __init__(self, phase: str, violations):
        self.phase = phase
        self.violations = list(violations)
        body = "\n".join(f"  {v}" for v in self.violations)
        super().__init__(
            f"{len(self.violations)} annotation violation(s) {phase}:\n{body}"
        )


class AceRuntimeErr(Exception):
    """Error raised while interpreting compiled AceC code."""
