"""Compiler and interpreter error types."""


class AceCompileError(Exception):
    """Any error raised while compiling an AceC program."""


class AceSyntaxError(AceCompileError):
    """Lexical or syntactic error, with source position."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"line {line}:{col}: {message}")
        self.line = line
        self.col = col


class AceRuntimeErr(Exception):
    """Error raised while interpreting compiled AceC code."""
