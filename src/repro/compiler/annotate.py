"""Annotation insertion: the Figure 5 translation.

Every ``shared_load dst, rid, idx`` becomes::

    map        %h, rid        (ACE_MAP on the base address)
    start_read %h             (ACE_START_READ on the temporary)
    deref_load dst, %h, idx   (the actual load)
    end_read   %h             (ACE_END_READ)

and symmetrically for stores.  Runtime-level (hand-annotated) code
contains no ``shared_load``/``shared_store`` ops, so this pass is the
identity on it.
"""

from __future__ import annotations

import re

from repro.compiler.ir import FuncIR, Instr, ProgramIR


def _next_temp_counter(fn: FuncIR) -> int:
    best = 0
    for block in fn.blocks.values():
        for ins in block.instrs:
            for name in [ins.dst, *ins.uses()]:
                if name and name.startswith("%t"):
                    m = re.match(r"%t(\d+)$", name)
                    if m:
                        best = max(best, int(m.group(1)))
    return best


def insert_annotations(program: ProgramIR) -> ProgramIR:
    """Rewrite shared accesses into annotated form, in place."""
    for fn in program.funcs.values():
        counter = _next_temp_counter(fn)
        for block in fn.blocks.values():
            out = []
            for ins in block.instrs:
                if ins.op == "shared_load":
                    rid, idx = ins.args
                    counter += 1
                    h = f"%t{counter}"
                    out.append(Instr("map", dst=h, args=[rid], line=ins.line))
                    out.append(Instr("start_read", args=[h], line=ins.line))
                    out.append(Instr("deref_load", dst=ins.dst, args=[h, idx], line=ins.line))
                    out.append(Instr("end_read", args=[h], line=ins.line))
                elif ins.op == "shared_store":
                    rid, idx, src = ins.args
                    counter += 1
                    h = f"%t{counter}"
                    out.append(Instr("map", dst=h, args=[rid], line=ins.line))
                    out.append(Instr("start_write", args=[h], line=ins.line))
                    out.append(Instr("deref_store", args=[h, idx, src], line=ins.line))
                    out.append(Instr("end_write", args=[h], line=ins.line))
                else:
                    out.append(ins)
            block.instrs = out
    return program
