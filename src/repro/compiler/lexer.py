"""Tokenizer for AceC."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.errors import AceSyntaxError

KEYWORDS = {
    "int",
    "double",
    "void",
    "shared",
    "mapped",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
}

# Multi-char operators first so maximal munch works.
OPERATORS = [
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
]


#: maximal munch, precomputed: try the two-char slice first, then one
_TWO_CHAR_OPS = frozenset(op for op in OPERATORS if len(op) == 2)
_ONE_CHAR_OPS = frozenset(op for op in OPERATORS if len(op) == 1)


@dataclass(frozen=True)
class Token:
    kind: str  # 'num', 'str', 'ident', 'kw', 'op', 'eof'
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.value!r}@{self.line}:{self.col}"


def tokenize(source: str) -> list[Token]:
    """Turn AceC source into a token list (comments stripped)."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg):
        raise AceSyntaxError(msg, line, col)

    while i < n:
        c = source[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "/":
            if source.startswith("//", i):
                while i < n and source[i] != "\n":
                    i += 1
                continue
            if source.startswith("/*", i):
                end = source.find("*/", i + 2)
                if end < 0:
                    error("unterminated block comment")
                skipped = source[i : end + 2]
                line += skipped.count("\n")
                col = 1 if "\n" in skipped else col + len(skipped)
                i = end + 2
                continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n and (
                source[j].isdigit()
                or (source[j] == "." and not seen_dot and not seen_exp)
                or (source[j] in "eE" and not seen_exp and j > i)
                or (source[j] in "+-" and j > i and source[j - 1] in "eE")
            ):
                if source[j] == ".":
                    seen_dot = True
                if source[j] in "eE":
                    seen_exp = True
                j += 1
            tokens.append(Token("num", source[i:j], line, col))
            col += j - i
            i = j
            continue
        if c == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    error("unterminated string literal")
                j += 1
            if j >= n:
                error("unterminated string literal")
            tokens.append(Token("str", source[i + 1 : j], line, col))
            col += j - i + 1
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            tokens.append(Token("kw" if word in KEYWORDS else "ident", word, line, col))
            col += j - i
            i = j
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("op", two, line, col))
            col += 2
            i += 2
        elif c in _ONE_CHAR_OPS:
            tokens.append(Token("op", c, line, col))
            col += 1
            i += 1
        else:
            error(f"unexpected character {c!r}")
    tokens.append(Token("eof", "", line, col))
    return tokens
