"""The AceC builtin/library surface shared by lowering and the interpreter.

``ace_map`` / ``ace_unmap`` / ``ace_start_read`` / ... are listed here
for reference but are *not* dispatched as builtins: lowering turns
them directly into the corresponding annotation IR ops, so hand-
annotated (Figure 4 style) and compiler-annotated code meet in the
same IR vocabulary.
"""

#: name -> (n_args, has_result)
BUILTINS = {
    # Table 2 library routines
    "ace_new_space": (1, True),
    "ace_gmalloc": (2, True),
    "ace_change_protocol": (2, False),
    "ace_barrier": (1, False),
    "ace_lock": (1, False),
    "ace_unlock": (1, False),
    # SPMD identity
    "my_proc": (0, True),
    "num_procs": (0, True),
    # math
    "sqrt": (1, True),
    "fabs": (1, True),
    "floor": (1, True),
    "idiv": (2, True),
    "imod": (2, True),
    "min": (2, True),
    "max": (2, True),
    "inf": (0, True),
    # modeled computation cost (cycles) for the numeric kernel itself
    "work": (1, False),
    # host interface: input data and the id bulletin board (models the
    # setup-time broadcast of region ids every DSM benchmark performs)
    "host_data": (2, True),
    "bb_put": (3, False),
    "bb_get": (2, True),
    # debugging
    "print": (1, False),
}

#: explicit annotation calls -> IR op
ANNOTATION_CALLS = {
    "ace_map": "map",
    "ace_unmap": "unmap",
    "ace_start_read": "start_read",
    "ace_end_read": "end_read",
    "ace_start_write": "start_write",
    "ace_end_write": "end_write",
}
