"""Merging redundant protocol calls (§4.2, second optimization; Figure 6).

Per basic block:

* **MAP merging** — available-expression analysis on ``map`` operands:
  a later ``ACE_MAP(x)`` whose ``x`` is unchanged since an earlier map
  in the block reuses the earlier handle (the later map becomes a
  ``mov``, preserving uses of its destination in other blocks).
* **START/END merging** — when an access ends and a later access of
  the *same mode* on the same handle starts in the same block with no
  synchronization between, the inner END/START pair is deleted: "use
  the highest ACE_START_*, and the lowest ACE_END_*, and remove the
  rest."  Reads never merge with writes (the paper's footnote).

Both rewrites apply only where every possible protocol is optimizable,
and available expressions are killed at synchronization calls.
"""

from __future__ import annotations

from repro.compiler.ir import Const, Instr, ProgramIR, SYNC_BUILTINS


def _optimizable(ins: Instr, registry) -> bool:
    return ins.protocols is not None and all(
        registry.spec(p).optimizable for p in ins.protocols
    )


def merge_calls(program: ProgramIR, registry) -> int:
    """Run the pass; returns the number of instructions removed/downgraded."""
    removed = 0
    for fn in program.funcs.values():
        for block in fn.blocks.values():
            removed += _merge_maps(block, registry)
            removed += _merge_start_end(block, registry)
    return removed


def _key(operand):
    return ("const", operand.value) if isinstance(operand, Const) else ("var", operand)


def _merge_maps(block, registry) -> int:
    available: dict = {}  # operand key -> handle name
    changed = 0
    for i, ins in enumerate(block.instrs):
        if ins.dst is not None:
            # a definition kills maps whose operand was this variable
            available = {k: v for k, v in available.items() if k != ("var", ins.dst)}
        if ins.op == "builtin" and ins.args[0].value in SYNC_BUILTINS:
            available.clear()
            continue
        if ins.op == "map":
            key = _key(ins.args[0])
            if key in available and _optimizable(ins, registry):
                block.instrs[i] = Instr(
                    "mov", dst=ins.dst, args=[available[key]], line=ins.line
                )
                changed += 1
            else:
                available[key] = ins.dst
    return changed


_PAIRS = {"end_read": "start_read", "end_write": "start_write"}


def _merge_start_end(block, registry) -> int:
    """Delete END(h); ...; START(h) pairs of matching mode."""
    # resolve handle aliases introduced by map merging (mov chains)
    alias: dict[str, str] = {}

    def resolve(h):
        while h in alias:
            h = alias[h]
        return h

    removed = 0
    changed = True
    while changed:
        changed = False
        alias.clear()
        pending: dict = {}  # (handle, end_op) -> index of candidate END
        for i, ins in enumerate(block.instrs):
            if ins.op == "mov" and isinstance(ins.args[0], str):
                alias[ins.dst] = ins.args[0]
                continue
            if ins.op == "builtin" and ins.args[0].value in SYNC_BUILTINS:
                pending.clear()
                continue
            if ins.op in _PAIRS and _optimizable(ins, registry):
                pending[(resolve(ins.args[0]), ins.op)] = i
                continue
            if ins.op in ("start_read", "start_write"):
                h = resolve(ins.args[0])
                end_op = "end_read" if ins.op == "start_read" else "end_write"
                key = (h, end_op)
                if key in pending and _optimizable(ins, registry):
                    j = pending.pop(key)
                    del block.instrs[i]
                    del block.instrs[j]
                    removed += 2
                    changed = True
                    break
                # a new START on this handle invalidates older candidates
                pending.pop((h, "end_read"), None)
                pending.pop((h, "end_write"), None)
            elif ins.op in ("unmap",):
                pending.pop((resolve(ins.args[0]), "end_read"), None)
                pending.pop((resolve(ins.args[0]), "end_write"), None)
    return removed
