"""Serving-scale sharded KV service on spaces (DESIGN.md §16).

The serving stack exercises the paper's customizable-protocol
machinery under open request traffic instead of phased SPMD compute:
each shard of the key space is a space, each shard's protocol is a
live choice, and an :class:`AdaptiveController` can revisit that
choice online via ``Ace_ChangeProtocol`` while requests are in flight.
"""

from repro.serve.controller import AdaptiveController, StaticController
from repro.serve.service import run_serve, serve_program
from repro.serve.workload import ServeWorkload, build_traffic, traffic_digest, zipf_weights

__all__ = [
    "AdaptiveController",
    "ServeWorkload",
    "StaticController",
    "build_traffic",
    "run_serve",
    "serve_program",
    "traffic_digest",
    "zipf_weights",
]
