"""Seeded deterministic open-loop traffic for the sharded KV service.

The generator is the serving-scale counterpart of the SPMD workload
classes in :mod:`repro.apps`: a :class:`ServeWorkload` names every
input (key universe, shard count, zipfian skew, read/write mix, a
mid-run mix shift, aggregate arrival rate, request count, seed) and
:func:`build_traffic` expands it — vectorized numpy, one RNG draw
sequence — into flat per-request arrays.  The whole request stream is
a pure function of the workload, so two runs with the same seed replay
the same million requests in the same order with the same arrival
cycles.

Layout decisions live here so the service, the controller, and the
tests cannot drift:

* **Key → shard** is by contiguous rank block (``key * n_shards //
  n_keys``).  Keys are zipf-ranked by index, so shard 0 holds the
  hottest keys and the last shard the coldest tail — shards have
  genuinely different temperatures, which is what makes *per-shard*
  protocol choice (and the adaptive controller) meaningful.  This is
  the service-level sharding; the directory's ``rid % n_shards`` entry
  tables (:meth:`~repro.dsm.directory.DirectoryService.shard_of`) are
  an independent axis the serve harness also exercises.
* **Key → home node** is round-robin (``key % n_procs``), so every
  node is a storage backend for a slice of each shard.
* **Request → front-end node** is round-robin by request index: every
  node serves an interleaved slice of the open-loop stream, the
  serving analogue of an SPMD owner-computes split.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np


@dataclass(frozen=True)
class ServeWorkload:
    """One serving scenario: traffic shape plus control-loop cadence.

    ``rate`` is the aggregate open-loop arrival rate in requests per
    1000 cycles; arrivals are a seeded exponential (Poisson) process.
    ``batch`` is the per-node batch size between control epochs: nodes
    rendezvous every ``batch`` of their own requests, which is where
    the adaptive controller may act.  ``read_frac`` applies to the
    first ``shift_at`` fraction of the stream; after the shift point
    the mix becomes ``shift_read_frac`` (``None`` = no shift).
    """

    n_keys: int = 64
    n_shards: int = 4
    n_requests: int = 4096
    zipf_s: float = 1.1
    read_frac: float = 0.9
    shift_at: float = 0.5
    shift_read_frac: float | None = None
    rate: float = 40.0
    batch: int = 64
    think_cycles: int = 20
    region_words: int = 4
    seed: int = 2026

    def __post_init__(self):
        if self.n_shards < 1 or self.n_shards > self.n_keys:
            raise ValueError(
                f"n_shards must be in [1, n_keys]: {self.n_shards} vs {self.n_keys}"
            )
        if not (0.0 <= self.read_frac <= 1.0):
            raise ValueError(f"read_frac must be a fraction: {self.read_frac}")
        if self.shift_read_frac is not None and not (0.0 <= self.shift_read_frac <= 1.0):
            raise ValueError(f"shift_read_frac must be a fraction: {self.shift_read_frac}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive: {self.rate}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1: {self.batch}")

    @classmethod
    def paper_scale(cls) -> "ServeWorkload":
        """The "millions of users" configuration: 2M requests over 4096
        keys.  Minutes of wall clock in the pure-Python kernel — the
        bench default stays at thousands of requests, same shape."""
        return cls(n_keys=4096, n_shards=16, n_requests=2_000_000, batch=4096)

    def to_dict(self) -> dict:
        return asdict(self)

    # -- layout ---------------------------------------------------------
    def shard_of_key(self, key: int) -> int:
        """Contiguous rank-block sharding: shard 0 is the hot shard."""
        return key * self.n_shards // self.n_keys

    def keys_of_shard(self, shard: int) -> range:
        lo = -(-shard * self.n_keys // self.n_shards)  # ceil division
        hi = -(-(shard + 1) * self.n_keys // self.n_shards)
        return range(lo, hi)


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized bounded-zipf popularity over ranks 0..n-1."""
    w = (np.arange(1, n + 1, dtype=np.float64)) ** (-s)
    return w / w.sum()


def build_traffic(workload: ServeWorkload, n_procs: int) -> dict:
    """Expand the workload into flat per-request arrays (one RNG pass).

    Returns ``keys`` (int64), ``is_read`` (bool), ``arrival`` (int64,
    nondecreasing open-loop arrival cycles), ``value`` (float64, the
    payload a write stores — the request index, so any final cell
    value names the exact request that produced it), plus the derived
    ``shard`` per request and ``node`` (front-end assignment).
    """
    wl = workload
    rng = np.random.default_rng(wl.seed)
    n = wl.n_requests
    keys = rng.choice(wl.n_keys, size=n, p=zipf_weights(wl.n_keys, wl.zipf_s))
    mix = np.full(n, wl.read_frac)
    shift_idx = int(n * wl.shift_at)
    if wl.shift_read_frac is not None:
        mix[shift_idx:] = wl.shift_read_frac
    is_read = rng.random(n) < mix
    gaps = rng.exponential(1000.0 / wl.rate, size=n)
    arrival = np.cumsum(gaps).astype(np.int64)
    return {
        "keys": keys.astype(np.int64),
        "is_read": is_read,
        "arrival": arrival,
        "value": np.arange(n, dtype=np.float64),
        "shard": (keys * wl.n_shards // wl.n_keys).astype(np.int64),
        "node": (np.arange(n) % n_procs).astype(np.int64),
        "shift_idx": shift_idx,
    }


def traffic_digest(traffic: dict) -> dict:
    """Small JSON-friendly fingerprint of a generated stream (tests and
    artifacts pin it so workload regressions are loud)."""
    keys = traffic["keys"]
    return {
        "requests": int(keys.size),
        "reads": int(traffic["is_read"].sum()),
        "hottest_key": int(np.bincount(keys).argmax()),
        "hottest_share": round(float(np.bincount(keys).max() / keys.size), 4),
        "last_arrival": int(traffic["arrival"][-1]),
        "key_checksum": int(keys.sum()),
    }
