"""Online protocol controller for the sharded KV service.

The controller is the serving-side payoff of the paper's thesis: when
protocols are *named, first-class choices* (``Ace_ChangeProtocol``)
rather than baked into the system, the choice can be revisited while
the system runs.  :class:`AdaptiveController` closes that loop: at
every control epoch (a batch barrier in :mod:`repro.serve.service`) it
samples the live observability counters — the same
:class:`~repro.machine.stats.Stats` counters and
:class:`~repro.obs.metrics.MetricsWindow` rows a human operator would
read — computes each shard's recent read/write mix, and decides
whether the shard's protocol still fits its traffic.

Everything here runs **host-side on node 0 between two barriers**: the
sampling and the decision charge zero simulated cycles, exactly like
the host-side graph partitioning in the app suite.  Only the
``change_protocol`` collectives the decision *requests* cost cycles —
that cost is the honest price of adaptivity and is what the
adaptive-vs-static experiment measures.

Decisions are deterministic functions of sampled counters, so a seeded
run replays the same switch schedule cycle-for-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ShardState:
    """Controller-side bookkeeping for one shard."""

    protocol: str
    reads: int = 0  # cumulative counter value at last sample
    writes: int = 0
    epochs_since_switch: int = 1_000_000  # "long ago" so epoch 0 may act


@dataclass
class Decision:
    """One epoch's audit record for one shard (JSON-friendly)."""

    epoch: int
    shard: int
    reads: int  # delta this epoch
    writes: int
    write_frac: float | None
    protocol: str
    switch_to: str | None


class StaticController:
    """Degenerate controller: per-shard protocols fixed at launch.

    The static baselines in the adaptive-vs-static experiment use this
    so both modes run the *identical* batch/barrier skeleton — the only
    difference measured is the decisions, not the harness.
    """

    adaptive = False

    def __init__(self, protocols: dict[int, str]):
        self.protocols = dict(protocols)
        self.decisions: list[Decision] = []
        self.switches = 0

    def epoch(self, epoch: int, stats, metrics=None) -> dict[int, str]:
        """Return ``{shard: new_protocol}`` — always empty for static."""
        return {}


class AdaptiveController:
    """Hysteresis controller over per-shard write fractions.

    Policy: a shard whose recent traffic is read-dominated wants an
    update-style protocol (``read_protocol``: writers push fresh data
    to the warm sharer set, reads never miss); a write-dominated shard
    wants an invalidation/migration protocol (``write_protocol``: no
    fan-out of updates nobody will read).  The two thresholds
    (``hi_write_frac`` to leave the read protocol, ``lo_write_frac`` to
    return) plus a ``cooldown`` in epochs give hysteresis, so a shard
    sitting near the boundary does not thrash — each switch is a real
    collective with real cycle cost.

    ``min_ops`` suppresses decisions on shards too cold this epoch to
    estimate a mix (their counters barely moved); cold shards keep
    whatever protocol they have.
    """

    adaptive = True

    def __init__(
        self,
        protocols: dict[int, str],
        read_protocol: str = "DynamicUpdate",
        write_protocol: str = "Migratory",
        hi_write_frac: float = 0.35,
        lo_write_frac: float = 0.15,
        cooldown: int = 2,
        min_ops: int = 8,
    ):
        if not (0.0 <= lo_write_frac <= hi_write_frac <= 1.0):
            raise ValueError(
                f"need 0 <= lo <= hi <= 1: lo={lo_write_frac} hi={hi_write_frac}"
            )
        self.protocols = dict(protocols)
        self.read_protocol = read_protocol
        self.write_protocol = write_protocol
        self.hi = hi_write_frac
        self.lo = lo_write_frac
        self.cooldown = cooldown
        self.min_ops = min_ops
        self._shards = {s: ShardState(protocol=p) for s, p in protocols.items()}
        self.decisions: list[Decision] = []
        self.switches = 0

    def epoch(self, epoch: int, stats, metrics=None) -> dict[int, str]:
        """Sample counters, return ``{shard: new_protocol}`` for switches.

        ``stats`` is the machine's :class:`~repro.machine.stats.Stats`;
        the service bumps ``serve.shard<s>.reads`` / ``.writes`` per
        completed request, so the delta since the previous epoch is the
        shard's recent mix.  ``metrics`` (a
        :class:`~repro.obs.metrics.MetricsWindow` or ``None``) rides
        along in the audit trail; the decision itself keys off the mix
        so runs with observability fully off behave identically.
        """
        changes: dict[int, str] = {}
        for shard in sorted(self._shards):
            st = self._shards[shard]
            st.epochs_since_switch += 1
            reads = stats.get(f"serve.shard{shard}.reads")
            writes = stats.get(f"serve.shard{shard}.writes")
            d_reads, d_writes = reads - st.reads, writes - st.writes
            st.reads, st.writes = reads, writes
            ops = d_reads + d_writes
            write_frac = d_writes / ops if ops else None
            switch_to = None
            if ops >= self.min_ops and st.epochs_since_switch >= self.cooldown:
                if st.protocol != self.write_protocol and write_frac >= self.hi:
                    switch_to = self.write_protocol
                elif st.protocol != self.read_protocol and write_frac <= self.lo:
                    switch_to = self.read_protocol
            self.decisions.append(Decision(
                epoch=epoch, shard=shard, reads=d_reads, writes=d_writes,
                write_frac=round(write_frac, 4) if write_frac is not None else None,
                protocol=st.protocol, switch_to=switch_to,
            ))
            if switch_to is not None:
                st.protocol = switch_to
                st.epochs_since_switch = 0
                self.protocols[shard] = switch_to
                self.switches += 1
                changes[shard] = switch_to
        return changes

    def audit(self) -> list[dict]:
        """The decision log as plain dicts (for JSON artifacts)."""
        return [vars(d).copy() for d in self.decisions]
