"""Sharded KV service on spaces, with online protocol switching.

The tentpole serving harness: every shard of the key space is one Ace
*space* (so the shard's coherence protocol is a named, per-shard,
revisitable choice), every node is both a front-end (serving an
interleaved slice of the open-loop request stream) and a storage
backend (home for ``key % n_procs`` keys), and the whole thing runs as
a plain SPMD program through :func:`repro.facade.run_spmd` — the same
kernel, runtime, fault plans, and observability as every benchmark in
the suite.

Structure of the program each node runs:

1. **Setup** (collective): one ``new_space`` per shard under the
   launch protocol; each home ``gmalloc``-s and zero-initializes its
   keys; region ids are published host-side; barrier.
2. **Serving epochs**: each node works through its request slice in
   batches of ``workload.batch``.  A request waits for its open-loop
   arrival cycle, charges ``think_cycles`` of handler compute, lazily
   maps the key's region (first touch per node), performs the
   annotated read or write, bumps the per-shard ``serve.shard<s>.*``
   counters, and records completion latency.
3. **Control epoch** (the paper's payoff): barrier → node 0 runs the
   controller host-side over the live counters (zero cycles) → barrier
   → every node applies the decided ``change_protocol`` collectives in
   shard order and drops its now-stale handles for switched shards.
   Static and adaptive runs execute the *identical* skeleton — two
   barriers per batch either way — so the measured difference between
   them is purely the decisions and the switch collectives they issue.

Determinism: traffic is a pure function of the workload seed
(:mod:`repro.serve.workload`), controller decisions are pure functions
of sampled counters, and the kernel is deterministic — identical seeds
reproduce identical cycle counts, switch schedules, and final values.
"""

from __future__ import annotations

from repro.facade import run_spmd
from repro.obs import Histogram, MetricsWindow, TraceBuffer
from repro.machine.stats import intern_key
from repro.serve.controller import AdaptiveController, StaticController
from repro.serve.workload import ServeWorkload, build_traffic, traffic_digest
from repro.sim import Delay


def serve_program(workload: ServeWorkload, traffic: dict, controller, shared: dict,
                  metrics: MetricsWindow | None = None):
    """Build the per-node SPMD generator for one serving run.

    ``shared`` is the host-side exchange dict (region ids, per-epoch
    switch decisions) — the standard node-0-publishes idiom from the
    app suite.  The returned closure is what ``run_spmd`` calls once
    per node.
    """
    wl = workload
    keys, is_read = traffic["keys"], traffic["is_read"]
    arrival, value, shard = traffic["arrival"], traffic["value"], traffic["shard"]

    def program(ctx):
        nid, n_procs = ctx.nid, ctx.n_procs
        sim = ctx.machine.sim
        counters = ctx.machine.stats.counter_ref()
        read_key = [intern_key("serve", f"shard{s}", "reads") for s in range(wl.n_shards)]
        write_key = [intern_key("serve", f"shard{s}", "writes") for s in range(wl.n_shards)]

        # -- setup: one space per shard, homes allocate their keys ------
        sids = []
        for s in range(wl.n_shards):
            sid = yield from ctx.new_space(controller.protocols[s])
            sids.append(sid)
        rids = shared["rids"]
        for k in range(wl.n_keys):
            if k % n_procs == nid:
                rid = yield from ctx.gmalloc(sids[wl.shard_of_key(k)], wl.region_words)
                rids[k] = rid
        yield from ctx.barrier()
        handles: dict[int, object] = {}
        for k in range(wl.n_keys):
            if k % n_procs == nid:
                h = yield from ctx.map(rids[k])
                yield from ctx.write_region(h, [0.0] * wl.region_words)
                handles[k] = h
        yield from ctx.barrier()

        # -- serving epochs --------------------------------------------
        my_reqs = range(nid, wl.n_requests, n_procs)
        per_node = -(-wl.n_requests // n_procs)  # ceil: max slice length
        n_epochs = -(-per_node // wl.batch)
        latency = Histogram()
        served = 0
        for e in range(n_epochs):
            for r in my_reqs[e * wl.batch:(e + 1) * wl.batch]:
                arr = int(arrival[r])
                if sim.now < arr:
                    yield Delay(arr - sim.now)
                if wl.think_cycles:
                    yield Delay(wl.think_cycles)
                k = int(keys[r])
                h = handles.get(k)
                if h is None:
                    h = yield from ctx.map(rids[k])
                    handles[k] = h
                if is_read[r]:
                    yield from ctx.start_read(h)
                    _ = h.data[0]
                    yield from ctx.end_read(h)
                    counters[read_key[shard[r]]] += 1
                else:
                    yield from ctx.start_write(h)
                    h.data[0] = float(value[r])
                    yield from ctx.end_write(h)
                    counters[write_key[shard[r]]] += 1
                latency.add(sim.now - arr)
                served += 1
            # Control epoch: sample → decide (host-side, zero cycles) →
            # apply.  Both barriers run in every mode, every epoch.
            yield from ctx.barrier()
            if nid == 0:
                shared["changes"] = sorted(
                    controller.epoch(e, ctx.machine.stats, metrics).items()
                )
            yield from ctx.barrier()
            for s, proto in shared["changes"]:
                yield from ctx.change_protocol(sids[s], proto)
                for k in wl.keys_of_shard(s):
                    handles.pop(k, None)  # generation bumped: stale
        yield from ctx.barrier()
        return {"served": served, "latency": latency}

    return program


def run_serve(
    workload: ServeWorkload,
    *,
    protocol: str | None = None,
    protocols: dict[int, str] | None = None,
    controller=None,
    n_procs: int = 8,
    metrics_width: int | None = None,
    fault_plan=None,
    n_dir_shards: int = 1,
    **spmd_kwargs,
):
    """Run one serving scenario; returns ``(RunResult, report)``.

    Exactly one protocol choice mechanism applies: a ``controller``
    (e.g. :class:`~repro.serve.controller.AdaptiveController`), an
    explicit per-shard ``protocols`` dict, or a uniform ``protocol``
    name (default ``"SC"``).  ``metrics_width`` attaches a
    :class:`~repro.obs.MetricsWindow` through a small
    :class:`~repro.obs.TraceBuffer` — cycle-neutral, and on by default
    for adaptive runs so the controller's audit trail has the message
    mix and stall series an operator would be watching.
    """
    if controller is None:
        if protocols is None:
            protocols = {s: protocol or "SC" for s in range(workload.n_shards)}
        elif protocol is not None:
            raise ValueError("pass either protocol= or protocols=, not both")
        if sorted(protocols) != list(range(workload.n_shards)):
            raise ValueError(f"protocols must cover shards 0..{workload.n_shards - 1}")
        controller = StaticController(protocols)
    elif protocol is not None or protocols is not None:
        raise ValueError("pass either controller= or protocol(s)=, not both")
    if metrics_width is None and controller.adaptive:
        metrics_width = 4096
    metrics = MetricsWindow(width=metrics_width) if metrics_width else None
    tracer = TraceBuffer(capacity=1 << 12, metrics=metrics) if metrics else None

    initial = dict(controller.protocols)
    traffic = build_traffic(workload, n_procs)
    shared: dict = {"rids": {}, "changes": []}
    program = serve_program(workload, traffic, controller, shared, metrics)
    res = run_spmd(
        program, backend="ace", n_procs=n_procs, tracer=tracer,
        fault_plan=fault_plan, n_dir_shards=n_dir_shards, **spmd_kwargs,
    )

    latency = Histogram()
    served = 0
    for node in res.results:
        latency.merge(node["latency"])
        served += node["served"]
    stats = res.stats
    shard_mix = {
        s: {"reads": stats.get(f"serve.shard{s}.reads"),
            "writes": stats.get(f"serve.shard{s}.writes")}
        for s in range(workload.n_shards)
    }
    report = {
        "mode": "adaptive" if controller.adaptive else "static",
        "workload": workload.to_dict(),
        "traffic": traffic_digest(traffic),
        "n_procs": n_procs,
        "n_dir_shards": n_dir_shards,
        "protocols_initial": initial,
        "protocols_final": dict(controller.protocols),
        "switches": controller.switches,
        "requests": served,
        "cycles": res.time,
        "events": res.machine.sim.events,
        "req_per_kcycle": round(served / res.time * 1000, 3) if res.time else None,
        "latency": latency.summary(),
        "msgs": stats.get("msg.total"),
        "words": stats.get("msg.words"),
        "shard_mix": shard_mix,
    }
    if metrics is not None:
        report["metrics"] = metrics.summary(res.time, n_procs)
    if controller.adaptive:
        report["decisions"] = controller.audit()
    return res, report
