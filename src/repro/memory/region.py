"""Region objects, cached copies, and the global region directory."""

from __future__ import annotations

import numpy as np

from repro.sim.errors import SimulationError


class Region:
    """A shared, coherent block of ``size`` 8-byte words.

    ``home_data`` is the canonical storage at the home node.  Protocol
    layers never hand this array to applications on non-home nodes;
    they copy it into a :class:`RegionCopy` (charging transfer cost).
    """

    __slots__ = ("rid", "home", "size", "home_data", "meta")

    def __init__(self, rid: int, home: int, size: int):
        if size <= 0:
            raise SimulationError(f"region size must be positive, got {size}")
        self.rid = rid
        self.home = home
        self.size = size
        self.home_data = np.zeros(size, dtype=np.float64)
        # Per-layer metadata slot (directory state, sharer lists, ...).
        self.meta: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Region {self.rid} home={self.home} size={self.size}>"


class RegionCopy:
    """A node-local cached copy of a region.

    Applications read and write through ``copy.data``; the protocol
    governing the region decides when that array is fetched, flushed,
    invalidated, or updated in place.
    """

    __slots__ = ("region", "node", "data", "state", "mapped", "meta")

    def __init__(self, region: Region, node: int):
        self.region = region
        self.node = node
        self.data = np.zeros(region.size, dtype=np.float64)
        self.state: str = "invalid"
        self.mapped = False
        self.meta: dict = {}

    @property
    def rid(self) -> int:
        return self.region.rid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RegionCopy rid={self.rid} node={self.node} state={self.state}>"


class RegionDirectory:
    """Global region-id allocator and lookup table.

    Region ids are globally unique.  In a real DSM the id encodes its
    home node and the tables are distributed; in the simulation a
    single deterministic table stands in for them, and the *costs* of
    remote lookups are charged by the runtimes that use it.
    """

    def __init__(self):
        self._regions: dict[int, Region] = {}
        self._next = 1  # 0 is reserved as "no region"

    def alloc(self, home: int, size: int) -> Region:
        """Create a region homed at node ``home``."""
        region = Region(self._next, home, size)
        self._regions[self._next] = region
        self._next += 1
        return region

    def get(self, rid: int) -> Region:
        """Look up a region by id; raises for unknown ids."""
        try:
            return self._regions[rid]
        except KeyError:
            raise SimulationError(f"unknown region id {rid}") from None

    def __contains__(self, rid: int) -> bool:
        return rid in self._regions

    def __len__(self) -> int:
        return len(self._regions)

    def all_regions(self):
        """Iterate regions in allocation order (deterministic)."""
        return iter(self._regions.values())
