"""Regions: the unit of sharing and coherence.

Both the CRL baseline and the Ace runtime share data in *regions* —
contiguous, arbitrarily-sized blocks identified by a small integer id
(§2.3 and §4.1 of the paper: "data is shared using arbitrarily-sized
regions", giving user-specified granularity and natural bulk transfer).

A region's canonical storage is a NumPy ``float64`` array held at its
home node; protocol layers create per-node cached copies.  Storing
words as doubles keeps the model uniform — integers up to 2**53 are
exact, which covers every counter and index in the benchmarks.
"""

from repro.memory.region import Region, RegionCopy, RegionDirectory

__all__ = ["Region", "RegionCopy", "RegionDirectory"]
