"""One-shot synchronization cells for simulated tasks.

A :class:`Future` is the only blocking primitive the kernel understands
besides :class:`~repro.sim.kernel.Delay`.  Tasks yield a future to
suspend; whoever resolves it wakes every waiter at the current simulated
time.  Futures may be resolved before anyone waits (the waiter then
resumes immediately), and may carry either a value or an exception.
"""

from __future__ import annotations

from repro.sim.errors import SimulationError

_UNSET = object()


class Future:
    """A write-once cell that simulated tasks can block on.

    Parameters
    ----------
    name:
        Optional label used in deadlock reports and traces.
    """

    __slots__ = ("name", "_value", "_exc", "_callbacks", "_fail_hook", "_obs_eid")

    def __init__(self, name: str = ""):
        self.name = name
        self._value = _UNSET
        self._exc: BaseException | None = None
        self._callbacks: list = []
        # Set by the kernel on task ``done`` futures: lets a crash be
        # reported fail-fast instead of scanning every task per event.
        self._fail_hook = None
        # Trace id of the event that resolved this future (reply
        # receive, barrier release, lock grant), set only by traced
        # resolvers just before resolve().  The kernel stamps it as the
        # causal parent of the woken task's ``task.step`` so critical
        # paths cross wakeups.  -1 = unknown/untraced.
        self._obs_eid = -1

    # -- inspection ---------------------------------------------------
    @property
    def resolved(self) -> bool:
        """True once :meth:`resolve` or :meth:`fail` has been called."""
        return self._value is not _UNSET or self._exc is not None

    def result(self):
        """Return the resolved value (raising the stored exception if any).

        Raises
        ------
        SimulationError
            If the future has not been resolved yet.
        """
        if self._exc is not None:
            raise self._exc
        if self._value is _UNSET:
            raise SimulationError(f"future {self.name!r} not resolved")
        return self._value

    # -- resolution ---------------------------------------------------
    def resolve(self, value=None) -> None:
        """Store ``value`` and invoke all registered callbacks once."""
        # ``resolved`` and ``_fire`` inlined: resolution is on the
        # critical path of every RPC round trip in the system.
        if self._value is not _UNSET or self._exc is not None:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for fn in callbacks:
                fn(self)

    def fail(self, exc: BaseException) -> None:
        """Store an exception; waiters will re-raise it when resumed."""
        if self.resolved:
            raise SimulationError(f"future {self.name!r} resolved twice")
        self._exc = exc
        hook = self._fail_hook
        if hook is not None:
            hook(exc)
        self._fire()

    def add_callback(self, fn) -> None:
        """Call ``fn(self)`` when resolved (immediately if already resolved)."""
        if self.resolved:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self.resolved else "pending"
        return f"<Future {self.name!r} {state}>"
