"""Exception types raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all errors raised by the simulator or runtimes built on it."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while tasks are still blocked.

    Carries the list of blocked task names so protocol bugs (a barrier
    that never releases, a lock that is never granted) produce an
    actionable message instead of a silent hang.
    """

    def __init__(self, blocked_tasks):
        self.blocked_tasks = list(blocked_tasks)
        names = ", ".join(t.name for t in self.blocked_tasks) or "<none>"
        super().__init__(f"deadlock: event queue empty but tasks blocked: {names}")
