"""Exception types raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all errors raised by the simulator or runtimes built on it."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while tasks are still blocked.

    Carries the list of blocked tasks — and, for each, the *wait
    reason*: the name of the future the task is parked on — so protocol
    bugs (a barrier that never releases, a lock that is never granted)
    produce an actionable message instead of a silent hang.
    """

    def __init__(self, blocked_tasks):
        self.blocked_tasks = list(blocked_tasks)
        #: task name -> name of the future it is parked on
        self.wait_reasons = {t.name: self._wait_reason(t) for t in self.blocked_tasks}
        names = (
            ", ".join(f"{name} (waiting on {why})" for name, why in self.wait_reasons.items())
            or "<none>"
        )
        super().__init__(f"deadlock: event queue empty but tasks blocked: {names}")

    @staticmethod
    def _wait_reason(task) -> str:
        fut = getattr(task, "blocked_on", None)
        if fut is None:
            return "<unknown>"
        return getattr(fut, "name", "") or "<unnamed future>"
