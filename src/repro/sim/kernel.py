"""The discrete-event scheduler and generator-task trampoline.

Simulated "processors" are plain Python generators.  They communicate
with the kernel by yielding:

``Delay(cycles)``
    advance this task's local view of time by ``cycles``;
``Future``
    suspend until the future is resolved; the resolved value is sent
    back into the generator (a failed future re-raises inside it).

Nested blocking operations compose with ordinary ``yield from``; the
kernel only ever sees the two primitive yield types above.

Time is an integer cycle count.  Events at equal times fire in the
order they were scheduled (a monotone sequence number breaks ties), so
a run is a pure function of its inputs — the property the hypothesis
determinism tests pin down.

Fast path
---------
Per-event overhead bounds every experiment in the repository, so the
hot path is engineered to allocate nothing beyond what the event model
requires (see DESIGN.md §6 for the full story):

* **Same-cycle ring.**  ``schedule(0, fn)`` — by far the most common
  call — appends ``(seq, fn)`` to a FIFO deque instead of paying a
  ``heapq`` push/pop of a 4-tuple.  Ring and heap entries are merged
  by the global ``(time, seq)`` order at pop time, so event order is
  bit-identical to the single-heap implementation.
* **Pre-bound resume thunks.**  Each :class:`Task` carries its resume
  callables (and its generator's ``send``/``throw`` methods), built
  once at spawn; the kernel never allocates a closure or bound method
  per yield, and the whole step — wait-value unpacking, generator
  advance, re-schedule — is one Python call per event.
* **Lean heap entries.**  Canonical (non-fuzzed) runs store 3-tuples
  ``(time, seq, fn)``; only fuzzed runs pay for the 4-tuple with the
  random tie-breaker.  Ordering is ``(time, seq)`` either way.
* **Inline trampoline.**  When a task yields ``Delay(0)`` or an
  already-resolved :class:`Future` and *no other event is pending at
  the current cycle*, its continuation would be the very next event —
  so the kernel steps the generator again immediately (bounded by
  ``_TRAMPOLINE_MAX``), skipping the queue round-trip.  The same
  applies to a nonzero ``Delay`` when every queued event is strictly
  later than the task's resume time: the kernel advances ``now``
  in place and keeps stepping (disabled under ``run(until=...)``
  and structured tracing, where the heap path enforces the pause
  boundary / the pinned ``task.step`` stream).  The pending checks
  make this unobservable: ordering, cycle counts, and event counts
  are exactly what the queue would have produced.
* **Batched ring drain.**  When the heap holds nothing at the ring's
  cycle, the run loop drains the whole same-cycle ring — including
  events appended mid-drain — through one dispatch loop instead of
  re-entering the scheduler per event.
* **Fail-fast flag.**  A task crash used to be detected by scanning
  every task after every event; now ``Future.fail`` on a task's
  ``done`` future records the first failure on the simulator directly.
* **Pooled delays.**  ``Delay(n)`` for small ``n`` returns a shared
  immutable singleton, so the dominant yield type costs no allocation.

Schedule fuzzing (``jitter_seed``) disables the ring and the
trampoline: fuzzed runs draw one random tie-breaker per ``schedule``
call, and both shortcuts would perturb that stream.  Fuzzed schedules
therefore replay exactly as they always have.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Callable, Generator, Iterable

from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.future import _UNSET, Future

_heappush = heapq.heappush


class Delay:
    """Yield ``Delay(n)`` from a task to advance simulated time by ``n`` cycles.

    Instances are immutable and compare/hash by ``cycles``.  Small
    non-negative integer delays return pooled singletons, so the hot
    path (``yield Delay(cost)``) performs no allocation.
    """

    __slots__ = ("cycles",)

    def __new__(cls, cycles: int = 0):
        if cls is Delay and type(cycles) is int and 0 <= cycles < _DELAY_POOL_SIZE:
            return _DELAY_POOL[cycles]
        if cycles < 0:
            raise SimulationError(f"negative delay: {cycles}")
        self = object.__new__(cls)
        object.__setattr__(self, "cycles", cycles)
        return self

    def __setattr__(self, name, value):
        raise AttributeError(f"Delay is immutable; cannot set {name!r}")

    def __eq__(self, other):
        return other.__class__ is self.__class__ and other.cycles == self.cycles

    def __hash__(self):
        return hash((self.cycles,))

    def __repr__(self) -> str:
        return f"Delay(cycles={self.cycles})"


def _build_delay_pool(size: int) -> tuple:
    pool = []
    for n in range(size):
        d = object.__new__(Delay)
        object.__setattr__(d, "cycles", n)
        pool.append(d)
    return tuple(pool)


_DELAY_POOL_SIZE = 512
_DELAY_POOL = _build_delay_pool(_DELAY_POOL_SIZE)

#: Max generator steps taken inline before falling back to the queue.
#: Purely a safety valve — inlining is only attempted when the queue
#: has nothing else at the current cycle, so any bound preserves order.
_TRAMPOLINE_MAX = 64


def _retired_step(_value=None):
    """Stand-in ``gen.send`` for a retired task (see :meth:`Simulator.retire`).

    Returns a fresh, never-resolved future: a stray queued resume
    parks the task on it forever instead of advancing a closed
    generator."""
    return Future(name="retired")


def _retired_throw(*_args):
    """Stand-in ``gen.throw`` for a retired task."""
    return Future(name="retired")


class Task:
    """A generator being driven by the simulator.

    ``task.done`` is a :class:`Future` resolved with the generator's
    return value (or failed with its exception), so tasks can join on
    one another by yielding it.
    """

    __slots__ = (
        "name",
        "gen",
        "done",
        "blocked_on",
        "_sim",
        "_wait_fut",
        "_resume",
        "_wake",
        "_send",
        "_throw",
        "_queue",
        "_ring",
        "_jitter",
        "_obs",
        "_obs_buf",
    )

    def __init__(self, gen: Generator, name: str, sim: "Simulator"):
        self.gen = gen
        self.name = name
        self.done = Future(name=f"done:{name}")
        self.blocked_on: Future | None = None
        self._sim = sim
        self._wait_fut: Future | None = None
        # Resume thunks and generator entry points pre-bound once per
        # task: the scheduler stores these directly in events instead
        # of allocating a fresh closure (or bound method) every yield.
        self._resume = self._step
        self._wake = self._on_resolved
        self._send = gen.send
        self._throw = gen.throw
        # The simulator's event structures never get reassigned, so
        # each task keeps direct references and skips three attribute
        # loads per step.
        self._queue = sim._queue
        self._ring = sim._ring
        self._jitter = sim._jitter
        # Structured tracing handle, resolved once at spawn: None when
        # observability is off, so the per-step cost of the disabled
        # path is one slot load and branch (see repro.obs.trace).
        self._obs = sim._obs
        self._obs_buf = sim._obs_buf

    def _step(self) -> None:
        """Advance the generator one yield (plus inline trampolining).

        This is the entire per-event hot path — wait-value unpacking,
        ``gen.send``, and re-scheduling are merged into one call so an
        event costs a single Python frame beyond the generator itself.
        """
        fut = self._wait_fut
        if fut is None:
            value = exc = None
        else:
            self._wait_fut = None
            exc = fut._exc
            value = None if exc is not None else fut._value
        sim = self._sim
        send = self._send
        resume = self._resume
        trace = sim._trace
        queue = self._queue
        ring = self._ring
        jitter = self._jitter
        now = sim.now  # time cannot advance while a task is stepping
        obs = self._obs
        if obs is not None:
            # The wake parent is the event that resolved the awaited
            # future (reply receive, barrier release, lock grant — set
            # by the resolver via Future._obs_eid), or -1 for plain
            # delays and locally-resolved futures.  Attribution pairs
            # this step with the task's preceding ``task.block``;
            # critical-path extraction follows the parent edge.  The
            # step becomes the buffer's dispatch context, so sends
            # issued while this task runs parent back to it.
            buf = self._obs_buf
            buf.ctx_eid = obs.emit(
                now,
                "task.step",
                parent=-1 if fut is None else fut._obs_eid,
                data=self.name,
            )
            buf.ctx_ts = now
        self.blocked_on = None
        steps = _TRAMPOLINE_MAX
        while True:
            try:
                item = send(value) if exc is None else self._throw(exc)
            except StopIteration as stop:
                if trace:
                    trace(now, f"{self.name} finished")
                if obs is not None:
                    obs.emit(now, "task.finish", data=self.name)
                self.done.resolve(stop.value)
                return
            except BaseException as err:  # task crashed: propagate via its future
                if trace:
                    trace(now, f"{self.name} raised {err!r}")
                if obs is not None:
                    obs.emit(now, "task.crash", data=f"{self.name}: {err!r}")
                self.done.fail(err)
                return
            cls = item.__class__
            if cls is not Delay and cls is not Future:
                # Rare: a Delay/Future subclass, or an illegal yield.
                if isinstance(item, Delay):
                    cls = Delay
                elif isinstance(item, Future):
                    cls = Future
                else:
                    self.done.fail(
                        SimulationError(
                            f"task {self.name} yielded {item!r}; only Delay or Future "
                            "may reach the kernel (use 'yield from' for sub-operations)"
                        )
                    )
                    return
            if cls is Delay:
                cycles = item.cycles
                if trace:
                    trace(now, f"{self.name} delay {cycles}")
                if (
                    cycles == 0
                    and steps > 0
                    and not ring
                    and jitter is None
                    and sim._failure is None
                    and (not queue or queue[0][0] > now)
                ):
                    # This continuation would be the sole next event;
                    # run it now and skip the queue round-trip.
                    steps -= 1
                    sim.events += 1
                    value = exc = None
                    continue
                if (
                    steps > 0
                    and not ring
                    and jitter is None
                    and sim._failure is None
                    and sim._until is None
                    and obs is None
                    and (not queue or queue[0][0] > now + cycles)
                ):
                    # Nonzero-delay inlining: the continuation is still
                    # the sole next event (every queued event is
                    # strictly later than now + cycles), so advance
                    # simulated time here and keep stepping.  Event
                    # count and (time, seq) order are exactly what the
                    # heap round-trip would have produced.  Disabled
                    # under run(until=...) — the heap path enforces the
                    # pause boundary — and with structured tracing on,
                    # so the pinned obs event stream (one ``task.step``
                    # per kernel dispatch) is unchanged.
                    steps -= 1
                    sim.events += 1
                    sim.now = now = now + cycles
                    value = exc = None
                    continue
                # schedule(cycles, resume), inlined — one call per
                # yield is a measurable share of the event loop.  Delay
                # guarantees cycles >= 0, so the negative check is moot.
                seq = sim._seq
                sim._seq = seq + 1
                if jitter is not None:
                    _heappush(queue, (now + cycles, jitter.random(), seq, resume))
                elif cycles == 0 and (not ring or sim._ring_time == now):
                    sim._ring_time = now
                    ring.append((seq, resume))
                else:
                    _heappush(queue, (now + cycles, seq, resume))
                return
            if item._value is not _UNSET or item._exc is not None:
                if (
                    steps > 0
                    and not ring
                    and jitter is None
                    and sim._failure is None
                    and (not queue or queue[0][0] > now)
                ):
                    steps -= 1
                    sim.events += 1
                    exc = item._exc
                    value = None if exc is not None else item._value
                    continue
                # Resume this cycle but *after* already-queued
                # events, so a resolved future never lets a task
                # jump the queue (schedule(0, ...), inlined).
                self._wait_fut = item
                seq = sim._seq
                sim._seq = seq + 1
                if jitter is not None:
                    _heappush(queue, (now, jitter.random(), seq, resume))
                elif not ring or sim._ring_time == now:
                    sim._ring_time = now
                    ring.append((seq, resume))
                else:
                    _heappush(queue, (now, seq, resume))
                return
            self.blocked_on = item
            if trace:
                trace(now, f"{self.name} waits on {item.name}")
            if obs is not None:
                # Pure observation: the span from this event to the
                # task's next ``task.step`` is exactly the cycles spent
                # blocked on ``item`` — the raw material for cycle
                # attribution (repro.obs.attrib classifies the future's
                # name into wait buckets).
                obs.emit(now, "task.block", data={"task": self.name, "on": item.name})
            item._callbacks.append(self._wake)
            return

    def _on_resolved(self, fut: Future) -> None:
        # Equivalent to sim.schedule(0, self._resume), inlined: future
        # resolution is one of the two hottest kernel entry points.
        self._wait_fut = fut
        sim = self._sim
        now = sim.now
        seq = sim._seq
        sim._seq = seq + 1
        jitter = self._jitter
        ring = self._ring
        if jitter is not None:
            _heappush(self._queue, (now, jitter.random(), seq, self._resume))
        elif not ring or sim._ring_time == now:
            sim._ring_time = now
            ring.append((seq, self._resume))
        else:
            _heappush(self._queue, (now, seq, self._resume))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.spawn(my_task(), name="proc0")
        sim.run()
        print(sim.now)   # total simulated cycles
    """

    __slots__ = (
        "now",
        "events",
        "_queue",
        "_ring",
        "_ring_time",
        "_seq",
        "_tasks",
        "_names",
        "_trace",
        "_running",
        "_failure",
        "_jitter",
        "_obs",
        "_obs_buf",
        "_until",
    )

    def __init__(
        self,
        trace: Callable[[int, str], None] | None = None,
        jitter_seed: int | None = None,
        tracer=None,
    ):
        """``jitter_seed`` enables *schedule fuzzing*: same-time events
        fire in a seed-determined shuffled order instead of insertion
        order.  Each seed is still fully deterministic — the
        :mod:`repro.verify` fuzzer sweeps seeds to hunt protocol races
        that one canonical schedule would never exhibit.

        ``tracer`` is an optional :class:`repro.obs.TraceBuffer`;
        when given, the kernel emits structured ``task.*`` events
        (spawn/step/finish/crash) into it.  Tracing is pure
        observation: event order and simulated cycles are bit-identical
        with and without it."""
        self.now: int = 0
        self.events: int = 0  # events executed (queue pops + inline steps)
        # Heap of (time, seq, fn) — canonical runs — or
        # (time, jitter, seq, fn) under schedule fuzzing.  Both orders
        # reduce to (time, seq); fn is always entry[-1].
        self._queue: list = []
        self._ring: deque = deque()  # FIFO of (seq, fn) at time _ring_time
        self._ring_time: int = 0
        self._seq = 0
        self._tasks: list[Task] = []
        self._names: dict[str, int] = {}
        self._trace = trace
        self._running = False
        self._failure: BaseException | None = None
        # Bound of the current run(until=...) call, or None.  The
        # nonzero-delay trampoline consults it: inlined time advances
        # must not cross a pause boundary, so bounded runs always take
        # the heap path for positive delays.
        self._until: int | None = None
        self._jitter = random.Random(jitter_seed) if jitter_seed is not None else None
        # Per-layer tracer handle, or None: resolved once here so the
        # disabled path never probes or formats anything.  The buffer
        # itself is kept too: task steps publish the dispatch context
        # (TraceBuffer.ctx_eid) traced sends use as causal parent.
        self._obs = tracer.tracer("kernel") if tracer is not None else None
        self._obs_buf = tracer

    # -- low-level event interface -------------------------------------
    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` cycles (0 means "later this cycle")."""
        if delay < 0:
            raise SimulationError(f"negative schedule delay: {delay}")
        seq = self._seq
        self._seq = seq + 1
        if self._jitter is not None:
            # Fuzzing draws one tie-breaker per schedule call; keep the
            # stream (and thus every fuzzed schedule) exactly as before
            # the same-cycle ring existed.
            heapq.heappush(self._queue, (self.now + delay, self._jitter.random(), seq, fn))
        elif delay == 0 and (not self._ring or self._ring_time == self.now):
            self._ring_time = self.now
            self._ring.append((seq, fn))
        else:
            heapq.heappush(self._queue, (self.now + delay, seq, fn))

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute ``time`` (must not be in the past)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        self.schedule(time - self.now, fn)

    # -- task interface -------------------------------------------------
    def spawn(self, gen: Generator, name: str = "task") -> Task:
        """Register a generator as a task and start it at the current time.

        Duplicate names get a ``~<n>`` suffix so every task (and its
        ``done:`` future) stays distinguishable in traces and deadlock
        reports — spawning ``name="worker"`` three times yields
        ``worker``, ``worker~1``, ``worker~2``.
        """
        if name == "task":
            name = f"task#{len(self._tasks)}"
        n = self._names.get(name, 0)
        if n:
            base = name
            name = f"{base}~{n}"
            while name in self._names:
                n += 1
                name = f"{base}~{n}"
            self._names[base] = n + 1
            self._names[name] = 1
        else:
            self._names[name] = 1
        task = Task(gen, name=name, sim=self)
        task.done._fail_hook = self._note_failure
        self._tasks.append(task)
        if self._obs is not None:
            self._obs.emit(self.now, "task.spawn", data=name)
        self.schedule(0, task._resume)
        return task

    def retire(self, task: Task, result=None) -> None:
        """Force-terminate ``task`` from outside, resolving ``done`` with ``result``.

        Used by the crash-recovery layer (:mod:`repro.dsm.recovery`)
        when a node is declared dead: its task cannot finish on its own
        (the fabric drops everything it sends), so the recovery manager
        retires it in place of a normal ``StopIteration``.

        The task may have resume events already queued (a pre-crash
        reply "in the wire", a delay it yielded before dying).  Those
        events reference the task's pre-bound ``_resume`` thunk and
        cannot be unscheduled, so instead the generator entry points are
        swapped for a stub that parks the task on a fresh, never-
        resolved future — a stray wake becomes a harmless no-op.  The
        task is removed from the deadlock scan so that parked state
        never reads as a stall.
        """
        if task.done._value is not _UNSET or task.done._exc is not None:
            return  # already finished on its own
        fut = task.blocked_on
        if fut is not None:
            try:
                fut._callbacks.remove(task._wake)
            except ValueError:
                pass
            task.blocked_on = None
        task._wait_fut = None
        task._send = _retired_step
        task._throw = _retired_throw
        try:
            self._tasks.remove(task)
        except ValueError:
            pass
        task.gen.close()
        if self._obs is not None:
            self._obs.emit(self.now, "task.retire", data=task.name)
        if self._trace:
            self._trace(self.now, f"{task.name} retired")
        task.done.resolve(result)

    def _note_failure(self, exc: BaseException) -> None:
        # Fail fast: the first task crash aborts the run by raising
        # straight through the event that caused it, so the run loop
        # pays no per-event "did anything crash?" check.  Events the
        # crash had already scheduled (e.g. waking joiners) simply
        # never execute — exactly as before, when the loop stopped
        # before reaching them.
        if self._failure is None:
            self._failure = exc
            raise exc

    # -- execution --------------------------------------------------------
    def run(self, until: int | None = None) -> int:
        """Drain the event queue; return the final simulated time.

        Raises
        ------
        DeadlockError
            If the queue empties while spawned tasks are still blocked.
        SimulationError
            Re-raised from any task that crashed (first crash wins).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._until = until
        queue = self._queue
        ring = self._ring
        heappop = heapq.heappop
        fired = 0  # queue pops this run; folded into self.events on exit
        try:
            if until is None:
                # Hot loop: no pause check per event.  Next event =
                # global (time, seq) minimum across both structures;
                # ring entries all share time _ring_time.
                while queue or ring:
                    # A non-empty ring implies a canonical run, so the
                    # heap holds 3-tuples and seq sits at index 1.
                    if ring:
                        if not queue or queue[0][0] > self._ring_time:
                            # Batched delivery: every queued event is
                            # strictly later than the ring, and nothing
                            # executed at this cycle can change that —
                            # delay-0 schedules land on the ring (it is
                            # non-empty, so ``_ring_time == now`` holds)
                            # and positive delays land strictly in the
                            # future.  Drain the whole ring, including
                            # events appended mid-drain, in one dispatch
                            # loop: same pops, same (time, seq) order,
                            # same event count as the per-event path.
                            self.now = self._ring_time
                            popleft = ring.popleft
                            while ring:
                                fired += 1
                                popleft()[1]()
                            continue
                        if queue[0][0] == self._ring_time and queue[0][1] > ring[0][0]:
                            # Mixed same-cycle case (an earlier-seq heap
                            # entry may interleave): single-step it.
                            self.now = self._ring_time
                            fn = ring.popleft()[1]
                            fired += 1
                            fn()
                            continue
                    entry = heappop(queue)
                    self.now = entry[0]
                    fired += 1
                    entry[-1]()
            else:
                while queue or ring:
                    if ring:
                        time = self._ring_time
                        use_ring = not queue or (
                            queue[0][0] > time
                            or (queue[0][0] == time and queue[0][1] > ring[0][0])
                        )
                        if not use_ring:
                            time = queue[0][0]
                    else:
                        use_ring = False
                        time = queue[0][0]
                    if time > until:
                        self.now = until
                        return self.now
                    if use_ring:
                        fn = ring.popleft()[1]
                    else:
                        fn = heappop(queue)[-1]
                    self.now = time
                    fired += 1
                    fn()
        finally:
            self.events += fired
            self._running = False
            self._until = None
        if self._failure is not None:
            raise self._failure
        blocked = [t for t in self._tasks if t.blocked_on is not None]
        if blocked:
            raise DeadlockError(blocked)
        return self.now

    # -- helpers ----------------------------------------------------------
    def run_all(self, gens: Iterable[Generator], prefix: str = "proc") -> list:
        """Spawn one task per generator, run to completion, return results."""
        tasks = [self.spawn(g, name=f"{prefix}{i}") for i, g in enumerate(gens)]
        self.run()
        return [t.done.result() for t in tasks]
