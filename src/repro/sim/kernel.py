"""The discrete-event scheduler and generator-task trampoline.

Simulated "processors" are plain Python generators.  They communicate
with the kernel by yielding:

``Delay(cycles)``
    advance this task's local view of time by ``cycles``;
``Future``
    suspend until the future is resolved; the resolved value is sent
    back into the generator (a failed future re-raises inside it).

Nested blocking operations compose with ordinary ``yield from``; the
kernel only ever sees the two primitive yield types above.

Time is an integer cycle count.  Events at equal times fire in the
order they were scheduled (a monotone sequence number breaks ties), so
a run is a pure function of its inputs — the property the hypothesis
determinism tests pin down.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Callable, Generator, Iterable

from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.future import Future


@dataclass(frozen=True)
class Delay:
    """Yield ``Delay(n)`` from a task to advance simulated time by ``n`` cycles."""

    cycles: int

    def __post_init__(self):
        if self.cycles < 0:
            raise SimulationError(f"negative delay: {self.cycles}")


class Task:
    """A generator being driven by the simulator.

    ``task.done`` is a :class:`Future` resolved with the generator's
    return value (or failed with its exception), so tasks can join on
    one another by yielding it.
    """

    __slots__ = ("name", "gen", "done", "blocked_on")

    def __init__(self, gen: Generator, name: str):
        self.gen = gen
        self.name = name
        self.done = Future(name=f"done:{name}")
        self.blocked_on: Future | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.spawn(my_task(), name="proc0")
        sim.run()
        print(sim.now)   # total simulated cycles
    """

    def __init__(
        self,
        trace: Callable[[int, str], None] | None = None,
        jitter_seed: int | None = None,
    ):
        """``jitter_seed`` enables *schedule fuzzing*: same-time events
        fire in a seed-determined shuffled order instead of insertion
        order.  Each seed is still fully deterministic — the
        :mod:`repro.verify` fuzzer sweeps seeds to hunt protocol races
        that one canonical schedule would never exhibit."""
        self.now: int = 0
        self._queue: list = []  # heap of (time, jitter, seq, fn)
        self._seq = 0
        self._tasks: list[Task] = []
        self._trace = trace
        self._running = False
        self._jitter = random.Random(jitter_seed) if jitter_seed is not None else None

    # -- low-level event interface -------------------------------------
    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` cycles (0 means "later this cycle")."""
        if delay < 0:
            raise SimulationError(f"negative schedule delay: {delay}")
        jitter = self._jitter.random() if self._jitter is not None else 0.0
        heapq.heappush(self._queue, (self.now + delay, jitter, self._seq, fn))
        self._seq += 1

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute ``time`` (must not be in the past)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        self.schedule(time - self.now, fn)

    # -- task interface -------------------------------------------------
    def spawn(self, gen: Generator, name: str = "task") -> Task:
        """Register a generator as a task and start it at the current time."""
        task = Task(gen, name=f"{name}#{len(self._tasks)}" if name == "task" else name)
        self._tasks.append(task)
        self.schedule(0, lambda: self._step(task, None, None))
        return task

    def _step(self, task: Task, value, exc: BaseException | None) -> None:
        task.blocked_on = None
        try:
            if exc is not None:
                item = task.gen.throw(exc)
            else:
                item = task.gen.send(value)
        except StopIteration as stop:
            if self._trace:
                self._trace(self.now, f"{task.name} finished")
            task.done.resolve(stop.value)
            return
        except BaseException as err:  # task crashed: propagate via its future
            if self._trace:
                self._trace(self.now, f"{task.name} raised {err!r}")
            task.done.fail(err)
            return
        self._dispatch_yield(task, item)

    def _dispatch_yield(self, task: Task, item) -> None:
        if isinstance(item, Delay):
            if self._trace:
                self._trace(self.now, f"{task.name} delay {item.cycles}")
            self.schedule(item.cycles, lambda: self._step(task, None, None))
        elif isinstance(item, Future):
            if item.resolved:
                # Resume this cycle but *after* already-queued events, so a
                # resolved future never lets a task jump the queue.
                self.schedule(0, lambda: self._resume_from(task, item))
            else:
                task.blocked_on = item
                if self._trace:
                    self._trace(self.now, f"{task.name} waits on {item.name}")
                item.add_callback(lambda fut: self.schedule(0, lambda: self._resume_from(task, fut)))
        else:
            task.done.fail(
                SimulationError(
                    f"task {task.name} yielded {item!r}; only Delay or Future "
                    "may reach the kernel (use 'yield from' for sub-operations)"
                )
            )

    def _resume_from(self, task: Task, fut: Future) -> None:
        try:
            value = fut.result()
        except BaseException as err:
            self._step(task, None, err)
            return
        self._step(task, value, None)

    # -- execution --------------------------------------------------------
    def run(self, until: int | None = None) -> int:
        """Drain the event queue; return the final simulated time.

        Raises
        ------
        DeadlockError
            If the queue empties while spawned tasks are still blocked.
        SimulationError
            Re-raised from any task that crashed (first crash wins).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._queue:
                time, jitter, seq, fn = heapq.heappop(self._queue)
                if until is not None and time > until:
                    heapq.heappush(self._queue, (time, jitter, seq, fn))
                    self.now = until
                    return self.now
                self.now = time
                fn()
                self._raise_task_failure()
        finally:
            self._running = False
        self._raise_task_failure()
        blocked = [t for t in self._tasks if t.blocked_on is not None]
        if blocked:
            raise DeadlockError(blocked)
        return self.now

    def _raise_task_failure(self) -> None:
        for task in self._tasks:
            if task.done.resolved and task.done._exc is not None:
                raise task.done._exc

    # -- helpers ----------------------------------------------------------
    def run_all(self, gens: Iterable[Generator], prefix: str = "proc") -> list:
        """Spawn one task per generator, run to completion, return results."""
        tasks = [self.spawn(g, name=f"{prefix}{i}") for i, g in enumerate(gens)]
        self.run()
        return [t.done.result() for t in tasks]
