"""Deterministic discrete-event simulation kernel.

This package is the substrate for the whole reproduction: simulated
processors are Python generators scheduled by :class:`~repro.sim.kernel.Simulator`,
which advances a virtual clock measured in *cycles*.  Nothing in the
repository uses OS threads, so runs are bit-for-bit reproducible.

Public API
----------
``Simulator``
    The event loop.  ``spawn`` generator tasks, ``run`` to completion.
``Delay(cycles)``
    Yielded by a task to advance simulated time.
``Future``
    One-shot synchronization cell; yield it to block until resolved.
``Channel``
    FIFO message queue built on futures.
"""

from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.future import Future
from repro.sim.kernel import Delay, Simulator, Task
from repro.sim.channel import Channel

__all__ = [
    "Channel",
    "DeadlockError",
    "Delay",
    "Future",
    "SimulationError",
    "Simulator",
    "Task",
]
