"""FIFO channels between simulated tasks, built on futures.

Used by the Active-Messages layer for per-node mailboxes and by tests
as a convenient rendezvous primitive.  ``put`` never blocks (unbounded
queue — the simulated network provides its own backpressure through
message costs); ``get`` returns a generator to ``yield from``.
"""

from __future__ import annotations

from collections import deque

from repro.sim.future import Future


class Channel:
    """Unbounded FIFO of messages with blocking ``get``."""

    def __init__(self, name: str = "chan"):
        self.name = name
        self._items: deque = deque()
        self._waiters: deque[Future] = deque()

    def put(self, item) -> None:
        """Enqueue ``item``; wakes the oldest blocked getter, if any."""
        if self._waiters:
            self._waiters.popleft().resolve(item)
        else:
            self._items.append(item)

    def get(self):
        """Generator: ``item = yield from chan.get()`` blocks until available."""
        if self._items:
            return self._items.popleft()
        fut = Future(name=f"{self.name}.get")
        self._waiters.append(fut)
        item = yield fut
        return item

    def try_get(self):
        """Non-blocking get: returns the next item or ``None`` if empty."""
        if self._items:
            return self._items.popleft()
        return None

    def __len__(self) -> int:
        return len(self._items)
