"""Exporters and summarizers for :class:`~repro.obs.trace.TraceBuffer`.

Three consumers, three formats:

* :func:`to_jsonl` — one JSON object per event, for grep/jq/pandas;
* :func:`to_perfetto` — Chrome ``trace_event`` JSON that loads in
  https://ui.perfetto.dev (or ``chrome://tracing``): one track per
  node, instant events for messages and state transitions, flow
  arrows for the causal send→receive edges, complete slices for RPC
  round trips, and B/E slices for application phases.  Simulated
  cycles map 1:1 to the viewer's microseconds;
* :func:`message_mix` / :func:`run_summary` — the per-(app, protocol)
  breakdown ``tools/trace.py`` prints: message counts and words by
  category, stall cycles spent blocked on RPC round trips, and
  latency-histogram digests.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.obs.trace import Histogram, TraceBuffer, TraceEvent

#: A node id of -1 means "no single node"; Perfetto still needs a track.
GLOBAL_TRACK = "global"


def event_dict(ev: TraceEvent) -> dict:
    """JSON-friendly view of one event (omits empty parent/data)."""
    d = {"id": ev.eid, "ts": ev.ts, "layer": ev.layer, "kind": ev.kind, "node": ev.node}
    if ev.parent != -1:
        d["parent"] = ev.parent
    if ev.data is not None:
        d["data"] = ev.data
    return d


def to_jsonl(buf: TraceBuffer, path) -> int:
    """Write the buffer as JSON Lines; returns the number of events written.

    The first line is a header record (``{"trace": ...}``) carrying the
    drop count and histogram digests, so a ``.trace.jsonl`` file is
    self-describing.
    """
    events = buf.events()
    header = {
        "trace": {
            "events": len(events),
            "dropped": buf.dropped,
            "hists": {name: h.summary() for name, h in sorted(buf.hists.items()) if h.count},
        }
    }
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for ev in events:
            fh.write(json.dumps(event_dict(ev)) + "\n")
    return len(events)


# ---------------------------------------------------------------- perfetto
def _tid(node: int, n_tracks: int) -> int:
    return node if node >= 0 else n_tracks


def to_perfetto(buf: TraceBuffer, path) -> int:
    """Write Chrome/Perfetto ``trace_event`` JSON; returns event count.

    Mapping (1 simulated cycle = 1 viewer microsecond):

    * every event → an instant (``ph: "i"``) on its node's track;
    * ``msg.send`` → matching ``msg.recv`` (by causal parent) → a flow
      arrow (``ph: "s"`` / ``"f"``) between the two tracks;
    * ``rpc.call``/``rpc.return`` pairs → a complete slice
      (``ph: "X"``) whose duration is the round-trip latency;
    * ``phase.begin``/``phase.end`` → B/E slices on the global track;
    * an attached :class:`~repro.obs.metrics.MetricsWindow` → counter
      tracks (``ph: "C"``), one per windowed series.

    A ``msg.recv`` whose send was evicted by the ring gets no flow
    arrow; such orphaned edges are counted in ``otherData`` rather than
    silently dropped.
    """
    events = buf.events()
    n_tracks = max((ev.node for ev in events), default=-1) + 1
    out: list[dict] = []
    for tid in range(n_tracks):
        out.append(
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
             "args": {"name": f"node{tid}"}}
        )
    out.append(
        {"ph": "M", "name": "thread_name", "pid": 0, "tid": n_tracks,
         "args": {"name": GLOBAL_TRACK}}
    )

    sends: dict[int, TraceEvent] = {}
    calls: dict[int, TraceEvent] = {}
    for ev in events:
        if ev.kind == "msg.send":
            sends[ev.eid] = ev
        elif ev.kind == "rpc.call":
            calls[ev.eid] = ev

    orphaned = 0
    for ev in events:
        tid = _tid(ev.node, n_tracks)
        args = ev.data if isinstance(ev.data, dict) else ({"data": ev.data} if ev.data is not None else {})
        kind = ev.kind
        if kind == "phase.begin":
            out.append({"ph": "B", "name": str(ev.data), "cat": ev.layer,
                        "ts": ev.ts, "pid": 0, "tid": n_tracks})
            continue
        if kind == "phase.end":
            out.append({"ph": "E", "name": str(ev.data), "cat": ev.layer,
                        "ts": ev.ts, "pid": 0, "tid": n_tracks})
            continue
        if kind == "rpc.return":
            call = calls.get(ev.parent)
            if call is None:
                # Evicted call: render the return as a plain instant
                # below instead of a slice of unknowable start.
                orphaned += 1
            else:
                out.append({
                    "ph": "X", "name": f"rpc:{call.data.get('category', 'rpc')}",
                    "cat": call.layer, "ts": call.ts, "dur": max(ev.ts - call.ts, 1),
                    "pid": 0, "tid": _tid(call.node, n_tracks), "args": dict(call.data),
                })
                continue
        name = kind
        if isinstance(ev.data, dict) and "category" in ev.data:
            name = f"{kind}:{ev.data['category']}"
        out.append({"ph": "i", "name": name, "cat": ev.layer, "ts": ev.ts,
                    "pid": 0, "tid": tid, "s": "t", "args": args})
        if kind == "msg.recv":
            send = sends.get(ev.parent)
            if send is None:
                # The causal parent was evicted from the ring (or the
                # event is a synthetic root): no flow arrow to draw.
                if ev.parent != -1:
                    orphaned += 1
                continue
            flow = {"cat": ev.layer, "name": name, "id": ev.parent, "pid": 0}
            out.append({**flow, "ph": "s", "ts": send.ts, "tid": _tid(send.node, n_tracks)})
            out.append({**flow, "ph": "f", "bp": "e", "ts": ev.ts, "tid": tid})

    if buf.metrics is not None:
        out.extend(buf.metrics.perfetto_counters())

    doc = {"traceEvents": out, "displayTimeUnit": "ms",
           "otherData": {"dropped": buf.dropped, "orphaned_edges": orphaned,
                         "clock": "simulated cycles (as us)"}}
    Path(path).write_text(json.dumps(doc) + "\n")
    return len(events)


# ---------------------------------------------------------------- summaries
def message_mix(buf: TraceBuffer) -> dict:
    """Per-category message counts/words from the surviving trace events.

    Returns ``{category: {"count": n, "words": w}}``.  Prefer the
    machine's counters for exact totals on long runs (the ring may have
    dropped early events); this view exists for trace-only analysis
    and for diffing two traces.
    """
    mix: dict[str, dict] = {}
    for ev in buf.events():
        if ev.kind != "msg.send" or not isinstance(ev.data, dict):
            continue
        cat = ev.data.get("category", "?")
        slot = mix.get(cat)
        if slot is None:
            slot = mix[cat] = {"count": 0, "words": 0}
        slot["count"] += 1
        slot["words"] += ev.data.get("words", 0)
    return mix


def cluster_hists(buf: TraceBuffer) -> dict:
    """Buffer histograms with per-node RPC hists folded cluster-wide.

    The traced machine records RPC round-trip latencies per source node
    (``node<i>.rpc.<category>``); this view merges each category's
    per-node histograms into one ``rpc.<category>`` histogram via
    :meth:`~repro.obs.trace.Histogram.merge` — percentile-exact, since
    bucket counts simply add.  Non-RPC histograms (lock hold times,
    etc.) pass through by reference.
    """
    merged: dict[str, Histogram] = {}
    for name in sorted(buf.hists):
        h = buf.hists[name]
        head, _, rest = name.partition(".")
        if head.startswith("node") and head[4:].isdigit() and rest.startswith("rpc."):
            tgt = merged.get(rest)
            merged[rest] = h.copy() if tgt is None else tgt.merge(h)
        else:
            merged[name] = h
    return merged


def stall_cycles(buf: TraceBuffer) -> dict:
    """Cycles tasks spent blocked on RPC round trips, by category.

    Fed from the per-node ``node<i>.rpc.<category>`` histograms the
    traced machine records (merged cluster-wide); the total is the
    trace-level analogue of the paper's "stall time".
    """
    return {
        name[len("rpc."):]: h.total
        for name, h in cluster_hists(buf).items()
        if name.startswith("rpc.")
    }


def orphaned_edges(buf: TraceBuffer) -> int:
    """Surviving events whose causal parent was evicted from the ring.

    Zero whenever ``buf.dropped`` is zero; exporters use this to
    report "N edges lost to eviction" instead of silently omitting
    flow arrows.
    """
    if buf.dropped == 0:
        return 0
    events = buf.events()
    if not events:
        return 0
    oldest = events[0].eid
    return sum(1 for ev in events if ev.parent != -1 and ev.parent < oldest)


def per_node_messages(stats) -> dict:
    """Per-node sent/received message counts from the traced counters.

    The traced delivery path bumps ``node<i>.msg.sent`` /
    ``node<i>.msg.recv`` (see :class:`~repro.machine.machine.Machine`);
    returns ``{nid: {"sent": s, "recv": r}}`` for nodes that appear.
    """
    out: dict[int, dict] = {}
    for nid, counters in stats.by_node("msg").items():
        slot = out[nid] = {"sent": 0, "recv": 0}
        for rest, v in counters.items():
            slot[rest[4:]] = v
    return out


def run_summary(result, buf: TraceBuffer) -> dict:
    """The full per-run digest ``tools/trace.py`` renders.

    ``result`` is a :class:`~repro.facade.context.RunResult` from a run
    with ``tracer=buf``.
    """
    stats = result.stats
    msg = {k[len("msg."):]: v for k, v in stats.with_prefix("msg").items()
           if k not in ("msg.total", "msg.words")}
    stalls = stall_cycles(buf)
    out = {
        "cycles": result.time,
        "msg_total": stats.get("msg.total"),
        "msg_words": stats.get("msg.words"),
        "mix": dict(sorted(msg.items(), key=lambda kv: -kv[1])),
        "stall_cycles": stalls,
        "stall_total": sum(stalls.values()),
        "per_node": per_node_messages(stats),
        "hists": {name: h.summary() for name, h in sorted(cluster_hists(buf).items()) if h.count},
        "events": len(buf),
        "dropped": buf.dropped,
        "orphaned_edges": orphaned_edges(buf),
        "phases": {name: dict(delta) for name, delta in stats.phases.items()},
    }
    if buf.metrics is not None:
        out["metrics"] = buf.metrics.summary(result.time, result.machine.n_procs)
    return out


def mix_delta(a: dict, b: dict) -> dict:
    """Per-category count difference between two :func:`message_mix` views."""
    delta: Counter = Counter()
    for cat, slot in a.items():
        delta[cat] += slot["count"]
    for cat, slot in b.items():
        delta[cat] -= slot["count"]
    return {cat: n for cat, n in sorted(delta.items()) if n}
