"""Critical-path extraction over the causal trace DAG.

The trace is a DAG: every event was emitted at a fixed simulated time,
and causal edges (message send→receive, handler receive→reply send,
barrier last-arrival→release, future-resolution→woken ``task.step``)
always point from an earlier-emitted event to a later one — so the
buffer's append order is already a topological order, and the longest
weighted path falls out of a single forward scan.

Edges and weights
-----------------
``compute``
    consecutive kernel events of one task across an on-CPU stretch
    (weight = elapsed cycles);
``wire``
    ``msg.send`` → ``msg.recv`` (network latency + per-word cost);
``send``
    a deferred injection (handler post) back to its causal context;
``service``/``local``
    zero-weight structural edges tying events emitted during one
    dispatch to the dispatch head (a handler's receive, a task's step);
``wake``
    the event that resolved a future → the ``task.step`` it woke;
``barrier``
    last ``barrier.arrive`` → ``barrier.release`` (the hardware cost);
``block:<bucket>``
    fallback when a wakeup has no recorded cause (locally-resolved
    future): the task's own block → step span, classified like
    attribution buckets.

Because every edge weight equals the timestamp difference of its
endpoints, any root-to-event path measures ``ts(event) - ts(root)`` —
so the critical-path length is at most ``res.time``, with equality
exactly when a causal chain connects a time-0 root to a run-final
event (synchronization-bound runs; EM3D static hits it).

What-if mode re-runs the same forward scan with selected edge classes
zeroed (e.g. ``("wire", "send")`` = free interconnect) and reports the
shortened makespan — an *upper bound* on achievable speedup, with the
usual what-if caveat that second-order effects (lock queueing order,
protocol round trips that would restructure) are not re-simulated.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.attrib import classify_wait, phase_intervals

__all__ = ["CriticalPath", "critical_path", "WHAT_IF_PRESETS"]

#: Edge-class sets for the standard what-if questions.
WHAT_IF_PRESETS = {
    "zero_message_latency": ("wire", "send"),
    "free_barriers": ("barrier", "block:barrier"),
    "free_locks": ("wake:lock", "block:lock"),
}

#: Event kinds that begin a new dispatch cluster (everything emitted
#: after them at the same timestamp, until the next head, happened
#: inside the same kernel dispatch).
_HEADS = frozenset(
    {"task.spawn", "task.step", "task.finish", "task.crash", "msg.recv", "barrier.release", "rel.retry"}
)

_TASK_KINDS = frozenset({"task.spawn", "task.step", "task.block", "task.finish", "task.crash"})


def _task_name(ev):
    data = ev.data
    return data["task"] if type(data) is dict else data


def _matches(cat: str, zero) -> bool:
    for z in zero:
        if cat == z or cat.startswith(z + ":"):
            return True
    return False


class CriticalPath:
    """Longest causal chain through one traced run."""

    __slots__ = (
        "length",
        "res_time",
        "by_category",
        "path",
        "orphaned_edges",
        "n_events",
        "n_edges",
        "_events",
        "_incoming",
        "_phases",
    )

    def __init__(self, events, incoming, length, path, by_category, orphaned, res_time):
        self._events = events
        self._incoming = incoming
        self._phases = None
        self.length = length
        self.path = path
        self.by_category = by_category
        self.orphaned_edges = orphaned
        self.res_time = res_time
        self.n_events = len(events)
        self.n_edges = sum(len(v) for v in incoming.values())

    # -- composition ----------------------------------------------------
    def segments(self):
        """Merge consecutive same-category path edges into segments."""
        segs = []
        for src, dst, weight, cat in self.path:
            if segs and segs[-1]["category"] == cat:
                segs[-1]["cycles"] += weight
                segs[-1]["to_ts"] = dst.ts
                segs[-1]["events"] += 1
            else:
                node = dst.node
                if node < 0 and dst.kind in _TASK_KINDS:
                    # Kernel task events carry no node; recover it from
                    # the SPMD task naming convention (proc<N>).
                    name = _task_name(dst)
                    if name.startswith("proc") and name[4:].isdigit():
                        node = int(name[4:])
                segs.append(
                    {
                        "category": cat,
                        "cycles": weight,
                        "from_ts": src.ts,
                        "to_ts": dst.ts,
                        "node": node,
                        "kind": dst.kind,
                        "events": 1,
                    }
                )
        return segs

    def top_segments(self, k: int = 10, res_time: int | None = None):
        """The ``k`` heaviest path segments, annotated with their phase."""
        total = res_time if res_time is not None else self.res_time
        if self._phases is None:
            self._phases = phase_intervals(self._events, total)
        segs = sorted(self.segments(), key=lambda s: -s["cycles"])[:k]
        for seg in segs:
            name = None
            for t0, t1, pname in self._phases:
                if t0 <= seg["from_ts"] < t1:
                    name = pname
                    break
            seg["phase"] = name if name is not None else "(no phase)"
        return segs

    # -- what-if --------------------------------------------------------
    def what_if(self, zero) -> int:
        """Makespan lower bound with the edge classes in ``zero`` free.

        Re-runs the forward longest-path scan with matching edges at
        weight 0; the DAG (all true dependencies) is unchanged, so the
        result bounds what any implementation that only removed those
        costs could achieve.
        """
        dist: dict[int, int] = {}
        best = 0
        incoming = self._incoming
        for ev in self._events:
            d = 0
            for src_eid, weight, cat in incoming.get(ev.eid, ()):
                w = 0 if _matches(cat, zero) else weight
                cand = dist.get(src_eid, 0) + w
                if cand > d:
                    d = cand
            dist[ev.eid] = d
            if d > best:
                best = d
        return best

    def speedup_bound(self, zero) -> float:
        """Upper bound on speedup from zeroing ``zero`` edge classes."""
        shortened = self.what_if(zero)
        return self.length / shortened if shortened else float("inf")

    def to_dict(self, top_k: int = 10) -> dict:
        return {
            "length": self.length,
            "res_time": self.res_time,
            "by_category": dict(self.by_category),
            "orphaned_edges": self.orphaned_edges,
            "n_events": self.n_events,
            "n_edges": self.n_edges,
            "top_segments": self.top_segments(top_k),
            "what_if": {
                name: {
                    "bound_cycles": (b := self.what_if(zero)),
                    "speedup_bound": round(self.length / b, 3) if b else None,
                }
                for name, zero in WHAT_IF_PRESETS.items()
            },
        }


def critical_path(buf, res_time: int | None = None) -> CriticalPath:
    """Extract the longest weighted causal chain from a trace.

    Tolerates ring eviction: edges whose causal parent was dropped are
    skipped and counted in ``orphaned_edges`` (the path then starts at
    the oldest surviving cause instead).
    """
    events = buf.events() if hasattr(buf, "events") else list(buf)
    by_id = {ev.eid: ev for ev in events}
    incoming = defaultdict(list)  # eid -> [(src_eid, weight, category)]
    orphaned = 0

    prev_task: dict[str, object] = {}  # task name -> its previous kernel event
    cluster_head = None
    prev_ts = None

    for ev in events:
        kind = ev.kind
        # -- dispatch clusters: tie same-dispatch emissions together --
        if kind in _HEADS or ev.ts != prev_ts:
            cluster_head = ev
        elif cluster_head is not None and cluster_head.eid != ev.eid:
            incoming[ev.eid].append((cluster_head.eid, 0, "local"))
        prev_ts = ev.ts

        # -- explicit causal parents ----------------------------------
        parent = ev.parent
        if parent != -1 and kind != "rpc.return":
            # rpc.return keeps its call as Perfetto slice parent, but
            # that edge telescopes the whole round trip — the path
            # already crosses it via wire + service + wake edges.
            src = by_id.get(parent)
            if src is None:
                orphaned += 1
            else:
                weight = ev.ts - src.ts
                if kind == "msg.recv":
                    cat = "wire"
                elif kind == "task.step":
                    cat = "wake"
                    wait = prev_task.get(_task_name(ev))
                    if wait is not None and wait.kind == "task.block":
                        cat = "wake:" + classify_wait(wait.data["on"])[0]
                elif kind == "msg.send":
                    cat = "send"
                elif kind == "barrier.release":
                    cat = "barrier"
                else:
                    cat = "cause"
                incoming[ev.eid].append((src.eid, weight, cat))

        # -- per-task chains ------------------------------------------
        if kind in _TASK_KINDS:
            name = _task_name(ev)
            prev = prev_task.get(name)
            if prev is not None:
                if prev.kind == "task.block":
                    if ev.parent == -1 or ev.parent not in by_id:
                        # No recorded waker (locally-resolved future or
                        # evicted cause): fall back to the task's own
                        # blocked span so the chain stays connected.
                        bucket = classify_wait(prev.data["on"])[0]
                        incoming[ev.eid].append(
                            (prev.eid, ev.ts - prev.ts, "block:" + bucket)
                        )
                else:
                    incoming[ev.eid].append((prev.eid, ev.ts - prev.ts, "compute"))
            prev_task[name] = ev

    # -- forward longest-path scan (buffer order is topological) ------
    dist: dict[int, int] = {}
    best_pred: dict[int, tuple] = {}
    end_eid = None
    best = -1
    for ev in events:
        d = 0
        pred = None
        for src_eid, weight, cat in incoming.get(ev.eid, ()):
            cand = dist.get(src_eid, 0) + weight
            if cand > d or (cand == d and pred is None):
                d = cand
                pred = (src_eid, weight, cat)
        dist[ev.eid] = d
        if pred is not None:
            best_pred[ev.eid] = pred
        if d >= best:
            best = d
            end_eid = ev.eid

    # -- backtrack ----------------------------------------------------
    path = []
    by_category = defaultdict(int)
    eid = end_eid
    while eid is not None and eid in best_pred:
        src_eid, weight, cat = best_pred[eid]
        path.append((by_id[src_eid], by_id[eid], weight, cat))
        by_category[cat] += weight
        eid = src_eid
    path.reverse()

    length = max(best, 0)
    return CriticalPath(
        events,
        dict(incoming),
        length,
        path,
        dict(by_category),
        orphaned,
        res_time if res_time is not None else (events[-1].ts if events else 0),
    )
