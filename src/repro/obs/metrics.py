"""Windowed time-series metrics: cheap enough to leave on.

A :class:`MetricsWindow` divides simulated time into fixed-width
windows and keeps a handful of counters per window — message mix,
words moved, RPC stall cycles, task blocks, and region state
transitions (per state and per region).  It attaches to a
:class:`~repro.obs.trace.TraceBuffer` at construction
(``TraceBuffer(metrics=...)``) and is fed **inline at emit time**, so
it sees every event exactly once even after the ring has evicted it.
A small ring plus a metrics window is the "leave it on" configuration:
bounded memory, full-run time series.

The cost model matters: :meth:`observe` runs for *every* traced event,
so the first line is a frozenset membership test that rejects the
~80 % of events it does not track, and the window row is cached across
consecutive observations (simulated time is monotone, so the cache
almost always hits).  With observability off the window is never
constructed and costs literally nothing — the usual construction-time
resolution discipline.

Exports: :meth:`MetricsWindow.rows` (sparse, sorted, JSON-friendly),
:meth:`MetricsWindow.to_jsonl`, and
:meth:`MetricsWindow.perfetto_counters` (Chrome ``ph: "C"`` counter
tracks that render as area charts under the event tracks in the
Perfetto UI — :func:`repro.obs.export.to_perfetto` appends them
automatically when the buffer has a window attached).
"""

from __future__ import annotations

import json
from collections import Counter

#: Event kinds a MetricsWindow accumulates; everything else is rejected
#: by one frozenset probe.
TRACKED_KINDS = frozenset({"msg.send", "rpc.return", "region.state", "task.block"})


class MetricsWindow:
    """Fixed-width windowed counters over the trace event stream.

    ``width`` is the window size in simulated cycles.  Rows are sparse:
    a window with no tracked events allocates nothing.
    """

    __slots__ = ("width", "_rows", "_cur", "_cur_w", "observed")

    def __init__(self, width: int = 4096):
        if width <= 0:
            raise ValueError(f"window width must be positive: {width}")
        self.width = width
        #: window index -> mutable row dict (see _new_row for the shape)
        self._rows: dict[int, dict] = {}
        self._cur: dict | None = None
        self._cur_w = -1
        #: total tracked events observed (drop-proof, unlike len(buf))
        self.observed = 0

    @staticmethod
    def _new_row() -> dict:
        return {
            "msgs": 0,
            "words": 0,
            "rpcs": 0,
            "stall": 0,
            "blocks": 0,
            "transitions": 0,
            "mix": Counter(),
            "states": Counter(),
            "rids": Counter(),
        }

    # -- the hot path ----------------------------------------------------
    def observe(self, ts: int, kind: str, data) -> None:
        """Accumulate one event; called inline by ``TraceBuffer.emit``."""
        if kind not in TRACKED_KINDS:
            return
        w = ts // self.width
        row = self._cur
        if w != self._cur_w:
            row = self._rows.get(w)
            if row is None:
                row = self._rows[w] = self._new_row()
            self._cur = row
            self._cur_w = w
        self.observed += 1
        if kind == "msg.send":
            row["msgs"] += 1
            if isinstance(data, dict):
                row["words"] += data.get("words", 0)
                row["mix"][data.get("category", "?")] += 1
        elif kind == "rpc.return":
            row["rpcs"] += 1
            if isinstance(data, dict):
                row["stall"] += data.get("lat", 0)
        elif kind == "task.block":
            row["blocks"] += 1
        elif kind == "region.state":
            row["transitions"] += 1
            if isinstance(data, dict):
                row["states"][data.get("state", "?")] += 1
                row["rids"][data.get("rid", -1)] += 1
        else:
            # Every member of TRACKED_KINDS must have an explicit branch
            # above: a kind that passes the frozenset gate but reaches
            # here means someone extended TRACKED_KINDS without teaching
            # the dispatch, and silently folding it into another bucket
            # would corrupt the series.
            raise ValueError(f"tracked event kind {kind!r} has no dispatch branch")

    # -- reading ---------------------------------------------------------
    def rows(self) -> list[dict]:
        """Sparse rows, sorted by window, with start/end cycle stamps."""
        out = []
        for w in sorted(self._rows):
            row = self._rows[w]
            out.append({
                "window": w,
                "start": w * self.width,
                "end": (w + 1) * self.width,
                "msgs": row["msgs"],
                "words": row["words"],
                "rpcs": row["rpcs"],
                "stall": row["stall"],
                "blocks": row["blocks"],
                "transitions": row["transitions"],
                "mix": dict(sorted(row["mix"].items())),
                "states": dict(sorted(row["states"].items())),
                "rids": {str(k): v for k, v in sorted(row["rids"].items())},
            })
        return out

    def summary(self, total_cycles: int | None = None, n_nodes: int | None = None) -> dict:
        """Whole-run totals; adds ``stall_fraction`` when the run shape is known.

        ``stall_fraction`` is total RPC stall cycles over total node-cycles
        (``total_cycles * n_nodes``) — the fraction of aggregate capacity
        spent blocked on round trips.  A degenerate shape (zero cycles or
        zero nodes — an empty run) reports ``stall_fraction: None`` rather
        than dividing by zero or silently omitting the key.
        """
        totals = Counter()
        mix: Counter = Counter()
        states: Counter = Counter()
        for row in self._rows.values():
            for k in ("msgs", "words", "rpcs", "stall", "blocks", "transitions"):
                totals[k] += row[k]
            mix.update(row["mix"])
            states.update(row["states"])
        out = {
            "width": self.width,
            "windows": len(self._rows),
            "observed": self.observed,
            **{k: totals[k] for k in ("msgs", "words", "rpcs", "stall", "blocks", "transitions")},
            "mix": dict(sorted(mix.items(), key=lambda kv: -kv[1])),
            "states": dict(sorted(states.items())),
        }
        if total_cycles is not None and n_nodes is not None:
            capacity = total_cycles * n_nodes
            out["stall_fraction"] = round(totals["stall"] / capacity, 4) if capacity else None
        return out

    # -- exports ---------------------------------------------------------
    def to_jsonl(self, path) -> int:
        """One JSON row per window (header first); returns rows written."""
        rows = self.rows()
        with open(path, "w") as fh:
            fh.write(json.dumps({"metrics": self.summary()}) + "\n")
            for row in rows:
                fh.write(json.dumps(row) + "\n")
        return len(rows)

    def perfetto_counters(self, pid: int = 0) -> list[dict]:
        """Chrome ``trace_event`` counter records (``ph: "C"``).

        One counter track per scalar series, stamped at each window's
        start cycle; Perfetto renders them as step charts.  Windows with
        no events between two populated ones get explicit zero samples
        so the chart drops to the baseline instead of interpolating.
        """
        out: list[dict] = []
        series = ("msgs", "words", "rpcs", "stall", "blocks", "transitions")
        prev_w = None
        for w in sorted(self._rows):
            if prev_w is not None and w > prev_w + 1:
                ts = (prev_w + 1) * self.width
                for name in series:
                    out.append({"ph": "C", "name": f"{name}/window", "pid": pid,
                                "ts": ts, "args": {name: 0}})
            row = self._rows[w]
            ts = w * self.width
            for name in series:
                out.append({"ph": "C", "name": f"{name}/window", "pid": pid,
                            "ts": ts, "args": {name: row[name]}})
            prev_w = w
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsWindow(width={self.width}, windows={len(self._rows)}, observed={self.observed})"
