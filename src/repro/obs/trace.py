"""Structured, causal tracing of simulated events.

Counters (:mod:`repro.machine.stats`) answer *how many*; this module
answers *which, when, and because of what*.  A :class:`TraceBuffer` is
a bounded ring of :class:`TraceEvent` records — task lifecycle,
message send/receive, RPC round trips, region state transitions, lock
and barrier epochs, application phases — each stamped with the
simulated cycle, the node it happened on, and a **causal parent id**
linking effects to the event that produced them (a receive points at
its send, an RPC return at its call).  Exporters
(:mod:`repro.obs.export`) turn the ring into JSONL or a
Chrome/Perfetto ``trace_event`` file.

Zero cost when off
------------------
Tracing follows the same construction-time-resolution discipline as
:func:`~repro.machine.stats.intern_key`: every layer decides **once,
at engine/kernel construction**, whether it is traced.  Hot paths hold
a pre-bound :class:`Tracer` handle (or ``None``) in a slot, so the
disabled path costs a single local load and branch — no string
formatting, no dict probe, no call.  The hottest sites go further and
swap in a *traced variant of the whole method* at construction
(:class:`~repro.machine.machine.Machine` selects ``_deliver`` /
``rpc`` / ``reply`` implementations once), so with tracing off the
executed bytecode is byte-for-byte the pre-observability fast path.
``tools/bench.py --baseline`` and the golden-trace tests enforce that
simulated cycles are bit-identical with tracing off *and* on — the
trace is pure observation and never perturbs scheduling.

Latency metrics ride on the same buffer: :meth:`TraceBuffer.hist`
returns power-of-two-bucketed :class:`Histogram` objects that the
machine (RPC round trips) and lock service (hold times) feed while
traced.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import NamedTuple


class TraceEvent(NamedTuple):
    """One simulated event.

    ``parent`` is the id of the event that caused this one (``-1`` for
    roots): a ``msg.recv`` parents to its ``msg.send``, a ``msg.send``
    issued inside an RPC parents to the ``rpc.call``, an ``rpc.return``
    parents to its ``rpc.call``.  ``node`` is ``-1`` when the event is
    not tied to one node (kernel bookkeeping, global barrier release).
    ``data`` is a small dict, a string, or ``None``.
    """

    eid: int
    ts: int
    layer: str
    kind: str
    node: int
    parent: int
    data: object


class Histogram:
    """Power-of-two bucketed histogram of non-negative integers.

    Buckets are ``value.bit_length()`` (bucket *b* spans
    ``[2^(b-1), 2^b - 1]``; bucket 0 holds exact zeros), so a cycle
    latency needs one integer op to classify and percentiles come back
    as bucket upper bounds — approximate, but monotone and stable,
    which is what regression-hunting needs.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max = 0
        self.buckets: Counter = Counter()

    def add(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[value.bit_length()] += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place; returns ``self``.

        Bucket counts add, so every percentile of the merged histogram
        equals the percentile of a single histogram fed both streams —
        exactly, because :meth:`add` classifies by value alone.  Used
        by :func:`repro.obs.export.run_summary` to aggregate per-node
        RPC latency histograms cluster-wide.
        """
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.buckets.update(other.buckets)
        return self

    def copy(self) -> "Histogram":
        """An independent duplicate (merge target that leaves the source intact)."""
        h = Histogram()
        h.count = self.count
        h.total = self.total
        h.min = self.min
        h.max = self.max
        h.buckets = Counter(self.buckets)
        return h

    def percentile(self, p: float) -> int:
        """Upper bound of the bucket containing the ``p``-quantile,
        clamped to the observed maximum."""
        if self.count == 0:
            return 0
        need = p * self.count
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= need:
                return min((1 << b) - 1, self.max) if b else 0
        return self.max  # pragma: no cover - need <= count always lands above

    def summary(self) -> dict:
        """JSON-friendly digest (mean exact; percentiles bucketed)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": round(self.total / self.count, 1) if self.count else 0,
            "min": self.min or 0,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, total={self.total})"


class Tracer:
    """A per-layer emit handle bound to one :class:`TraceBuffer`.

    Layers hold exactly one of these (or ``None``) and call
    :meth:`emit`; the layer name is curried in so hot traced paths
    pass only what varies per event.
    """

    __slots__ = ("layer", "_emit")

    def __init__(self, buf: "TraceBuffer", layer: str):
        self.layer = layer
        self._emit = buf.emit

    def emit(self, ts: int, kind: str, node: int = -1, parent: int = -1, data=None) -> int:
        """Record one event; returns its id (for use as a later parent)."""
        return self._emit(ts, self.layer, kind, node, parent, data)


class TraceBuffer:
    """Bounded ring of trace events plus named latency histograms.

    The ring keeps the most recent ``capacity`` events; ``dropped``
    counts evictions so exporters can say "first N events lost" instead
    of silently truncating.  Event ids keep increasing across drops —
    causal parents of surviving events may therefore reference evicted
    ids, which exporters treat as unknown roots.
    """

    def __init__(self, capacity: int = 1 << 16, metrics=None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._events: deque = deque(maxlen=capacity)
        self._next_id = 0
        self.hists: dict[str, Histogram] = {}
        # Optional windowed-metrics sink (repro.obs.metrics.MetricsWindow).
        # Fed inline at emit time, so it sees every event even after the
        # ring has evicted it — a tiny ring plus metrics is the cheap
        # "leave it on" configuration.  When None, emit() stays the
        # original two-branch append (the common case selects the plain
        # emit body once, at construction).
        self.metrics = metrics
        if metrics is not None:
            self.emit = self._emit_metered  # type: ignore[method-assign]
        # Current dispatch context: the event id heading the kernel
        # dispatch executing right now (a task.step or a msg.recv) and
        # its timestamp.  The kernel and machine publish it; traced
        # sends read it as their causal parent.  ctx_ts guards against
        # staleness — a context is only valid at its own cycle.
        self.ctx_eid = -1
        self.ctx_ts = -1

    # -- recording ------------------------------------------------------
    def emit(self, ts: int, layer: str, kind: str, node: int = -1, parent: int = -1, data=None) -> int:
        """Append an event; returns its id."""
        eid = self._next_id
        self._next_id = eid + 1
        q = self._events
        if len(q) == self.capacity:
            self.dropped += 1
        q.append(TraceEvent(eid, ts, layer, kind, node, parent, data))
        return eid

    def _emit_metered(self, ts: int, layer: str, kind: str, node: int = -1, parent: int = -1, data=None) -> int:
        """emit() variant installed when a MetricsWindow is attached."""
        eid = self._next_id
        self._next_id = eid + 1
        q = self._events
        if len(q) == self.capacity:
            self.dropped += 1
        q.append(TraceEvent(eid, ts, layer, kind, node, parent, data))
        self.metrics.observe(ts, kind, data)
        return eid

    def tracer(self, layer: str) -> Tracer:
        """A per-layer emit handle (build once, at layer construction)."""
        return Tracer(self, layer)

    def hist(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        h = self.hists.get(name)
        if h is None:
            h = self.hists[name] = Histogram()
        return h

    # -- reading --------------------------------------------------------
    def events(self) -> list[TraceEvent]:
        """Snapshot of the surviving events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Drop all events and histograms (ids keep increasing)."""
        self._events.clear()
        self.dropped = 0
        self.hists.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceBuffer({len(self._events)}/{self.capacity} events, "
            f"{self.dropped} dropped, {len(self.hists)} hists)"
        )
