"""Exact cycle attribution over the causal trace.

Every node's timeline ``[0, res.time)`` is decomposed into disjoint
buckets — compute, message-round waits, lock waits, barrier waits,
directory service, retry overhead, join waits, and post-finish idle —
by pairing each kernel ``task.block`` event with the task's next
``task.step``.  Between those two events the node's main task is
provably off-CPU waiting on exactly the future named in the block
event, so the decomposition *reconciles exactly*::

    sum(all buckets over all nodes) == res.time * n_nodes

:func:`attribute` asserts that identity (when no ring evictions
occurred) and additionally splits every wait span per phase (from
``phase.begin``/``phase.end`` marks), per region (from ``dsm.miss`` /
``lock.request`` context and rids embedded in future names), and per
protocol (joining ``region.alloc`` with the ``space.new`` /
``space.protocol`` timeline).

The *compute* bucket is the residual on-CPU time and therefore
includes local protocol software overhead (hit checks, miss-path
set-up costs) — the per-op ``Stats`` counters refine that further if
needed.  Handler dispatches model the coprocessor and are not charged
to the node timeline (the main task keeps computing through them
unless it blocks).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict

__all__ = [
    "BUCKETS",
    "WAIT_BUCKETS",
    "AttributionError",
    "Attribution",
    "attribute",
    "classify_wait",
    "classify_category",
    "phase_intervals",
]

#: Wait buckets a blocked span can land in (plus the residuals).
WAIT_BUCKETS = ("msg", "lock", "barrier", "dir", "retry", "join", "other")
BUCKETS = ("compute",) + WAIT_BUCKETS + ("idle",)

#: RPC-category suffixes served by the directory (home-side metadata
#: service) rather than by a peer protocol round.
_DIR_SUFFIXES = frozenset({"read_req", "write_req", "map_lookup", "flush", "grant_ack"})

#: Future-name tags of the form ``tag:<rid>@<node>`` whose rid we can
#: recover directly from the name.
_RID_TAGS = frozenset({"lock", "read", "write", "ctr", "mig", "du"})


class AttributionError(AssertionError):
    """The decomposition failed to reconcile (overlapping or negative spans)."""


def classify_category(cat: str) -> str:
    """Bucket for an RPC/retry category string (e.g. ``ace.sc.read_req``)."""
    if cat == "barrier.notify":
        return "barrier"
    if ".lock." in f".{cat}.":
        return "lock"
    if cat.rpartition(".")[2] in _DIR_SUFFIXES:
        return "dir"
    return "msg"


def _rid_of(rest: str):
    head = rest.partition("@")[0]
    return int(head) if head.isdigit() else None


def classify_wait(name: str):
    """Classify a future name → ``(bucket, rid_or_None, proto_or_None)``.

    Future names double as structured wait reasons: ``rpc:<category>``
    and ``rel:<category>`` carry the message category, local waits like
    ``lock:<rid>@<node>`` carry the region id, protocol-internal
    rounds (``ctr:``/``mig:``/``bu:``/``su:``/``pw:``/``rd:``/``du:``/
    fanouts) are message waits.
    """
    tag, sep, rest = name.partition(":")
    if not sep:
        return ("other", None, None)
    if tag in ("rpc", "rel"):
        proto = rest.split(".")[1] if rest.startswith("proto.") else None
        return (classify_category(rest), None, proto)
    if tag == "lock":
        return ("lock", _rid_of(rest), None)
    if tag in ("read", "write"):
        return ("dir", _rid_of(rest), None)
    if tag in ("hw_barrier", "barrier"):
        return ("barrier", None, None)
    if tag == "done":
        return ("join", None, None)
    if tag in _RID_TAGS:
        return ("msg", _rid_of(rest), None)
    # Remaining protocol rounds (bu:ship, su:barrier, pw:drain,
    # rd:push, <coll>:fanout, ...) are peer message waits.
    return ("msg", None, None)


def phase_intervals(events, total: int):
    """Flatten ``phase.begin``/``phase.end`` marks into a disjoint,
    complete partition of ``[0, total)`` as ``[(t0, t1, name), ...]``
    (``name`` is ``None`` outside any phase; nesting shows the
    innermost phase)."""
    intervals = []
    stack = []  # phase names
    cur_start = 0
    cur_name = None

    def close(ts):
        nonlocal cur_start
        if ts > cur_start:
            intervals.append((cur_start, ts, cur_name))
        cur_start = ts

    for ev in events:
        if ev.kind == "phase.begin":
            close(ev.ts)
            stack.append(ev.data)
            cur_name = ev.data
        elif ev.kind == "phase.end":
            close(ev.ts)
            if stack:
                stack.pop()
            cur_name = stack[-1] if stack else None
    close(total)
    return intervals


class Attribution:
    """Result of :func:`attribute`: exact per-node cycle decomposition."""

    __slots__ = (
        "total",
        "n_nodes",
        "res_time",
        "buckets",
        "per_node",
        "per_phase",
        "per_region",
        "per_protocol",
        "spans",
        "dropped",
        "exact",
    )

    def __init__(self):
        self.buckets: dict = {}
        self.per_node: dict = {}
        self.per_phase: dict = {}
        self.per_region: dict = {}
        self.per_protocol: dict = {}
        self.spans: dict = {}
        self.dropped = 0
        self.exact = True
        self.total = 0
        self.n_nodes = 0
        self.res_time = 0

    def reconciles(self) -> bool:
        """True iff the bucket sum equals ``res_time * n_nodes`` exactly."""
        return sum(self.buckets.values()) == self.total

    def to_dict(self) -> dict:
        """JSON-friendly form (what ``tools/profile.py`` writes)."""
        return {
            "res_time": self.res_time,
            "n_nodes": self.n_nodes,
            "total": self.total,
            "exact": self.exact,
            "dropped": self.dropped,
            "reconciles": self.reconciles(),
            "buckets": dict(self.buckets),
            "per_node": {str(n): dict(b) for n, b in sorted(self.per_node.items())},
            "per_phase": {str(p): dict(b) for p, b in self.per_phase.items()},
            "per_region": {str(r): dict(b) for r, b in sorted(self.per_region.items())},
            "per_protocol": {str(p): dict(b) for p, b in sorted(self.per_protocol.items())},
        }


def _proto_at(timeline, ts):
    """Protocol name active at ``ts`` given ``[(ts, name), ...]`` sorted."""
    name = None
    for t, n in timeline:
        if t > ts:
            break
        name = n
    return name


def attribute(buf, res_time: int, n_nodes: int, strict: bool = True) -> Attribution:
    """Decompose node timelines into cycle buckets; see module docstring.

    ``buf`` is a :class:`~repro.obs.trace.TraceBuffer` (or a plain
    event list).  With ``strict`` (default) an
    :class:`AttributionError` is raised if the sum check fails while
    the ring recorded every event; with evictions (``dropped > 0``)
    the result is still produced but flagged ``exact=False`` — evicted
    block events silently fold their spans into *compute*.
    """
    events = buf.events() if hasattr(buf, "events") else list(buf)
    dropped = getattr(buf, "dropped", 0)

    T = res_time
    open_block: dict[int, tuple] = {}  # node -> (t0, wait_name, rid_ctx)
    spans = defaultdict(list)  # node -> [(t0, t1, bucket, rid, proto)]
    finish: dict[int, int] = {}
    pending_rid: dict[int, int] = {}  # node -> region id of the imminent wait
    retry_ts = defaultdict(list)  # node -> [ts, ...] of rel.retry fires
    region_space: dict[int, int] = {}  # rid -> sid
    space_proto = defaultdict(list)  # sid -> [(ts, proto)]

    def node_of(task_name):
        if task_name.startswith("proc"):
            rest = task_name[4:]
            if rest.isdigit():
                return int(rest)
        return None

    for ev in events:
        kind = ev.kind
        if kind == "task.block":
            nid = node_of(ev.data["task"])
            if nid is not None:
                open_block[nid] = (ev.ts, ev.data["on"], pending_rid.pop(nid, None))
        elif kind == "task.step":
            nid = node_of(ev.data)
            if nid is not None and nid in open_block:
                t0, wait_name, rid_ctx = open_block.pop(nid)
                spans[nid].append((t0, ev.ts, wait_name, rid_ctx))
        elif kind == "task.finish":
            nid = node_of(ev.data)
            if nid is not None:
                finish[nid] = ev.ts
        elif kind == "dsm.miss" or kind == "lock.request":
            if ev.node >= 0:
                pending_rid[ev.node] = ev.data["rid"]
        elif kind == "rel.retry":
            if ev.node >= 0:
                retry_ts[ev.node].append(ev.ts)
        elif kind == "region.alloc":
            region_space[ev.data["rid"]] = ev.data["sid"]
            space_proto[ev.data["sid"]].append((ev.ts, ev.data["proto"]))
        elif kind == "space.new" or kind == "space.protocol":
            space_proto[ev.data["sid"]].append((ev.ts, ev.data["protocol"]))

    # A block with no subsequent step (crash/deadlock) waits to the end.
    for nid, (t0, wait_name, rid_ctx) in open_block.items():
        spans[nid].append((t0, T, wait_name, rid_ctx))

    for timeline in space_proto.values():
        timeline.sort()

    phases = phase_intervals(events, T)
    phase_starts = [p[0] for p in phases]

    out = Attribution()
    out.res_time = T
    out.n_nodes = n_nodes
    out.total = T * n_nodes
    out.dropped = dropped
    out.exact = dropped == 0

    buckets = defaultdict(int)
    per_node = {n: defaultdict(int) for n in range(n_nodes)}
    per_phase = defaultdict(lambda: defaultdict(int))
    per_region = defaultdict(lambda: defaultdict(int))
    per_protocol = defaultdict(lambda: defaultdict(int))

    def split_by_phase(t0, t1, bucket):
        """Charge [t0, t1) to ``bucket`` within each overlapping phase."""
        if t1 <= t0:
            return
        i = max(bisect_right(phase_starts, t0) - 1, 0)
        while i < len(phases) and phases[i][0] < t1:
            p0, p1, name = phases[i]
            ov = min(t1, p1) - max(t0, p0)
            if ov > 0:
                per_phase[name if name is not None else "(no phase)"][bucket] += ov
            i += 1

    for nid in range(n_nodes):
        node_spans = sorted(spans.get(nid, ()))
        fin = finish.get(nid, T)
        idle = T - fin
        classified = []  # (t0, t1, bucket, rid, proto)
        retries = retry_ts.get(nid, ())
        for t0, t1, wait_name, rid_ctx in node_spans:
            bucket, rid, proto = classify_wait(wait_name)
            if rid is None:
                rid = rid_ctx
            if proto is None and rid is not None and rid in region_space:
                proto = _proto_at(space_proto[region_space[rid]], t0)
            if wait_name.startswith("rel:") and retries:
                # Retry overhead: the tail of a retried wait, from the
                # first retransmission on, is protocol recovery cost
                # rather than first-attempt latency.
                i = bisect_left(retries, t0)
                if i < len(retries) and retries[i] < t1:
                    rt = retries[i]
                    if rt > t0:
                        classified.append((t0, rt, bucket, rid, proto))
                    classified.append((rt, t1, "retry", rid, proto))
                    continue
            classified.append((t0, t1, bucket, rid, proto))

        wait_total = 0
        prev_end = 0
        for t0, t1, bucket, rid, proto in classified:
            if t0 < prev_end or t1 > fin:
                raise AttributionError(
                    f"node {nid}: wait span [{t0},{t1}) overlaps or exceeds "
                    f"finish {fin} — trace stream inconsistent"
                )
            prev_end = t1
            length = t1 - t0
            wait_total += length
            buckets[bucket] += length
            per_node[nid][bucket] += length
            split_by_phase(t0, t1, bucket)
            if rid is not None:
                per_region[rid][bucket] += length
            per_protocol[proto if proto is not None else "-"][bucket] += length
            # Compute between consecutive waits is charged per phase via
            # the gap [prev span end, this span start).
        # Phase-split the on-CPU gaps and the idle tail.
        gap_start = 0
        for t0, t1, _, _, _ in classified:
            split_by_phase(gap_start, t0, "compute")
            gap_start = t1
        split_by_phase(gap_start, fin, "compute")
        split_by_phase(fin, T, "idle")

        compute = T - idle - wait_total
        if compute < 0:
            raise AttributionError(
                f"node {nid}: wait spans ({wait_total}) exceed active time "
                f"({T - idle}) — trace stream inconsistent"
            )
        buckets["compute"] += compute
        buckets["idle"] += idle
        per_node[nid]["compute"] = compute
        per_node[nid]["idle"] = idle
        out.spans[nid] = classified

    out.buckets = dict(buckets)
    out.per_node = {n: dict(b) for n, b in per_node.items()}
    out.per_phase = {p: dict(b) for p, b in per_phase.items()}
    out.per_region = {r: dict(b) for r, b in per_region.items()}
    out.per_protocol = {p: dict(b) for p, b in per_protocol.items()}

    if strict and out.exact and not out.reconciles():
        raise AttributionError(
            f"attribution does not reconcile: bucket sum "
            f"{sum(out.buckets.values())} != {out.total} (= {T} x {n_nodes})"
        )
    return out
