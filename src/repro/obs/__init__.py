"""Observability: structured causal tracing, attribution, profiling.

See :mod:`repro.obs.trace` for the recording model and the
zero-cost-when-disabled design, :mod:`repro.obs.export` for JSONL /
Perfetto output and summaries, :mod:`repro.obs.attrib` for exact cycle
attribution, :mod:`repro.obs.critpath` for critical-path extraction
and what-if bounds, :mod:`repro.obs.metrics` for windowed time-series
counters, and DESIGN.md §7 and §13 for the full story.
"""

from repro.obs.attrib import Attribution, AttributionError, attribute
from repro.obs.critpath import WHAT_IF_PRESETS, CriticalPath, critical_path
from repro.obs.export import (
    cluster_hists,
    message_mix,
    mix_delta,
    orphaned_edges,
    per_node_messages,
    run_summary,
    stall_cycles,
    to_jsonl,
    to_perfetto,
)
from repro.obs.metrics import MetricsWindow
from repro.obs.trace import Histogram, TraceBuffer, TraceEvent, Tracer

__all__ = [
    "Attribution",
    "AttributionError",
    "CriticalPath",
    "Histogram",
    "MetricsWindow",
    "TraceBuffer",
    "TraceEvent",
    "Tracer",
    "WHAT_IF_PRESETS",
    "attribute",
    "cluster_hists",
    "critical_path",
    "message_mix",
    "mix_delta",
    "orphaned_edges",
    "per_node_messages",
    "run_summary",
    "stall_cycles",
    "to_jsonl",
    "to_perfetto",
]
