"""Observability: structured causal tracing, latency histograms, exporters.

See :mod:`repro.obs.trace` for the recording model and the
zero-cost-when-disabled design, :mod:`repro.obs.export` for JSONL /
Perfetto output and summaries, and DESIGN.md §7 for the full story.
"""

from repro.obs.export import (
    message_mix,
    mix_delta,
    per_node_messages,
    run_summary,
    stall_cycles,
    to_jsonl,
    to_perfetto,
)
from repro.obs.trace import Histogram, TraceBuffer, TraceEvent, Tracer

__all__ = [
    "Histogram",
    "TraceBuffer",
    "TraceEvent",
    "Tracer",
    "message_mix",
    "mix_delta",
    "per_node_messages",
    "run_summary",
    "stall_cycles",
    "to_jsonl",
    "to_perfetto",
]
