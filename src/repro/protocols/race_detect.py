"""Data-race detection as a coherence protocol (§2.1).

The paper cites Larus et al.'s LCM data-race checking protocol as the
kind of customization that *requires* full access control: its actions
"can be executed either before or after accesses" and at
synchronization points.  This protocol implements that idea for Ace:

* between two barriers (an *epoch*), every node records which regions
  it read and wrote;
* at the barrier, each node ships its access summary (plus written
  data) to each touched region's home;
* the home crosses the summaries: two writers, or a writer plus a
  foreign reader, in the same epoch is a data race, recorded in the
  space's protocol-private data (§4.1's per-space pointer);
* homes then push fresh values to the epoch's readers, so a race-free
  program computes exactly what it would under static update.

The race report is available as ``protocol.races`` — a sorted list of
``(epoch, rid, readers, writers)`` tuples — and via
:meth:`AceRuntime.space_protocol` lookups in tests and tools.

Every hook is live instrumentation, so the table registers no null
hooks and the protocol is non-optimizable: the rows ARE the recording
discipline (note the barrier row's five-step epoch-close pipeline).
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import ProtocolSpec
from repro.protocols.caching import CachedTableProtocol
from repro.protocols.registry import default_registry
from repro.sim import Delay, Future
from repro.spec import ProtocolTable, Transition

RACE_DETECT_TABLE = ProtocolTable(
    name="RaceDetect",
    description="records readers/writers per barrier epoch; reports conflicts",
    node_states=("invalid", "valid", "home"),
    home_states=("idle",),
    base_state="invalid",
    transitions=(
        Transition(
            "node",
            "*",
            "start_read",
            guard="epoch_stale_remote",
            cost=4,
            actions=("refetch", "mark_epoch", "touch_read"),
            msg="refetch",
        ),
        Transition("node", "*", "start_read", actions=("mark_epoch", "touch_read")),
        Transition("node", "*", "end_read", cost=2),
        Transition("node", "*", "start_write", actions=("mark_epoch", "touch_write")),
        Transition("node", "*", "end_write", cost=2),
        Transition(
            "node",
            "*",
            "barrier",
            actions=("ship_summaries", "rendezvous", "close_races", "rendezvous", "advance_epoch"),
            msg="summary",
            effects=("summaries_to_home", "race_check", "push_sharers", "epoch_advance"),
        ),
    ),
    costs={"record": 6, "end_op": 2, "refetch_check": 4},
    optimizable=False,  # hooks are the instrumentation: must all run
    null_hooks=frozenset(),
    sync_model="barrier",
    writer_model="none",
)


@default_registry.register
class RaceDetectProtocol(CachedTableProtocol):
    """Epoch-based happens-before race checker with update semantics."""

    table = RACE_DETECT_TABLE
    spec = ProtocolSpec.from_table(RACE_DETECT_TABLE)

    RECORD_COST = RACE_DETECT_TABLE.cost("record")
    SUMMARY_WORDS = 4

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        n = self.transport.n_procs
        # Dynamic sanitizer, if the runtime carries one: protocol-level
        # race verdicts are folded into its unified report.
        self._checker = getattr(runtime, "checker", None)
        self._epoch = [0] * n
        # per node: rid -> {"r": bool, "w": bool}
        self._touched: list[dict] = [dict() for _ in range(n)]
        # home-side per-epoch aggregation: (rid, epoch) -> {"readers": set, "writers": set}
        self._agg: dict = {}
        #: confirmed races: (epoch, rid, readers, writers)
        self.races: list = []

    # -- guards / instrumentation actions ---------------------------------
    def g_epoch_stale_remote(self, nid: int, handle) -> bool:
        return handle.meta.get("epoch") != self._epoch[nid] and handle.region.home != nid

    def _touch(self, nid: int, handle, kind: str):
        yield Delay(self.RECORD_COST)
        rec = self._touched[nid].setdefault(handle.region.rid, {"r": False, "w": False})
        rec[kind] = True

    def act_mark_epoch(self, nid: int, handle):
        handle.meta["epoch"] = self._epoch[nid]
        return
        yield  # pragma: no cover - makes this a generator

    def act_touch_read(self, nid: int, handle):
        yield from self._touch(nid, handle, "r")

    def act_touch_write(self, nid: int, handle):
        yield from self._touch(nid, handle, "w")

    def act_refetch(self, nid: int, handle):
        """Revalidate once per epoch (data pushed at the previous barrier)."""
        data = yield from self.transport.rpc(
            nid,
            handle.region.home,
            self._on_refetch,
            handle.region.rid,
            payload_words=2,
            category="proto.RaceDetect.refetch",
        )
        np.copyto(handle.data, data)

    def _on_refetch(self, node, src, fut, rid):
        region = self.regions.get(rid)
        self.transport.reply(
            fut,
            region.home_data.copy(),
            payload_words=region.size,
            category="proto.RaceDetect.refetch_data",
        )

    # -- epoch close (the barrier row's action pipeline) ------------------
    def act_ship_summaries(self, nid: int):
        epoch = self._epoch[nid]
        touched = self._touched[nid]
        self._touched[nid] = {}
        pending = len(touched)
        done = Future(name=f"rd:summary@{nid}")
        if pending == 0:
            done.resolve(None)
        state = {"need": pending, "done": done}
        for rid, rec in sorted(touched.items()):
            region = self.regions.get(rid)
            data = handle_data = None
            payload = self.SUMMARY_WORDS
            if rec["w"]:
                copy = self._copies[nid].get(rid)
                if copy is not None:
                    handle_data = np.array(copy.data, copy=True)
                    payload += region.size
            if nid == region.home:
                self._on_summary(
                    self.transport.nodes[nid], nid, rid, epoch, rec["r"], rec["w"], handle_data, state
                )
            else:
                self.transport.post(
                    nid,
                    region.home,
                    self._on_summary,
                    rid,
                    epoch,
                    rec["r"],
                    rec["w"],
                    handle_data,
                    state,
                    payload_words=payload,
                    category="proto.RaceDetect.summary",
                )
        yield done

    def act_close_races(self, nid: int):
        """Homes: detect races, push updates for regions written this epoch."""
        yield from self._close_epoch(nid, self._epoch[nid])

    def act_advance_epoch(self, nid: int):
        self._epoch[nid] += 1
        return
        yield  # pragma: no cover - makes this a generator

    def _on_summary(self, node, src, rid, epoch, read, wrote, data, state):
        agg = self._agg.setdefault((rid, epoch), {"readers": set(), "writers": set()})
        if read:
            agg["readers"].add(src)
        if wrote:
            agg["writers"].add(src)
            if data is not None:
                np.copyto(self.regions.get(rid).home_data, data)
        state["need"] -= 1
        if state["need"] <= 0 and not state["done"].resolved:
            state["done"].resolve(None)

    def _close_epoch(self, nid: int, epoch: int):
        pushes = []
        closed = []
        for (rid, ep), agg in sorted(self._agg.items()):
            if ep != epoch:
                continue
            region = self.regions.get(rid)
            if region.home != nid:
                continue
            closed.append((rid, ep))
            readers = agg["readers"]
            writers = agg["writers"]
            if len(writers) > 1 or (writers and (readers - writers)):
                self.races.append(
                    (epoch, rid, tuple(sorted(readers)), tuple(sorted(writers)))
                )
                self._count("race")
                if self._checker is not None:
                    self._checker.adopt_protocol_race(epoch, rid, readers, writers)
            if writers:
                targets = sorted((readers | writers) - {nid})
                if targets:
                    pushes.append((region, targets))
        for key in closed:
            del self._agg[key]
        if not pushes:
            return
        done = Future(name=f"rd:push@{nid}")
        state = {"need": sum(len(t) for _, t in pushes), "done": done}
        for region, targets in pushes:
            data = region.home_data.copy()
            for t in targets:
                self.transport.post(
                    nid,
                    t,
                    self._on_push,
                    region.rid,
                    data,
                    state,
                    payload_words=region.size,
                    category="proto.RaceDetect.push",
                )
        yield done

    def _on_push(self, node, src, rid, data, state):
        copy = self._copies[node.nid].get(rid)
        if copy is not None:
            np.copyto(copy.data, data)
        self.transport.post(
            node.nid, src, self._on_push_ack, state, payload_words=1,
            category="proto.RaceDetect.push_ack",
        )

    def _on_push_ack(self, node, src, state):
        state["need"] -= 1
        if state["need"] == 0:
            state["done"].resolve(None)
