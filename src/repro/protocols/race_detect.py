"""Data-race detection as a coherence protocol (§2.1).

The paper cites Larus et al.'s LCM data-race checking protocol as the
kind of customization that *requires* full access control: its actions
"can be executed either before or after accesses" and at
synchronization points.  This protocol implements that idea for Ace:

* between two barriers (an *epoch*), every node records which regions
  it read and wrote;
* at the barrier, each node ships its access summary (plus written
  data) to each touched region's home;
* the home crosses the summaries: two writers, or a writer plus a
  foreign reader, in the same epoch is a data race, recorded in the
  space's protocol-private data (§4.1's per-space pointer);
* homes then push fresh values to the epoch's readers, so a race-free
  program computes exactly what it would under static update.

The race report is available as ``protocol.races`` — a sorted list of
``(epoch, rid, readers, writers)`` tuples — and via
:meth:`AceRuntime.space_protocol` lookups in tests and tools.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import ProtocolSpec
from repro.protocols.caching import CachedCopyProtocol
from repro.protocols.registry import default_registry
from repro.sim import Delay, Future


@default_registry.register
class RaceDetectProtocol(CachedCopyProtocol):
    """Epoch-based happens-before race checker with update semantics."""

    spec = ProtocolSpec(
        name="RaceDetect",
        optimizable=False,  # hooks are the instrumentation: must all run
        null_hooks=frozenset(),
        description="records readers/writers per barrier epoch; reports conflicts",
    )

    RECORD_COST = 6
    SUMMARY_WORDS = 4

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        n = self.transport.n_procs
        # Dynamic sanitizer, if the runtime carries one: protocol-level
        # race verdicts are folded into its unified report.
        self._checker = getattr(runtime, "checker", None)
        self._epoch = [0] * n
        # per node: rid -> {"r": bool, "w": bool}
        self._touched: list[dict] = [dict() for _ in range(n)]
        # home-side per-epoch aggregation: (rid, epoch) -> {"readers": set, "writers": set}
        self._agg: dict = {}
        #: confirmed races: (epoch, rid, readers, writers)
        self.races: list = []

    # -- instrumentation hooks ------------------------------------------
    def _touch(self, nid: int, handle, kind: str):
        yield Delay(self.RECORD_COST)
        rec = self._touched[nid].setdefault(handle.region.rid, {"r": False, "w": False})
        rec[kind] = True

    def start_read(self, nid: int, handle):
        # revalidate once per epoch (data pushed at the previous barrier)
        if handle.meta.get("epoch") != self._epoch[nid] and handle.region.home != nid:
            yield Delay(4)
            data = yield from self.transport.rpc(
                nid,
                handle.region.home,
                self._on_refetch,
                handle.region.rid,
                payload_words=2,
                category="proto.RaceDetect.refetch",
            )
            np.copyto(handle.data, data)
        handle.meta["epoch"] = self._epoch[nid]
        yield from self._touch(nid, handle, "r")

    def end_read(self, nid: int, handle):
        yield Delay(2)

    def start_write(self, nid: int, handle):
        handle.meta["epoch"] = self._epoch[nid]
        yield from self._touch(nid, handle, "w")

    def end_write(self, nid: int, handle):
        yield Delay(2)

    def _on_refetch(self, node, src, fut, rid):
        region = self.regions.get(rid)
        self.transport.reply(
            fut,
            region.home_data.copy(),
            payload_words=region.size,
            category="proto.RaceDetect.refetch_data",
        )

    # -- epoch close ------------------------------------------------------
    def barrier(self, nid: int):
        """Ship summaries, rendezvous, aggregate, push updates, advance."""
        epoch = self._epoch[nid]
        touched = self._touched[nid]
        self._touched[nid] = {}
        pending = len(touched)
        done = Future(name=f"rd:summary@{nid}")
        if pending == 0:
            done.resolve(None)
        state = {"need": pending, "done": done}
        for rid, rec in sorted(touched.items()):
            region = self.regions.get(rid)
            data = handle_data = None
            payload = self.SUMMARY_WORDS
            if rec["w"]:
                copy = self._copies[nid].get(rid)
                if copy is not None:
                    handle_data = np.array(copy.data, copy=True)
                    payload += region.size
            if nid == region.home:
                self._on_summary(
                    self.transport.nodes[nid], nid, rid, epoch, rec["r"], rec["w"], handle_data, state
                )
            else:
                self.transport.post(
                    nid,
                    region.home,
                    self._on_summary,
                    rid,
                    epoch,
                    rec["r"],
                    rec["w"],
                    handle_data,
                    state,
                    payload_words=payload,
                    category="proto.RaceDetect.summary",
                )
        yield done
        yield from self.runtime.rendezvous(nid)
        # homes: detect races and push updates for regions written this epoch
        yield from self._close_epoch(nid, epoch)
        yield from self.runtime.rendezvous(nid)
        self._epoch[nid] += 1

    def _on_summary(self, node, src, rid, epoch, read, wrote, data, state):
        agg = self._agg.setdefault((rid, epoch), {"readers": set(), "writers": set()})
        if read:
            agg["readers"].add(src)
        if wrote:
            agg["writers"].add(src)
            if data is not None:
                np.copyto(self.regions.get(rid).home_data, data)
        state["need"] -= 1
        if state["need"] <= 0 and not state["done"].resolved:
            state["done"].resolve(None)

    def _close_epoch(self, nid: int, epoch: int):
        pushes = []
        closed = []
        for (rid, ep), agg in sorted(self._agg.items()):
            if ep != epoch:
                continue
            region = self.regions.get(rid)
            if region.home != nid:
                continue
            closed.append((rid, ep))
            readers = agg["readers"]
            writers = agg["writers"]
            if len(writers) > 1 or (writers and (readers - writers)):
                self.races.append(
                    (epoch, rid, tuple(sorted(readers)), tuple(sorted(writers)))
                )
                self._count("race")
                if self._checker is not None:
                    self._checker.adopt_protocol_race(epoch, rid, readers, writers)
            if writers:
                targets = sorted((readers | writers) - {nid})
                if targets:
                    pushes.append((region, targets))
        for key in closed:
            del self._agg[key]
        if not pushes:
            return
        done = Future(name=f"rd:push@{nid}")
        state = {"need": sum(len(t) for _, t in pushes), "done": done}
        for region, targets in pushes:
            data = region.home_data.copy()
            for t in targets:
                self.transport.post(
                    nid,
                    t,
                    self._on_push,
                    region.rid,
                    data,
                    state,
                    payload_words=region.size,
                    category="proto.RaceDetect.push",
                )
        yield done

    def _on_push(self, node, src, rid, data, state):
        copy = self._copies[node.nid].get(rid)
        if copy is not None:
            np.copyto(copy.data, data)
        self.transport.post(
            node.nid, src, self._on_push_ack, state, payload_words=1,
            category="proto.RaceDetect.push_ack",
        )

    def _on_push_ack(self, node, src, state):
        state["need"] -= 1
        if state["need"] == 0:
            state["done"].resolve(None)
