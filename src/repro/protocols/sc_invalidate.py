"""The default protocol: sequentially-consistent MSI invalidation.

This is what every space runs until the programmer opts into something
else (§3.1: "the default space ... provides a sequentially consistent
invalidation-based protocol").  It delegates to the shared
:class:`~repro.dsm.coherence.CoherenceEngine` instantiated with the Ace
cost table — the "careful redesign of the sequential consistency
protocol" of §5.1.

Registered as **not optimizable**: sequential consistency forbids the
compiler from moving or merging accesses (§4.2, citing Midkiff &
Padua), so only direct-dispatch may touch SC calls — and none of its
hooks are null.

The protocol's state machine is :data:`~repro.dsm.msi.MSI_TABLE` — the
same artifact the engine's three layers derive their constants from
and the model checker verifies.  The class binds the engine's hook
generators directly (the table is interpreted *by the engine*, not by
:class:`~repro.protocols.base.TableProtocol` dispatch), so declaring
it here costs nothing on the access path.
"""

from __future__ import annotations

from repro.dsm.msi import MSI_TABLE
from repro.protocols.base import Protocol, ProtocolSpec
from repro.protocols.registry import default_registry


@default_registry.register
class SCProtocol(Protocol):
    """Sequentially consistent invalidation protocol (the Ace default)."""

    table = MSI_TABLE
    spec = ProtocolSpec.from_table(MSI_TABLE)

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._bind_engine(runtime.sc_engine)

    def _bind_engine(self, engine) -> None:
        """Bind the data-management hooks straight to ``engine``.

        Every hook here is a pure passthrough, so the protocol object
        exposes the engine generators as instance attributes instead of
        wrapper generators: ``yield from protocol.start_read(...)``
        drives the engine frame directly, and each resume of a blocked
        access traverses one generator frame fewer.  Subclasses with
        their own engine (:class:`HwAssistedSCProtocol`) re-bind.
        """
        self._engine = engine
        self.create = engine.create
        self.map = engine.map
        self.unmap = engine.unmap
        self.start_read = engine.start_read
        self.end_read = engine.end_read
        self.start_write = engine.start_write
        self.end_write = engine.end_write

    @property
    def engine(self):
        return self._engine

    def flush_node(self, nid: int):
        """Flush every cached member region home (§3.1's change semantics)."""
        for rid in self.space.regions:
            yield from self._engine.flush(nid, rid)
