"""The default protocol: sequentially-consistent MSI invalidation.

This is what every space runs until the programmer opts into something
else (§3.1: "the default space ... provides a sequentially consistent
invalidation-based protocol").  It delegates to the shared
:class:`~repro.dsm.engine.DirectoryEngine` instantiated with the Ace
cost table — the "careful redesign of the sequential consistency
protocol" of §5.1.

Registered as **not optimizable**: sequential consistency forbids the
compiler from moving or merging accesses (§4.2, citing Midkiff &
Padua), so only direct-dispatch may touch SC calls — and none of its
hooks are null.
"""

from __future__ import annotations

from repro.protocols.base import Protocol, ProtocolSpec
from repro.protocols.registry import default_registry


@default_registry.register
class SCProtocol(Protocol):
    """Sequentially consistent invalidation protocol (the Ace default)."""

    spec = ProtocolSpec(
        name="SC",
        optimizable=False,
        null_hooks=frozenset(),
        description="home-based MSI invalidation; sequentially consistent",
    )

    @property
    def engine(self):
        return self.runtime.sc_engine

    def create(self, nid: int, size: int):
        rid = yield from self.engine.create(nid, size)
        return rid

    def map(self, nid: int, rid: int):
        handle = yield from self.engine.map(nid, rid)
        return handle

    def unmap(self, nid: int, handle):
        yield from self.engine.unmap(nid, handle)

    def start_read(self, nid: int, handle):
        yield from self.engine.start_read(nid, handle)

    def end_read(self, nid: int, handle):
        yield from self.engine.end_read(nid, handle)

    def start_write(self, nid: int, handle):
        yield from self.engine.start_write(nid, handle)

    def end_write(self, nid: int, handle):
        yield from self.engine.end_write(nid, handle)

    def flush_node(self, nid: int):
        """Flush every cached member region home (§3.1's change semantics)."""
        for rid in self.space.regions:
            yield from self.engine.flush(nid, rid)
