"""Shared machinery for custom protocols that keep per-node cached copies.

Most custom protocols (Null, the update family, HomeWrite,
PipelinedWrite) share a shape: regions are fetched whole from their
home on first map and cached locally; the protocols differ in *when* a
cached copy is refreshed or pushed.  :class:`CachedCopyProtocol`
factors out the copy tables, the map fast path, and the home-side
fetch handler; subclasses hook :meth:`_fetch_extra` (home-side
registration at fetch time — e.g. recording a sharer) and
:meth:`_after_fetch` (requester-side install bookkeeping).
"""

from __future__ import annotations

import numpy as np

from repro.memory import RegionCopy
from repro.protocols.base import Protocol, TableProtocol
from repro.sim import Delay


class CachedCopyProtocol(Protocol):
    """Base for protocols with whole-region caching and home-side truth.

    Class attributes subclasses may tune:

    ``ALIAS_HOME``
        If True (default), the home node's copy aliases the canonical
        array, so home writes hit it directly.  Protocols that compute
        write *deltas* (PipelinedWrite) set this False so the home's
        working copy is distinct from the merge target.
    """

    CREATE_COST = 90
    MAP_HIT_COST = 12
    MAP_COLD_COST = 45
    UNMAP_COST = 6
    ALIAS_HOME = True

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._copies: list[dict[int, RegionCopy]] = [dict() for _ in range(self.transport.n_procs)]
        transport = self.transport
        if transport.reliable:
            self._kit = None
            self._rpc = transport.rpc
        else:
            # Lossy fabric: fetches/updates go through the RetryKit and
            # the home dedups sequence numbers (see repro.dsm.faults).
            from repro.dsm.faults import DedupTable, SeenOnce

            self._kit = transport.kit
            self._rpc = self._kit.rpc
            self._dedup = DedupTable(transport, f"proto.{self.spec.name}")
            self._push_seen = SeenOnce(transport)

    # -- data management ----------------------------------------------
    def create(self, nid: int, size: int):
        yield Delay(self.CREATE_COST)
        region = self.regions.alloc(home=nid, size=size)
        self._install(nid, region)
        self._count("create")
        return region.rid

    def map(self, nid: int, rid: int):
        copy = self._copies[nid].get(rid)
        if copy is not None:
            yield Delay(self.MAP_HIT_COST)
            self._count("map_hit")
            copy.mapped = True
            return copy
        yield Delay(self.MAP_COLD_COST)
        region = self.regions.get(rid)
        copy = self._install(nid, region)
        if nid != region.home:
            data, extra = yield from self._rpc(
                nid,
                region.home,
                self._on_fetch,
                rid,
                payload_words=2,  # request is metadata-only; the reply carries data
                category=f"proto.{self.spec.name}.fetch",
            )
            if nid != region.home:
                np.copyto(copy.data, data)
                copy.state = "valid"
                self._after_fetch(nid, copy, extra)
            # else: the home died mid-fetch and this node is the re-homed
            # successor — on_node_dead already made this copy the home
            # alias; the retargeted reply must not demote it to "valid".
        self._count("map_cold")
        copy.mapped = True
        return copy

    def unmap(self, nid: int, handle):
        yield Delay(self.UNMAP_COST)
        handle.mapped = False

    def _install(self, nid: int, region) -> RegionCopy:
        copy = RegionCopy(region, nid)
        if nid == region.home:
            if self.ALIAS_HOME:
                copy.data = region.home_data
            else:
                np.copyto(copy.data, region.home_data)
            copy.state = "home"
        self._copies[nid][region.rid] = copy
        return copy

    # -- home-side fetch (handler context) ------------------------------
    def _on_fetch(self, node, src, fut, rid, seq=None):
        # Idempotent (metadata read + set-add in _fetch_extra), so a
        # retransmitted fetch simply re-replies; the requester's
        # resolve-once gate keeps the first reply.
        region = self.regions.get(rid)
        extra = self._fetch_extra(rid, src)
        self.transport.reply(
            fut,
            (region.home_data.copy(), extra),
            payload_words=region.size,
            category=f"proto.{self.spec.name}.fetch_data",
        )

    def _ack_state(self, state: dict, _value=None) -> None:
        """Shared fan-out ack bookkeeping (reliable push on_ack hook)."""
        state["need"] -= 1
        if state["need"] == 0:
            state["done"].resolve(None)

    def _fetch_extra(self, rid: int, src: int):
        """Home-side hook at fetch time (register sharers, return versions)."""
        return None

    def _after_fetch(self, nid: int, copy: RegionCopy, extra) -> None:
        """Requester-side hook after a fetched copy is installed."""

    # -- crash recovery ---------------------------------------------------
    def _register_recovery(self, manager) -> None:
        super()._register_recovery(manager)
        # A fetch whose home died is retargeted to the region's new home
        # (the handler is idempotent, so a duplicate delivery is safe).
        manager.register_home_categories((f"proto.{self.spec.name}.fetch",), self.regions)

    def on_node_dead(self, dead: int, manager, rehomed: dict) -> None:
        """Base shrink for cached-copy protocols: the dead node's copies
        are gone, and the successor's copy of a re-homed region becomes
        the home copy (home data is the surviving authority for this
        protocol family — homes apply state synchronously)."""
        self._copies[dead].clear()
        for rid, region in rehomed.items():
            copy = self._copies[region.home].get(rid)
            if copy is not None and copy.state != "home":
                if self.ALIAS_HOME:
                    copy.data = region.home_data
                else:
                    np.copyto(copy.data, region.home_data)
                copy.state = "home"

    # -- lifecycle -------------------------------------------------------
    def flush_node(self, nid: int):
        """Default flush: drop this node's non-home copies.

        Correct for every protocol whose home data is kept current
        synchronously; protocols with buffered state override and
        drain it first.
        """
        table = self._copies[nid]
        for rid in list(table):
            if self.regions.get(rid).home != nid:
                del table[rid]
        return
        yield  # pragma: no cover - makes this a generator

    # -- introspection (tests) ---------------------------------------------
    def cached_copy(self, nid: int, rid: int) -> RegionCopy | None:
        return self._copies[nid].get(rid)


class CachedTableProtocol(TableProtocol, CachedCopyProtocol):
    """Cached-copy data management with table-interpreted hook dispatch.

    The MRO runs :class:`CachedCopyProtocol`'s constructor (copy
    tables, reliability kit) before :class:`TableProtocol` compiles the
    hook entry points, so compiled actions may rely on both.  Most
    table-driven library protocols derive from this.
    """

