"""Owned-state (MOESI-style) invalidation protocol with cache-to-cache supply.

The SC table recalls a dirty copy all the way home before any other
node may read it — two region-sized transfers for every
producer/consumer hand-off.  This table adds the classic **owned**
state: when a reader misses on a region whose dirty copy lives at
another node, the home *forwards* the request and the owner supplies
the data directly, downgrading itself ``excl -> owned`` (dirty but
shared, responsible for supplying further readers).  Writes still
serialize through the home with an invalidation fan-out, so the
protocol stays in the paper's invalidation family and verifies under
the same SWMR/freshness invariants as SC — the model checker's
certificate covers the forwarding races (supply vs. queued writes,
owner self-upgrades, deferred forwards) that make owned-state
protocols notoriously easy to get wrong.

Interesting rows, beyond MSI:

* ``excl --fwd_read--> owned`` / ``owned --fwd_read--> owned``: the
  owner answers the forwarded reader directly (``supply``); the home
  stays busy until the reader's ``grant_ack`` records it as a sharer.
* ``owned --invalidate--> invalid`` writes back: the owner is the only
  current copy the home can trust, exactly like ``excl``.
* An owner *upgrading* (``owned`` + sharers elsewhere, then a write)
  takes the wildcard ``start_write`` miss like everyone else, but the
  home answers with ``upgrade_ack`` — shipping home data would hand
  the owner a stale base for its read-modify-write.
* The home's own accesses use the guarded hit rows when the directory
  is quiet and explicit ``fetch_*_home`` rows otherwise, so the home
  alias state never decays into ``shared`` (its copy *is* canonical
  storage).

Reliability: requests ride :class:`~repro.dsm.faults.RetryKit` RPC
with home-side dedup; the owner's supply goes through the dedup
table's recording reply, so a retried ``read_req`` whose supply was
dropped replays the recorded grant instead of re-running the forward.
Invalidations are ack'd posts whose ack *is* the (possibly dirty)
writeback; a deferred invalidation stays unacknowledged — retries keep
it alive — until the open access releases.
"""

from __future__ import annotations

from collections import deque
from functools import partial

import numpy as np

from repro.memory import RegionCopy
from repro.protocols.base import ProtocolSpec, TableProtocol
from repro.protocols.registry import default_registry
from repro.sim import Delay, Future
from repro.spec import ProtocolTable, Transition

OWNED_TABLE = ProtocolTable(
    name="Owned",
    description="MOESI-style ownership: dirty owners supply readers cache-to-cache",
    node_states=("invalid", "shared", "excl", "owned", "home"),
    home_states=("idle", "busy"),
    base_state="invalid",
    transitions=(
        # -- node: access hooks -----------------------------------------
        Transition("node", "shared", "start_read", actions=("hit",)),
        Transition("node", "excl", "start_read", actions=("hit",)),
        Transition("node", "owned", "start_read", actions=("hit",)),
        Transition(
            "node",
            "home",
            "start_read",
            guard="home_idle",
            actions=("hit", "open_home_read"),
            note="home alias reads locally unless a remote owner exists",
        ),
        Transition(
            "node",
            "home",
            "start_read",
            cost=25,
            actions=("fetch_read_home",),
            msg="read_req",
            note="owner elsewhere: the home queues like any reader; its copy stays 'home'",
        ),
        Transition(
            "node",
            "*",
            "start_read",
            next="shared",
            cost=25,
            actions=("fetch_read",),
            msg="read_req",
            effects=("add_sharer", "copy_current"),
        ),
        Transition("node", "excl", "start_write", actions=("hit",)),
        Transition(
            "node",
            "home",
            "start_write",
            guard="home_sole",
            actions=("hit", "open_home_write"),
            note="home alias writes locally unless remote copies exist",
        ),
        Transition(
            "node",
            "home",
            "start_write",
            cost=25,
            actions=("fetch_write_home",),
            msg="write_req",
        ),
        Transition(
            "node",
            "*",
            "start_write",
            next="excl",
            cost=25,
            actions=("fetch_write",),
            msg="write_req",
            effects=("set_owner", "drop_sharer", "copy_current"),
            note="an owned-state upgrade also lands here; the home sends upgrade_ack",
        ),
        Transition("node", "home", "end_read", cost=4, actions=("release", "close_home_read")),
        Transition("node", "*", "end_read", cost=4, actions=("release",), effects=("fire_deferred",)),
        Transition("node", "home", "end_write", cost=4, actions=("release", "close_home_write")),
        Transition("node", "*", "end_write", cost=4, actions=("release",), effects=("fire_deferred",)),
        # -- node: recall receive side ------------------------------------
        Transition(
            "node",
            "excl",
            "invalidate",
            next="invalid",
            actions=("writeback", "ack"),
            msg="inval_ack",
            effects=("write_home",),
        ),
        Transition(
            "node",
            "owned",
            "invalidate",
            next="invalid",
            actions=("writeback", "ack"),
            msg="inval_ack",
            effects=("write_home",),
            note="the owner is the only trusted copy; its data rides the ack",
        ),
        Transition("node", "shared", "invalidate", next="invalid", actions=("ack",), msg="inval_ack"),
        # -- node: forwarded reads (cache-to-cache supply) -----------------
        Transition(
            "node",
            "excl",
            "fwd_read",
            next="owned",
            actions=("supply",),
            msg="supply",
            effects=("add_sharer",),
            note="first forwarded reader downgrades the owner excl -> owned",
        ),
        Transition(
            "node",
            "owned",
            "fwd_read",
            actions=("supply",),
            msg="supply",
            effects=("add_sharer",),
        ),
        # -- home: admission (atomic handler context) ----------------------
        Transition("home", "idle", "read_req", guard="home_writing", actions=("enqueue",)),
        Transition(
            "home",
            "idle",
            "read_req",
            guard="owned_elsewhere",
            next="busy",
            actions=("forward_read",),
            msg="fwd_read",
            note="three-hop read: home forwards, owner supplies, reader grant_acks",
        ),
        Transition(
            "home",
            "idle",
            "read_req",
            next="busy",
            actions=("grant_shared",),
            msg="read_data",
            effects=("add_sharer",),
        ),
        Transition("home", "idle", "write_req", guard="home_open", actions=("enqueue",)),
        Transition(
            "home",
            "idle",
            "write_req",
            guard="copies_elsewhere",
            next="busy",
            actions=("recall_invalidate",),
            msg="invalidate",
        ),
        Transition(
            "home",
            "idle",
            "write_req",
            next="busy",
            actions=("grant_excl",),
            msg="write_data",
            effects=("set_owner",),
        ),
        Transition("home", "busy", "read_req", actions=("enqueue",), note="FIFO; no starvation"),
        Transition("home", "busy", "write_req", actions=("enqueue",), note="FIFO; no starvation"),
        Transition(
            "home",
            "busy",
            "inval_ack",
            guard="acks_remaining",
            actions=("collect_ack",),
        ),
        Transition(
            "home",
            "busy",
            "inval_ack",
            next="idle",
            actions=("collect_ack", "serve_pending", "drain_queue"),
        ),
        Transition(
            "home",
            "busy",
            "grant_ack",
            next="idle",
            actions=("record_sharer", "drain_queue"),
            note="a supplied reader becomes a sharer here (forwarded grants)",
        ),
        Transition(
            "home",
            "idle",
            "flush",
            actions=("accept_flush",),
            msg="flush_ack",
            effects=("write_home", "drop_sharer", "clear_owner"),
        ),
    ),
    costs={"create": 90, "map": 12, "miss": 25, "end_op": 4, "unmap": 6},
    entry_costs={"start_read": 10, "start_write": 10},
    optimizable=False,
    null_hooks=frozenset(),
    sync_model="access",
    writer_model="copy",
)


@default_registry.register
class OwnedProtocol(TableProtocol):
    """MOESI-style owned-state invalidation with forwarding directory."""

    table = OWNED_TABLE
    spec = ProtocolSpec.from_table(OWNED_TABLE)

    CREATE_COST = OWNED_TABLE.cost("create")
    MAP_COST = OWNED_TABLE.cost("map")

    #: Futures that must be granted remote-style even though their
    #: source is the region's home: after re-homing, a survivor can be
    #: suspended in the *remote* fetch epilogue of a request now
    #: addressed to itself (retargeted, re-admitted, or issued from a
    #: remote-state copy of its own region).  A home-style grant would
    #: open hr/hw that the table's remote rows never close.  Immutable
    #: empty default: nothing is ever marked without recovery.
    _remote_self: frozenset = frozenset()

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        n = self.transport.n_procs
        self._copies: list[dict[int, RegionCopy]] = [dict() for _ in range(n)]
        # home-side directory: rid -> entry dict (owner / sharers / busy
        # window / recall-or-forward pending / FIFO queue / the home
        # task's own open accesses)
        self._dir: dict[int, dict] = {}
        # (nid, rid) -> recorded invalidation ack value; present only
        # once the invalidation was *applied* (used to re-ack retries)
        self._inval_ack: dict = {}
        transport = self.transport
        if transport.reliable:
            self._kit = None
            self._rpc = transport.rpc
            self._reply = transport.reply
            self._dedup_admit = lambda src, seq, fut: True
        else:
            from repro.dsm.faults import DedupTable, SeenOnce

            self._kit = transport.kit
            self._rpc = self._kit.rpc
            self._dedup = DedupTable(transport, "proto.Owned")
            self._reply = self._dedup.reply
            self._dedup_admit = self._dedup.admit
            self._seen = SeenOnce(transport)

    # -- lifecycle ---------------------------------------------------------
    def init_space(self, nid: int):
        """Adopt pre-existing regions: base state means current home data
        and no cached copies, so the home seeds only its own alias."""
        for rid in self.space.regions:
            region = self.regions.get(rid)
            if region.home != nid or rid in self._copies[nid]:
                continue
            self._install_home(nid, region)
        return
        yield  # pragma: no cover - makes this a generator

    def flush_node(self, nid: int):
        """Ship dirty copies home and drop everything non-home."""
        for rid in list(self._copies[nid]):
            region = self.regions.get(rid)
            if nid == region.home:
                continue
            copy = self._copies[nid].pop(rid)
            if copy.state in ("excl", "owned"):
                data = np.array(copy.data, copy=True)
                copy.state = "invalid"
                yield from self._rpc(
                    nid,
                    region.home,
                    self._on_flush,
                    rid,
                    data,
                    payload_words=region.size,
                    category="proto.Owned.flush",
                )
            elif copy.state == "shared":
                copy.state = "invalid"
                yield from self._rpc(
                    nid,
                    region.home,
                    self._on_flush,
                    rid,
                    None,
                    payload_words=2,
                    category="proto.Owned.flush",
                )

    # -- data management ---------------------------------------------------
    def create(self, nid: int, size: int):
        yield Delay(self.CREATE_COST)
        region = self.regions.alloc(home=nid, size=size)
        self._install_home(nid, region)
        self._count("create")
        return region.rid

    def map(self, nid: int, rid: int):
        yield Delay(self.MAP_COST)
        copy = self._copies[nid].get(rid)
        if copy is None:
            region = self.regions.get(rid)
            copy = RegionCopy(region, nid)
            copy.meta["use"] = 0
            copy.meta["deferred"] = []
            self._copies[nid][rid] = copy
        copy.mapped = True
        return copy

    def unmap(self, nid: int, handle):
        yield Delay(self.table.cost("unmap"))
        handle.mapped = False

    def _install_home(self, nid: int, region) -> RegionCopy:
        copy = RegionCopy(region, nid)
        copy.data = region.home_data  # the alias IS canonical storage
        copy.state = "home"
        copy.meta["use"] = 0
        copy.meta["deferred"] = []
        self._copies[nid][region.rid] = copy
        self._entry(region.rid)
        return copy

    def _entry(self, rid: int) -> dict:
        ent = self._dir.get(rid)
        if ent is None:
            ent = self._dir[rid] = {
                "owner": None,
                "sharers": set(),
                "busy": False,
                "pending": None,
                "queue": deque(),
                "hr": 0,
                "hw": False,
                # Who a grant window (busy, pending None) is waiting on
                # for its grant_ack — crash recovery clears the window
                # when the grantee dies.
                "grantee": None,
            }
        return ent

    # -- guards (table-referenced) ------------------------------------------
    def g_home_idle(self, nid: int, handle) -> bool:
        ent = self._entry(handle.region.rid)
        return ent["owner"] is None and not ent["busy"]

    def g_home_sole(self, nid: int, handle) -> bool:
        ent = self._entry(handle.region.rid)
        return ent["owner"] is None and not ent["sharers"] and not ent["busy"]

    # -- actions (table-referenced) -------------------------------------------
    def act_hit(self, nid: int, handle):
        handle.meta["use"] += 1
        self._count("hit")
        return
        yield  # pragma: no cover - makes this a generator

    def act_open_home_read(self, nid: int, handle):
        # Runs in the same atomic step as the guard (hit rows charge no
        # row cost), so guard-check and counter update cannot interleave
        # with a remote admission.
        self._entry(handle.region.rid)["hr"] += 1
        return
        yield  # pragma: no cover - makes this a generator

    def act_open_home_write(self, nid: int, handle):
        self._entry(handle.region.rid)["hw"] = True
        return
        yield  # pragma: no cover - makes this a generator

    def act_close_home_read(self, nid: int, handle):
        ent = self._entry(handle.region.rid)
        ent["hr"] -= 1
        self._drain(handle.region.rid)
        return
        yield  # pragma: no cover - makes this a generator

    def act_close_home_write(self, nid: int, handle):
        ent = self._entry(handle.region.rid)
        ent["hw"] = False
        self._drain(handle.region.rid)
        return
        yield  # pragma: no cover - makes this a generator

    def act_fetch_read(self, nid: int, handle):
        self._count("read_miss")
        yield from self._fetch(nid, handle, "r")

    def act_fetch_write(self, nid: int, handle):
        self._count("write_miss")
        yield from self._fetch(nid, handle, "w")

    def act_fetch_read_home(self, nid: int, handle):
        self._count("home_read_wait")
        yield from self._fetch(nid, handle, "r")

    def act_fetch_write_home(self, nid: int, handle):
        self._count("home_write_wait")
        yield from self._fetch(nid, handle, "w")

    def _fetch(self, nid: int, handle, kind: str):
        """Request access from the home; install whatever grant arrives."""
        region = handle.region
        handler = self._on_read_req if kind == "r" else self._on_write_req
        if nid == region.home and (self._kit is None or self._recovery is not None):
            # Reliable fabric (and recovery runs, whose grant style the
            # handlers steer via _remote_self): invoke the handler in
            # place — no wire, no loss.  On a plain lossy fabric the
            # home's own request rides the seq'd self-RPC instead, so a
            # dropped grant/supply is retransmitted and dedup-replayed
            # like any remote request; a bare local future would hang.
            fut = Future(name=f"owned:{kind}req@{nid}")
            if handle.state != "home" and self._recovery is not None:
                # Post-recovery only: a re-homed node fetching from a
                # remote-state copy of its own region.  The table's next
                # state is a remote state, so the grant must be
                # remote-style (data + busy window), not hr/hw.
                self._remote_self.add(fut)
            handler(self.transport.nodes[nid], nid, fut, region.rid)
            val = yield fut
        else:
            val = yield from self._rpc(
                nid,
                region.home,
                handler,
                region.rid,
                payload_words=2,
                category=f"proto.Owned.{'read' if kind == 'r' else 'write'}_req",
            )
        tag, data = val
        if data is not None:
            # read_data / write_data / supply; "upgrade" and "grant"
            # carry no data (the requester's copy is already current)
            np.copyto(handle.data, data)
        if tag != "grant":
            # Close the home's busy window; for forwarded reads this is
            # also what records us as a sharer (record_sharer row).
            self._post_acked(
                nid,
                region.home,
                self._on_grant_ack,
                region.rid,
                payload_words=1,
                category="proto.Owned.grant_ack",
            )
        handle.meta["use"] += 1

    def act_release(self, nid: int, handle):
        handle.meta["use"] -= 1
        if handle.meta["use"] == 0 and handle.meta["deferred"]:
            fire, handle.meta["deferred"] = handle.meta["deferred"], []
            for item in fire:
                if item[0] == "inval":
                    self._apply_invalidate(nid, handle, item[1])
                else:  # ("fwd", requester, rfut)
                    self._supply(nid, handle, item[1], item[2])
        return
        yield  # pragma: no cover - makes this a generator

    # -- reliable plumbing ---------------------------------------------------
    def _post_acked(self, src, dst, handler, *args, payload_words=0, category="", on_ack=None):
        """Ack'd one-way send: RetryKit post when lossy, plain post + an
        explicit future when the fabric is reliable (same handler shape:
        ``(node, src, fut, *args, seq=None)``)."""
        if self._kit is not None:
            return self._kit.post(
                src, dst, handler, *args, payload_words=payload_words, category=category, on_ack=on_ack
            )
        fut = Future(name="owned:" + category)
        if on_ack is not None:
            from repro.dsm.faults import _ack_adapter

            fut.add_callback(partial(_ack_adapter, on_ack))
        self.transport.post(
            src, dst, handler, fut, *args, payload_words=payload_words, category=category
        )
        return fut

    def _first(self, src, seq) -> bool:
        return True if self._kit is None else self._seen.first(src, seq)

    # -- home side: admission (handler context) --------------------------------
    def _on_read_req(self, node, src, fut, rid, seq=None):
        if not self._dedup_admit(src, seq, fut):
            return
        # A fabric request (seq-numbered) from the region's own home only
        # exists after re-homing: grant it remote-style (_remote_self).
        if seq is not None and self._recovery is not None and src == self.regions.get(rid).home:
            self._remote_self.add(fut)
        self._admit(rid, "r", src, fut)

    def _on_write_req(self, node, src, fut, rid, seq=None):
        if not self._dedup_admit(src, seq, fut):
            return
        if seq is not None and self._recovery is not None and src == self.regions.get(rid).home:
            self._remote_self.add(fut)
        self._admit(rid, "w", src, fut)

    def _admit(self, rid, kind, src, fut, queued=False) -> bool:
        """Run the home admission rows; False = not admissible (requeue)."""
        ent = self._entry(rid)
        region = self.regions.get(rid)
        home = region.home
        if ent["busy"]:
            if queued:
                return False
            ent["queue"].append((kind, src, fut))
            return True
        if kind == "r":
            if ent["hw"] and src != home:  # guard: home_writing
                if queued:
                    return False
                ent["queue"].append((kind, src, fut))
                return True
            owner = ent["owner"]
            if owner is not None and owner != src:  # guard: owned_elsewhere
                ent["busy"] = True
                ent["pending"] = {"kind": "f", "src": src, "fut": fut}
                self._count("forward")
                self._post_acked(
                    home,
                    owner,
                    self._on_fwd_read,
                    rid,
                    src,
                    fut,
                    payload_words=2,
                    category="proto.Owned.fwd_read",
                )
                return True
            self._grant_read(rid, ent, src, fut)
            return True
        # kind == "w"
        if (ent["hw"] or ent["hr"] > 0) and src != home:  # guard: home_open
            if queued:
                return False
            ent["queue"].append((kind, src, fut))
            return True
        owner = ent["owner"]
        targets = []
        if owner is not None and owner != src:
            targets.append(owner)
        targets += sorted(x for x in ent["sharers"] if x != src and x not in targets)
        if targets:  # guard: copies_elsewhere
            ent["busy"] = True
            ent["pending"] = {"kind": "w", "src": src, "fut": fut, "need": len(targets)}
            for t in targets:
                self._post_acked(
                    home,
                    t,
                    self._on_invalidate,
                    rid,
                    payload_words=2,
                    category="proto.Owned.invalidate",
                    on_ack=partial(self._collect_ack, rid, t),
                )
            return True
        self._grant_write(rid, ent, src, fut)
        return True

    def _grant_read(self, rid, ent, src, fut) -> None:
        region = self.regions.get(rid)
        if src == region.home and fut not in self._remote_self:
            # The home's own read: no install, no busy window — mark the
            # open access and let the waiting task proceed.
            ent["hr"] += 1
            self._reply(fut, ("grant", None), payload_words=1, category="proto.Owned.home_grant")
            return
        if src == region.home:
            self._remote_self.discard(fut)  # re-homed self-request
        ent["busy"] = True
        ent["grantee"] = src
        ent["sharers"].add(src)
        self._reply(
            fut,
            ("data", region.home_data.copy()),
            payload_words=region.size,
            category="proto.Owned.read_data",
        )

    def _grant_write(self, rid, ent, src, fut) -> None:
        region = self.regions.get(rid)
        if src == region.home:
            if fut not in self._remote_self:
                ent["hw"] = True
                self._reply(
                    fut, ("grant", None), payload_words=1, category="proto.Owned.home_grant"
                )
                return
            self._remote_self.discard(fut)  # re-homed self-request
        # An upgrading sharer — or an owner self-upgrading from owned —
        # keeps its current data; home data would be a stale write base.
        had = src == ent["owner"] or src in ent["sharers"]
        ent["sharers"].discard(src)
        ent["owner"] = src
        ent["busy"] = True
        ent["grantee"] = src
        if had:
            self._reply(fut, ("upgrade", None), payload_words=1, category="proto.Owned.upgrade_ack")
        else:
            self._reply(
                fut,
                ("data", region.home_data.copy()),
                payload_words=region.size,
                category="proto.Owned.write_data",
            )

    def _collect_ack(self, rid, target, value) -> None:
        """One invalidation target acknowledged (ack value = its dirty data)."""
        ent = self._entry(rid)
        pend = ent["pending"]
        if pend is None:
            # Crash recovery canceled this recall (the window was rebuilt
            # at a successor home); absorb the late ack.
            if self._recovery is not None:
                self._recovery.count_stray_ack()
            return
        if value is not None:
            np.copyto(self.regions.get(rid).home_data, np.asarray(value))
        if ent["owner"] == target:
            ent["owner"] = None
        ent["sharers"].discard(target)
        pend["need"] -= 1
        if pend["need"] > 0:
            return
        ent["pending"] = None
        ent["busy"] = False
        if not pend.get("orphan"):
            self._grant_write(rid, ent, pend["src"], pend["fut"])
        if not ent["busy"]:
            self._drain(rid)

    def _on_grant_ack(self, node, src, fut, rid, seq=None):
        self.transport.reply(fut, None, payload_words=1, category="proto.Owned.grant_ack_ok")
        if not self._first(src, seq):
            return
        ent = self._entry(rid)
        if not ent["busy"]:
            return
        pend = ent["pending"]
        if pend is not None and pend["kind"] == "f":
            # record_sharer: the forwarded reader installed its supply
            req = pend["src"]
            if req == self.regions.get(rid).home:
                if pend["fut"] in self._remote_self:
                    self._remote_self.discard(pend["fut"])  # re-homed self-read
                    ent["sharers"].add(req)
                else:
                    ent["hr"] += 1  # the home's own forwarded read opened
            else:
                ent["sharers"].add(req)
        ent["pending"] = None
        ent["busy"] = False
        ent["grantee"] = None
        self._drain(rid)

    def _drain(self, rid) -> None:
        ent = self._entry(rid)
        while not ent["busy"] and ent["queue"]:
            kind, src, fut = ent["queue"].popleft()
            if not self._admit(rid, kind, src, fut, queued=True):
                ent["queue"].appendleft((kind, src, fut))
                return

    def _on_flush(self, node, src, fut, rid, data, seq=None):
        if not self._dedup_admit(src, seq, fut):
            return
        ent = self._entry(rid)
        if ent["owner"] == src:
            ent["owner"] = None
        ent["sharers"].discard(src)
        if data is not None:
            np.copyto(self.regions.get(rid).home_data, np.asarray(data))
        self._reply(fut, None, payload_words=1, category="proto.Owned.flush_ack")

    # -- target side: recalls and forwards (handler context) --------------------
    def _on_invalidate(self, node, src, fut, rid, seq=None):
        nid = node.nid
        key = (nid, rid)
        if not self._first(src, seq):
            # Retransmit: re-ack only if the invalidation was applied;
            # while it is deferred the retry keeps the call alive and
            # the eventual apply sends the one real ack.
            if key in self._inval_ack:
                self.transport.reply(
                    fut, self._inval_ack[key], payload_words=1, category="proto.Owned.inval_ack"
                )
            return
        copy = self._copies[nid].get(rid)
        if copy is None or copy.state == "invalid":
            self._inval_ack[key] = None
            self.transport.reply(fut, None, payload_words=1, category="proto.Owned.inval_ack")
            return
        if copy.meta["use"] > 0:
            self._inval_ack.pop(key, None)
            copy.meta["deferred"].append(("inval", fut))
            return
        self._apply_invalidate(nid, copy, fut)

    def _apply_invalidate(self, nid, copy, fut) -> None:
        region = copy.region
        dirty = copy.state in ("excl", "owned")
        data = np.array(copy.data, copy=True) if dirty else None
        copy.state = "invalid"
        if nid == region.home:
            # Post-recovery only: a recall of the re-homed successor's
            # remote-style copy of its own region returns it to the home
            # alias (its writeback rides the ack like any owner's); the
            # hr/hw admission gate governs the home's accesses from here.
            copy.data = region.home_data
            copy.state = "home"
        self._count("invalidated")
        self._inval_ack[(nid, region.rid)] = data
        self.transport.reply(
            fut,
            data,
            payload_words=region.size if dirty else 1,
            category="proto.Owned.inval_ack",
        )

    def _on_fwd_read(self, node, src, fut, rid, requester, rfut, seq=None):
        # Delivery-ack immediately: the forward's outcome travels on the
        # requester's own reply future, so a retransmit only needs
        # re-acking (the effect below is applied exactly once).
        self.transport.reply(fut, None, payload_words=1, category="proto.Owned.fwd_ack")
        if not self._first(src, seq):
            return
        nid = node.nid
        copy = self._copies[nid].get(rid)
        if copy is None or copy.state == "invalid":
            # Forward/flush race: the home forwarded to us as owner, but
            # our flush (an Ace_ChangeProtocol in progress) already
            # shipped the data home and dropped the copy.  We cannot
            # supply; bounce the miss so the home re-admits the pending
            # read — by then the flush has (or will have) cleared the
            # owner, and admission grants from home data.
            self._count("fwd_miss")
            self._post_acked(
                nid,
                self.regions.get(rid).home,
                self._on_fwd_miss,
                rid,
                requester,
                rfut,
                payload_words=2,
                category="proto.Owned.fwd_miss",
            )
            return
        if copy.meta["use"] > 0:
            copy.meta["deferred"].append(("fwd", requester, rfut))
            return
        self._supply(nid, copy, requester, rfut)

    def _on_fwd_miss(self, node, src, fut, rid, requester, rfut, seq=None):
        """Home side of the forward/flush race: retry admission."""
        self.transport.reply(fut, None, payload_words=1, category="proto.Owned.fwd_miss_ack")
        if not self._first(src, seq):
            return
        ent = self._entry(rid)
        pend = ent["pending"]
        if pend is None or pend.get("kind") != "f" or pend.get("fut") is not rfut:
            return  # window already torn down (e.g. crash recovery rebuilt it)
        ent["pending"] = None
        ent["busy"] = False
        self._admit(rid, "r", requester, rfut)
        if not ent["busy"]:
            self._drain(rid)

    def _supply(self, nid, copy, requester, rfut) -> None:
        """Cache-to-cache transfer; excl owners downgrade to owned."""
        region = copy.region
        data = np.array(copy.data, copy=True)
        if copy.state == "excl":
            copy.state = "owned"
        self._count("supply")
        self._reply(
            rfut, ("supply", data), payload_words=region.size, category="proto.Owned.supply"
        )

    # -- crash recovery ---------------------------------------------------
    def _register_recovery(self, manager) -> None:
        super()._register_recovery(manager)
        self._remote_self = set()
        manager.register_home_categories(
            ("proto.Owned.read_req", "proto.Owned.write_req", "proto.Owned.flush"),
            self.regions,
        )
        manager.register_push_categories(("proto.Owned.invalidate",))
        manager.register_ack_categories(("proto.Owned.grant_ack",))
        manager.register_pending_handler("proto.Owned.fwd_read", "_recover_fwd_read")

    def _recover_fwd_read(self, manager, pend, dead: int) -> None:
        """Sweep handler for an in-flight forward touching the dead node.

        Home died (``src``): neutralize; the re-homed rebuild re-admits
        the requester at the successor.  Owner died (``dst``): the
        supply will never come — prune the dead owner and re-admit the
        requester, who is granted from home data (the owner's dirty
        copy is lost; fail-stop)."""
        kit = self.transport.kit
        kit.pending.pop(pend.seq, None)
        pend.fut._callbacks.clear()
        if pend.src == dead:
            manager.count("abandoned")
            return
        rid, requester, rfut = pend.call_args
        ent = self._entry(rid)
        if ent["owner"] == dead:
            ent["owner"] = None
        ent["sharers"].discard(dead)
        ent["pending"] = None
        ent["busy"] = False
        if requester in manager.dead:
            manager.count("abandoned")
            self._drain(rid)
            return
        manager.count("retargeted")
        self._admit(rid, "r", requester, rfut)

    def on_node_dead(self, dead: int, manager, rehomed: dict) -> None:
        """Directory shrink + re-homed entry reconstruction.

        Runs after the manager's pending sweep, so calls from the dead
        node are neutralized, pushes *to* it are fake-acked (their
        ``_collect_ack`` chains already pruned it from fan-outs), and
        requests parked at a dead home have been retargeted — the
        receiver-side dedup table turns those re-deliveries into no-ops
        whenever the original was admitted, in which case the re-homed
        rebuild below re-admits the original continuation instead.
        """
        for copy in self._copies[dead].values():
            if copy.state in ("excl", "owned"):
                manager.count("lost_dirty")
        self._copies[dead].clear()
        for rid, ent in self._dir.items():
            if ent["queue"]:
                ent["queue"] = deque(item for item in ent["queue"] if item[1] != dead)
            pend = ent["pending"]
            if pend is not None and pend["src"] == dead:
                if pend["kind"] == "w":
                    # Live recall for a dead requester: let the surviving
                    # targets' acks finish the fan-out (writebacks still
                    # land), but skip granting to the dead node.
                    pend["orphan"] = True
                else:
                    # Forwarded read for a dead requester: its grant_ack
                    # will never come; any late supply hits a dead future.
                    ent["pending"] = None
                    ent["busy"] = False
            if ent["busy"] and ent["pending"] is None and ent["grantee"] == dead:
                ent["busy"] = False
                ent["grantee"] = None
            if ent["owner"] == dead:
                ent["owner"] = None
            ent["sharers"].discard(dead)
            if rid in rehomed:
                self._rebuild_rehomed_entry(rehomed[rid], ent, dead)
            if not ent["busy"]:
                self._drain(rid)

    def _rebuild_rehomed_entry(self, region, ent, dead: int) -> None:
        """Reconstruct one entry at the successor home (mirrors the
        coherence engine's rebuild; see repro.dsm.recovery)."""
        from repro.sim.future import _UNSET

        succ = region.home
        rid = region.rid
        # Freshest-writer adoption: a surviving owner's dirty copy is
        # the authoritative version of the region.  An owner still
        # listed whose copy is already invalid applied a recall whose
        # writeback ack died with the home — the recorded inval ack
        # still holds that data.
        if ent["owner"] is not None:
            ocopy = self._copies[ent["owner"]].get(rid)
            if ocopy is not None and ocopy.state in ("excl", "owned"):
                np.copyto(region.home_data, ocopy.data)
            else:
                rec = self._inval_ack.get((ent["owner"], rid))
                if rec is not None:
                    np.copyto(region.home_data, rec)
        # The successor's own copy becomes the home alias.
        scopy = self._copies[succ].get(rid)
        if scopy is None:
            self._install_home(succ, region)
        else:
            if scopy.state in ("excl", "owned"):
                np.copyto(region.home_data, scopy.data)
                if ent["owner"] == succ:
                    ent["owner"] = None
            scopy.data = region.home_data
            scopy.state = "home"
            ent["sharers"].discard(succ)
        # The dead home's own open accesses died with it.
        ent["hr"] = 0
        ent["hw"] = False
        # Live in-flight work at the old home: re-admit requests whose
        # futures are still waiting.  A forward whose supply already
        # landed (fut resolved, grant_ack lost with the old home) only
        # needs its sharer recorded; recall fan-outs from the dead home
        # were fully neutralized by the sweep, so cancel + re-admit is
        # safe.  Grant windows need nothing — owner/sharer state was
        # recorded at grant time.
        reqs = []
        pend = ent["pending"]
        if pend is not None and pend["src"] != dead and not pend.get("orphan"):
            fut = pend.get("fut")
            if fut is not None and fut._value is _UNSET and fut._exc is None:
                reqs.append(("r" if pend["kind"] == "f" else pend["kind"], pend["src"], fut))
            elif pend["kind"] == "f":
                ent["sharers"].add(pend["src"])
        ent["pending"] = None
        ent["busy"] = False
        ent["grantee"] = None
        # Work from the successor itself — re-admitted here or parked on
        # the queue at the old home — must now be granted remote-style:
        # the requester is suspended in the remote fetch epilogue.
        for kind, src, fut in reqs:
            if src == succ:
                self._remote_self.add(fut)
        for item in ent["queue"]:
            if item[1] == succ:
                self._remote_self.add(item[2])
        for kind, src, fut in reqs:
            self._admit(rid, kind, src, fut)

    # -- introspection (tests) ---------------------------------------------
    def cached_copy(self, nid: int, rid: int) -> RegionCopy | None:
        return self._copies[nid].get(rid)

    def directory_entry(self, rid: int) -> dict:
        return self._entry(rid)
