"""Counter protocol: home-serialized read-modify-write regions (TSP, §5.2).

"In TSP, the improved performance is due to better management of
accesses to a counter that is used to assign jobs to processors."

Under the SC default, incrementing a shared counter costs a lock
acquisition, a write miss with invalidation fan-out, and a release —
several round trips.  This protocol folds mutual exclusion into the
access hooks themselves: ``start_write`` is a single round trip that
both serializes at the home *and* returns the current value;
``end_write`` ships the new value back and releases in one one-way
message.  Reads are a single fetch of the current committed value.

Everything still goes through the standard full-access-control
interface — the point of §2.1 is precisely that hooks before/after
accesses suffice to express this.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.protocols.base import ProtocolSpec
from repro.protocols.caching import CachedTableProtocol
from repro.protocols.registry import default_registry
from repro.sim import Future
from repro.spec import ProtocolTable, Transition

COUNTER_TABLE = ProtocolTable(
    name="Counter",
    description="home-serialized read-modify-write; one round trip per access",
    node_states=("invalid", "valid", "home"),
    home_states=("free", "held"),
    base_state="invalid",
    transitions=(
        Transition(
            "node",
            "*",
            "start_write",
            cost=8,
            actions=("acquire_rmw",),
            msg="acquire",
            effects=("serialize_at_home",),
        ),
        Transition(
            "node",
            "*",
            "end_write",
            cost=8,
            actions=("commit",),
            msg="commit",
            effects=("home_current", "release_home"),
        ),
        Transition(
            "node",
            "*",
            "start_read",
            guard="remote",
            cost=6,
            actions=("fetch_value",),
            msg="read",
        ),
        Transition("home", "free", "acquire", next="held", actions=("grant",)),
        Transition("home", "held", "acquire", actions=("queue_request",)),
        Transition("home", "held", "commit", next="free", actions=("apply_commit", "grant_next")),
    ),
    costs={"start_write": 8, "end_write": 8, "read": 6},
    optimizable=False,  # accesses are atomic RMW transactions: no motion
    null_hooks=frozenset({"end_read"}),
    sync_model="access",
    writer_model="serialized",
)


@default_registry.register
class CounterProtocol(CachedTableProtocol):
    """Home-serialized fetch/modify/commit for small hot regions."""

    table = COUNTER_TABLE
    spec = ProtocolSpec.from_table(COUNTER_TABLE)

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        # rid -> {"held_by": nid|None, "queue": deque[(src, fut)]}
        self._locks: dict[int, dict] = {}

    def _lock_state(self, rid: int) -> dict:
        st = self._locks.get(rid)
        if st is None:
            st = {"held_by": None, "queue": deque()}
            self._locks[rid] = st
        return st

    # -- guards / actions (table-referenced) ------------------------------
    def g_remote(self, nid: int, handle) -> bool:
        return handle.region.home != nid

    def act_acquire_rmw(self, nid: int, handle):
        """Acquire the home-side serialization point and fetch fresh data."""
        region = handle.region
        fut = Future(name=f"ctr:{region.rid}@{nid}")
        if nid == region.home:
            self._on_acquire(self.transport.nodes[nid], nid, fut, region.rid)
        else:
            yield from self.transport.request(
                nid,
                region.home,
                self._on_acquire,
                fut,
                region.rid,
                payload_words=2,
                category="proto.Counter.acquire",
            )
        data = yield fut
        if data is not None:
            np.copyto(handle.data, data)
        handle.state = "valid"
        self._count("rmw")

    def act_commit(self, nid: int, handle):
        """Commit the new value and release in a single one-way message."""
        region = handle.region
        if nid == region.home:
            self._on_commit(self.transport.nodes[nid], nid, region.rid, None)
        else:
            yield from self.transport.request(
                nid,
                region.home,
                self._on_commit,
                region.rid,
                np.array(handle.data, copy=True),
                payload_words=region.size,
                category="proto.Counter.commit",
            )

    def act_fetch_value(self, nid: int, handle):
        """Fetch the current committed value (no serialization)."""
        region = handle.region
        data = yield from self.transport.rpc(
            nid,
            region.home,
            self._on_read,
            region.rid,
            payload_words=2,
            category="proto.Counter.read",
        )
        np.copyto(handle.data, data)
        handle.state = "valid"

    # -- home side (handler context) -------------------------------------
    def _on_acquire(self, node, src, fut, rid):
        st = self._lock_state(rid)
        if st["held_by"] is None:
            st["held_by"] = src
            self._grant(rid, src, fut)
        else:
            st["queue"].append((src, fut))
            self._count("contended")

    def _grant(self, rid: int, src: int, fut: Future) -> None:
        region = self.regions.get(rid)
        if src == region.home:
            fut.resolve(None)  # home copy aliases home_data: already current
        else:
            self.transport.reply(
                fut,
                region.home_data.copy(),
                payload_words=region.size,
                category="proto.Counter.grant",
            )

    def _on_commit(self, node, src, rid, data):
        region = self.regions.get(rid)
        st = self._lock_state(rid)
        if data is not None:
            np.copyto(region.home_data, data)
        st["held_by"] = None
        if st["queue"]:
            nxt, fut = st["queue"].popleft()
            st["held_by"] = nxt
            self._grant(rid, nxt, fut)

    def _on_read(self, node, src, fut, rid):
        region = self.regions.get(rid)
        self.transport.reply(
            fut,
            region.home_data.copy(),
            payload_words=region.size,
            category="proto.Counter.read_data",
        )
