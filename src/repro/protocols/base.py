"""Protocol interface: full access control (§2.1, §3.2).

A protocol supplies generator methods for every point the paper's
interface exposes — before/after read, before/after write, barrier,
lock, unlock — plus data management (create/map/unmap) and lifecycle
(init per node, flush to base state for ``Ace_ChangeProtocol``).

The :class:`ProtocolSpec` is the machine-readable registration record
(Figure 1): hook nullness feeds the compiler's direct-dispatch pass
("if a protocol defines certain actions to be null, then calls to that
protocol action can be removed", §4.2), and ``optimizable`` gates the
loop-invariance and merging passes ("the semantics of certain
protocols ... do not allow code motion").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol, runtime_checkable

import numpy as np

from repro.memory import Region
from repro.sim import Delay
from repro.sim.errors import SimulationError
from repro.spec.table import HOOK_EVENTS, KEEP, WILDCARD, ProtocolTable, TableError


class ProtocolMisuse(SimulationError):
    """An application violated the assertions a protocol is built on."""


#: Hook names a spec may declare null, in the order the paper lists them.
HOOK_NAMES = (
    "start_read",
    "end_read",
    "start_write",
    "end_write",
    "barrier",
    "lock",
    "unlock",
)


@dataclass(frozen=True)
class ProtocolSpec:
    """Registration record for one protocol (the Figure 1 script's payload).

    ``hardware=True`` declares that accesses are intercepted by a
    hardware access-control mechanism (Typhoon/FLASH-style, §6): the
    runtime skips its software dispatch charge for such protocols —
    "the actual method of invocation is transparent to the protocol
    designer" (§2.1).
    """

    name: str
    optimizable: bool
    null_hooks: frozenset = field(default_factory=frozenset)
    description: str = ""
    hardware: bool = False
    #: the protocol's write path assumes the writer is the home node
    #: (conformance harnesses pick their writer from this — it is part
    #: of the registration record, not a list tests maintain by hand)
    home_writer: bool = False

    def __post_init__(self):
        unknown = set(self.null_hooks) - set(HOOK_NAMES)
        if unknown:
            raise ValueError(f"unknown hook names in spec {self.name!r}: {sorted(unknown)}")

    def is_null(self, hook: str) -> bool:
        """True if calls to ``hook`` can be removed entirely by the compiler."""
        return hook in self.null_hooks

    def routine_name(self, hook: str) -> str:
        """Derived handler name, e.g. ``Update_StartRead`` (Figure 1)."""
        camel = "".join(part.capitalize() for part in hook.split("_"))
        return f"{self.name}_{camel}"

    @classmethod
    def from_table(cls, table: ProtocolTable) -> "ProtocolSpec":
        """Derive the registration record from a protocol's table.

        The table is the single artifact: optimizability, null hooks,
        the hardware flag, and the write-path constraint all come from
        its metadata, so the registry never needs per-protocol special
        cases and the spec cannot drift from the machine it describes.
        """
        return cls(
            name=table.name,
            optimizable=table.optimizable,
            null_hooks=frozenset(table.null_hooks),
            description=table.description,
            hardware=table.hardware,
            home_writer=table.home_writer,
        )


@runtime_checkable
class Handle(TypingProtocol):
    """What applications get back from ``ACE_MAP``: a view with ``.data``."""

    data: np.ndarray
    region: Region


class Protocol:
    """Base class for protocols: null hooks and common plumbing.

    Subclasses set a class-level ``spec`` and override the hooks they
    need.  All hook methods are generators driven by the owning node's
    task; the base implementations charge nothing and do nothing, so a
    subclass only pays for what it customizes.

    Parameters
    ----------
    runtime:
        The owning :class:`~repro.core.runtime.AceRuntime` (gives access
        to the machine, the region directory, and shared services).
    space:
        The :class:`~repro.core.space.Space` this instance manages.
        One protocol instance per space — "separate instances of the
        same protocol [may] operate on different data structures" (§2.2).
    """

    spec = ProtocolSpec(name="Abstract", optimizable=False)

    def __init__(self, runtime, space):
        self.runtime = runtime
        self.space = space
        self.machine = runtime.machine
        self.transport = runtime.transport
        self.regions = runtime.regions
        # Pre-computed dispatch flag: the access primitives test it on
        # every shared access, so one attribute probe beats two.
        self.soft = not self.spec.hardware
        # Hot-path counter plumbing: the live Counter plus memoized
        # full key strings, so _count skips the f-string and the stats
        # method call on every protocol event.
        self._counts = runtime.transport.stats.counter_ref()
        self._count_keys: dict = {}
        # Crash recovery, when the fabric carries it (None everywhere
        # else — the Transport class default): the protocol registers
        # its message categories for the manager's in-flight sweep and
        # gets on_node_dead() at each death declaration.
        self._recovery = runtime.transport.recovery
        if self._recovery is not None:
            self._register_recovery(self._recovery)

    # -- identity -------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    def _count(self, event: str, n: int = 1) -> None:
        key = self._count_keys.get(event)
        if key is None:
            key = self._count_keys[event] = f"proto.{self.spec.name}.{event}"
        self._counts[key] += n

    # -- lifecycle (collective) ------------------------------------------
    def init_space(self, nid: int):
        """Per-node initialization when the space adopts this protocol."""
        return
        yield  # pragma: no cover - makes this a generator

    def flush_node(self, nid: int):
        """Push this node's cached state to base (home data current, no
        dirty copies) so a successor protocol can take over (§3.1)."""
        return
        yield  # pragma: no cover - makes this a generator

    # -- data management ---------------------------------------------------
    def create(self, nid: int, size: int):
        """Allocate a region of ``size`` words homed at ``nid``; returns rid."""
        raise NotImplementedError

    def map(self, nid: int, rid: int):
        """Translate a region id to a local handle (may fetch data)."""
        raise NotImplementedError

    def unmap(self, nid: int, handle):
        """Release a mapping (cached data may be retained)."""
        return
        yield  # pragma: no cover - makes this a generator

    # -- access hooks -------------------------------------------------------
    def start_read(self, nid: int, handle):
        return
        yield  # pragma: no cover - makes this a generator

    def end_read(self, nid: int, handle):
        return
        yield  # pragma: no cover - makes this a generator

    def start_write(self, nid: int, handle):
        return
        yield  # pragma: no cover - makes this a generator

    def end_write(self, nid: int, handle):
        return
        yield  # pragma: no cover - makes this a generator

    # -- synchronization hooks -----------------------------------------------
    def barrier(self, nid: int):
        """Space barrier: protocol actions plus the global rendezvous."""
        yield from self.runtime.rendezvous(nid)

    def lock(self, nid: int, rid: int):
        yield from self.runtime.locks.acquire(nid, rid)

    def unlock(self, nid: int, rid: int):
        yield from self.runtime.locks.release(nid, rid)

    # -- crash recovery --------------------------------------------------------
    def _register_recovery(self, manager) -> None:
        """Join crash recovery (called at construction when the transport
        carries a :class:`~repro.dsm.recovery.RecoveryManager`).

        Subclasses with their own message protocol override this to
        classify their categories (home/push/ack/custom) for the
        manager's in-flight sweep; the base registration only delivers
        :meth:`on_node_dead`.
        """
        manager.register_protocol(self)

    def on_node_dead(self, dead: int, manager, rehomed: dict) -> None:
        """Membership shrink at a death declaration (plain method, handler
        context): prune the dead node from protocol state and repair
        anything parked on it.  ``rehomed`` maps rid -> region for the
        regions whose home just moved.  Base protocols keep no per-node
        state, so the default is a no-op."""

    # -- helpers for subclasses ------------------------------------------------
    def _charge(self, cycles: int):
        """Generator: charge handler work to the calling task."""
        yield Delay(cycles)


class TableProtocol(Protocol):
    """A protocol whose hook dispatch is *interpreted from its table*.

    Subclasses declare a class-level :class:`~repro.spec.table.ProtocolTable`
    and implement the table's action primitives as ``act_<name>``
    generator methods and its guards as ``g_<name>`` predicates (SLICC
    keeps the same split: tables sequence named code fragments).  At
    construction the node-role rows are compiled into the hook
    entry points, so the state machine — which events are handled in
    which states, what each dispatch charges, which actions fire, what
    state results — comes from the declarative artifact, and only the
    primitive bodies remain imperative.

    Dispatch semantics, chosen to be cycle-compatible with the
    hand-written hooks they replaced:

    1. charge the event's *entry cost* (``table.entry_costs``), if any;
    2. read the copy's current state (after the entry charge — a
       concurrent handler may have moved it during those cycles);
    3. first matching row wins: explicit-state rows in definition
       order, then wildcard rows; a row matches when its guard (if
       any) passes;
    4. charge the row's cost, run its actions in order, then apply the
       ``next`` state.

    Events with no rows inherit the base class's null hooks.  A
    single-row event with no state filter, guard, costs, or state
    change binds its action *directly* as the hook — the interpreter
    adds zero frames on such paths.
    """

    #: the declarative core; subclasses must override.
    table: ProtocolTable | None = None

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._compile_table()

    def _compile_table(self) -> None:
        tbl = self.table
        if tbl is None:
            raise TableError(f"{type(self).__name__} declares no ProtocolTable")
        if tbl.name != self.spec.name:
            raise TableError(
                f"{type(self).__name__}: table {tbl.name!r} does not match spec {self.spec.name!r}"
            )
        for event in HOOK_EVENTS:
            rows = tbl.rows("node", event)
            if not rows:
                continue
            if event == "barrier":
                self.barrier = self._compile_barrier(tbl, rows)
            else:
                setattr(self, event, self._compile_hook(tbl, event, rows))

    def _resolve(self, kind: str, name: str):
        try:
            return getattr(self, kind + name)
        except AttributeError:
            raise TableError(
                f"{self.spec.name}: table references {kind}{name} but "
                f"{type(self).__name__} does not define it"
            ) from None

    def _compile_hook(self, tbl: ProtocolTable, event: str, rows):
        entry = tbl.entry_costs.get(event, 0)
        d_entry = Delay(entry) if entry else None
        ordered = [t for t in rows if t.state != WILDCARD] + [
            t for t in rows if t.state == WILDCARD
        ]
        compiled = tuple(
            (
                None if t.state == WILDCARD else t.state,
                self._resolve("g_", t.guard) if t.guard else None,
                Delay(t.cost) if t.cost else None,
                tuple(self._resolve("act_", a) for a in t.actions),
                None if t.next == KEEP else t.next,
            )
            for t in ordered
        )
        if d_entry is None and len(compiled) == 1:
            state, guard, delay, acts, nxt = compiled[0]
            if state is None and guard is None and delay is None and nxt is None and len(acts) == 1:
                return acts[0]  # the action generator IS the hook

        def hook(nid, handle, _entry=d_entry, _rows=compiled):
            if _entry is not None:
                yield _entry
            st = handle.state
            for state, guard, delay, acts, nxt in _rows:
                if state is not None and st != state:
                    continue
                if guard is not None and not guard(nid, handle):
                    continue
                if delay is not None:
                    yield delay
                for act in acts:
                    yield from act(nid, handle)
                if nxt is not None:
                    handle.state = nxt
                return

        hook.__name__ = f"{tbl.name}_{event}"
        return hook

    def _compile_barrier(self, tbl: ProtocolTable, rows):
        """Barrier rows take no handle: guards/actions are ``(nid)``."""
        entry = tbl.entry_costs.get("barrier", 0)
        d_entry = Delay(entry) if entry else None
        compiled = tuple(
            (
                self._resolve("g_", t.guard) if t.guard else None,
                Delay(t.cost) if t.cost else None,
                tuple(self._resolve("act_", a) for a in t.actions),
            )
            for t in rows
        )
        if d_entry is None and len(compiled) == 1:
            guard, delay, acts = compiled[0]
            if guard is None and delay is None and len(acts) == 1:
                return acts[0]

        def barrier(nid, _entry=d_entry, _rows=compiled):
            if _entry is not None:
                yield _entry
            for guard, delay, acts in _rows:
                if guard is not None and not guard(nid):
                    continue
                if delay is not None:
                    yield delay
                for act in acts:
                    yield from act(nid)
                return

        barrier.__name__ = f"{tbl.name}_barrier"
        return barrier

    # -- common action primitives ------------------------------------------
    def act_rendezvous(self, nid: int):
        """The global barrier rendezvous, as a table-referable action."""
        yield from self.runtime.rendezvous(nid)
