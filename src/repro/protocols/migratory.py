"""Migratory protocol: the (single) copy follows the accessing processor.

One of the "common protocols such as update protocols, migratory
protocols, etc." the paper expects protocol libraries to provide
(§2.1).  Suits data touched by one processor at a time in turn (e.g.
objects passed around a work list): each access moves the region to
the requester in a single three-hop transaction — home lookup,
recall, direct data hand-off — with no sharer lists and no
invalidation fan-out.

Both read and write accesses acquire the region exclusively; the home
serializes competing requests with a busy/queue pair like the SC
directory, and a holder actively using the region defers the hand-off
until its matching end call.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.memory import RegionCopy
from repro.protocols.base import Protocol, ProtocolSpec
from repro.protocols.registry import default_registry
from repro.sim import Delay, Future


@default_registry.register
class MigratoryProtocol(Protocol):
    """Exclusive, migrating single copy per region."""

    spec = ProtocolSpec(
        name="Migratory",
        optimizable=True,
        null_hooks=frozenset({"end_read"}),
        description="single copy migrates to each accessor in turn",
    )

    CREATE_COST = 90
    MAP_COST = 12
    START_HIT_COST = 10
    MISS_COST = 25

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._copies: list[dict[int, RegionCopy]] = [dict() for _ in range(self.transport.n_procs)]
        # home-side: rid -> {"loc": nid, "busy": bool, "queue": deque}
        self._dir: dict[int, dict] = {}

    # -- lifecycle ---------------------------------------------------------
    def init_space(self, nid: int):
        """Adopt pre-existing regions (§3.1): a region handed over in the
        base state has current home data and no cached copies, so the
        home seeds itself as the location of the single copy."""
        for rid in self.space.regions:
            region = self.regions.get(rid)
            if region.home != nid or rid in self._dir:
                continue
            copy = RegionCopy(region, nid)
            copy.data = region.home_data
            copy.state = "valid"
            copy.meta["use"] = 0
            copy.meta["deferred"] = []
            self._copies[nid][rid] = copy
            self._dir[rid] = {"loc": nid, "busy": False, "queue": deque()}
        return
        yield  # pragma: no cover - makes this a generator

    # -- data management -------------------------------------------------
    def create(self, nid: int, size: int):
        yield Delay(self.CREATE_COST)
        region = self.regions.alloc(home=nid, size=size)
        copy = RegionCopy(region, nid)
        copy.data = region.home_data
        copy.state = "valid"
        copy.meta["use"] = 0
        copy.meta["deferred"] = []
        self._copies[nid][region.rid] = copy
        self._dir[region.rid] = {"loc": nid, "busy": False, "queue": deque()}
        return region.rid

    def map(self, nid: int, rid: int):
        copy = self._copies[nid].get(rid)
        if copy is None:
            yield Delay(self.MAP_COST)
            region = self.regions.get(rid)
            copy = RegionCopy(region, nid)
            copy.meta["use"] = 0
            copy.meta["deferred"] = []
            self._copies[nid][rid] = copy
        else:
            yield Delay(self.MAP_COST)
        copy.mapped = True
        return copy

    def unmap(self, nid: int, handle):
        yield Delay(4)
        handle.mapped = False

    # -- accesses ----------------------------------------------------------
    def _acquire(self, nid: int, handle):
        yield Delay(self.START_HIT_COST)
        if handle.state == "valid":
            handle.meta["use"] += 1
            self._count("hit")
            return
        yield Delay(self.MISS_COST)
        self._count("migrate")
        region = handle.region
        fut = Future(name=f"mig:{region.rid}@{nid}")
        if nid == region.home:
            self._on_request(self.transport.nodes[nid], nid, fut, region.rid)
        else:
            yield from self.transport.request(
                nid,
                region.home,
                self._on_request,
                fut,
                region.rid,
                payload_words=2,
                category="proto.Migratory.req",
            )
        data = yield fut
        if data is not None:
            np.copyto(handle.data, data)
        handle.state = "valid"
        handle.meta["use"] += 1

    def start_read(self, nid: int, handle):
        yield from self._acquire(nid, handle)

    def start_write(self, nid: int, handle):
        yield from self._acquire(nid, handle)

    def _release(self, nid: int, handle):
        yield Delay(4)
        handle.meta["use"] -= 1
        if handle.meta["use"] == 0 and handle.meta["deferred"]:
            for args in handle.meta["deferred"]:
                self._hand_off(handle, *args)
            handle.meta["deferred"].clear()

    def end_read(self, nid: int, handle):
        yield from self._release(nid, handle)

    def end_write(self, nid: int, handle):
        yield from self._release(nid, handle)

    # -- home side (handler context) ----------------------------------------
    def _on_request(self, node, src, fut, rid):
        ent = self._dir[rid]
        if ent["busy"]:
            ent["queue"].append((src, fut))
            return
        self._grant(rid, ent, src, fut)

    def _grant(self, rid, ent, src, fut) -> None:
        holder = ent["loc"]
        region = self.regions.get(rid)
        if holder == src:
            # Requester is the recorded holder (possible transiently after a
            # flush); its copy is authoritative — just revalidate.
            fut.resolve(None)
            return
        ent["busy"] = True
        self.transport.post(
            region.home,
            holder,
            self._on_recall,
            rid,
            src,
            fut,
            payload_words=2,
            category="proto.Migratory.recall",
        )

    def _on_recall(self, node, src_home, rid, dest, fut):
        copy = self._copies[node.nid][rid]
        # Defer while the copy is in use, and also while the hand-off data
        # is still in flight to us (the home can learn about a move before
        # the — larger, hence slower — data message lands).
        if copy.meta["use"] > 0 or copy.state != "valid":
            copy.meta["deferred"].append((rid, dest, fut))
            return
        self._hand_off(copy, rid, dest, fut)

    def _hand_off(self, copy: RegionCopy, rid: int, dest: int, fut: Future) -> None:
        region = copy.region
        data = np.array(copy.data, copy=True)
        copy.state = "invalid"
        self.transport.post(
            copy.node,
            dest,
            self._on_data,
            rid,
            data,
            fut,
            payload_words=region.size,
            category="proto.Migratory.data",
        )
        # tell home the new location
        self.transport.post(
            copy.node,
            region.home,
            self._on_moved,
            rid,
            dest,
            payload_words=2,
            category="proto.Migratory.moved",
        )

    def _on_data(self, node, src, rid, data, fut):
        if node.nid == self.regions.get(rid).home:
            np.copyto(self.regions.get(rid).home_data, data)
            fut.resolve(None)
        else:
            fut.resolve(data)

    def _on_moved(self, node, src, rid, dest):
        ent = self._dir[rid]
        ent["loc"] = dest
        ent["busy"] = False
        if ent["queue"]:
            nxt_src, nxt_fut = ent["queue"].popleft()
            self._grant(rid, ent, nxt_src, nxt_fut)

    def flush_node(self, nid: int):
        """Bring every migrated region home so successors find it there."""
        for rid in self.space.regions:
            region = self.regions.get(rid)
            if nid != region.home:
                continue
            ent = self._dir[rid]
            if ent["loc"] == nid or ent["busy"]:
                continue
            handle = self._copies[nid][rid]
            handle.state = "invalid"
            yield from self._acquire(nid, handle)
            yield from self._release(nid, handle)
        # Remote copies are NOT dropped here: the home's recall may still
        # be in flight toward them (change_protocol barriers after every
        # node's flush); they are discarded with this protocol instance.
