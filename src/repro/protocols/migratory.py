"""Migratory protocol: the (single) copy follows the accessing processor.

One of the "common protocols such as update protocols, migratory
protocols, etc." the paper expects protocol libraries to provide
(§2.1).  Suits data touched by one processor at a time in turn (e.g.
objects passed around a work list): each access moves the region to
the requester in a single three-hop transaction — home lookup,
recall, direct data hand-off — with no sharer lists and no
invalidation fan-out.

Both read and write accesses acquire the region exclusively; the home
serializes competing requests with a busy/queue pair like the SC
directory, and a holder actively using the region defers the hand-off
until its matching end call.

Table notes: the per-event *entry* cost (the access-check charge) is
charged before the copy state is examined — a concurrent hand-off may
land during those cycles, so match order is check-then-look.  The
``end_read`` release is deliberately NOT a table row: the seed
registers ``end_read`` null (so the compiler's direct-dispatch pass
may delete those calls) while still shipping a release body for
uncompiled paths — a pre-existing quirk the port preserves verbatim
rather than silently "fixing" (the table validator rejects null hooks
with rows, which is exactly why this one stays imperative).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.memory import RegionCopy
from repro.protocols.base import ProtocolSpec, TableProtocol
from repro.protocols.registry import default_registry
from repro.sim import Delay, Future
from repro.spec import ProtocolTable, Transition

MIGRATORY_TABLE = ProtocolTable(
    name="Migratory",
    description="single copy migrates to each accessor in turn",
    node_states=("invalid", "valid"),
    home_states=("idle", "busy"),
    base_state="invalid",
    transitions=(
        Transition("node", "valid", "start_read", actions=("hit",), effects=("use_open",)),
        Transition(
            "node",
            "*",
            "start_read",
            cost=25,
            actions=("migrate",),
            msg="req",
            effects=("acquire_copy",),
        ),
        Transition("node", "valid", "start_write", actions=("hit",), effects=("use_open",)),
        Transition(
            "node",
            "*",
            "start_write",
            cost=25,
            actions=("migrate",),
            msg="req",
            effects=("acquire_copy",),
        ),
        Transition("node", "*", "end_write", cost=4, actions=("release",), effects=("use_close",)),
        Transition(
            "home",
            "idle",
            "req",
            next="busy",
            actions=("recall_holder",),
            msg="recall",
        ),
        Transition("home", "busy", "req", actions=("queue_request",)),
        Transition(
            "node",
            "valid",
            "recall",
            next="invalid",
            actions=("hand_off",),
            msg="data",
            note="deferred while the copy is in use or data is in flight",
        ),
        Transition("home", "busy", "moved", next="idle", actions=("record_location",)),
    ),
    costs={"create": 90, "map": 12, "start_hit": 10, "miss": 25, "release": 4, "unmap": 4},
    entry_costs={"start_read": 10, "start_write": 10},
    optimizable=True,
    null_hooks=frozenset({"end_read"}),
    sync_model="access",
    writer_model="copy",
)


@default_registry.register
class MigratoryProtocol(TableProtocol):
    """Exclusive, migrating single copy per region."""

    table = MIGRATORY_TABLE
    spec = ProtocolSpec.from_table(MIGRATORY_TABLE)

    CREATE_COST = MIGRATORY_TABLE.cost("create")
    MAP_COST = MIGRATORY_TABLE.cost("map")
    START_HIT_COST = MIGRATORY_TABLE.cost("start_hit")
    MISS_COST = MIGRATORY_TABLE.cost("miss")

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._copies: list[dict[int, RegionCopy]] = [dict() for _ in range(self.transport.n_procs)]
        # home-side: rid -> {"loc": nid, "busy": bool, "queue": deque}
        self._dir: dict[int, dict] = {}

    # -- lifecycle ---------------------------------------------------------
    def init_space(self, nid: int):
        """Adopt pre-existing regions (§3.1): a region handed over in the
        base state has current home data and no cached copies, so the
        home seeds itself as the location of the single copy."""
        for rid in self.space.regions:
            region = self.regions.get(rid)
            if region.home != nid or rid in self._dir:
                continue
            copy = RegionCopy(region, nid)
            copy.data = region.home_data
            copy.state = "valid"
            copy.meta["use"] = 0
            copy.meta["deferred"] = []
            self._copies[nid][rid] = copy
            self._dir[rid] = {"loc": nid, "busy": False, "queue": deque()}
        return
        yield  # pragma: no cover - makes this a generator

    # -- data management -------------------------------------------------
    def create(self, nid: int, size: int):
        yield Delay(self.CREATE_COST)
        region = self.regions.alloc(home=nid, size=size)
        copy = RegionCopy(region, nid)
        copy.data = region.home_data
        copy.state = "valid"
        copy.meta["use"] = 0
        copy.meta["deferred"] = []
        self._copies[nid][region.rid] = copy
        self._dir[region.rid] = {"loc": nid, "busy": False, "queue": deque()}
        return region.rid

    def map(self, nid: int, rid: int):
        copy = self._copies[nid].get(rid)
        if copy is None:
            yield Delay(self.MAP_COST)
            region = self.regions.get(rid)
            copy = RegionCopy(region, nid)
            copy.meta["use"] = 0
            copy.meta["deferred"] = []
            self._copies[nid][rid] = copy
        else:
            yield Delay(self.MAP_COST)
        copy.mapped = True
        return copy

    def unmap(self, nid: int, handle):
        yield Delay(self.table.cost("unmap"))
        handle.mapped = False

    # -- guards / actions (table-referenced) --------------------------------
    def act_hit(self, nid: int, handle):
        handle.meta["use"] += 1
        self._count("hit")
        return
        yield  # pragma: no cover - makes this a generator

    def act_migrate(self, nid: int, handle):
        """Pull the single copy here (three-hop home/recall/hand-off)."""
        self._count("migrate")
        region = handle.region
        fut = Future(name=f"mig:{region.rid}@{nid}")
        if nid == region.home:
            self._on_request(self.transport.nodes[nid], nid, fut, region.rid)
        else:
            yield from self.transport.request(
                nid,
                region.home,
                self._on_request,
                fut,
                region.rid,
                payload_words=2,
                category="proto.Migratory.req",
            )
        data = yield fut
        if data is not None:
            np.copyto(handle.data, data)
        handle.state = "valid"
        handle.meta["use"] += 1

    def act_release(self, nid: int, handle):
        handle.meta["use"] -= 1
        if handle.meta["use"] == 0 and handle.meta["deferred"]:
            for args in handle.meta["deferred"]:
                self._hand_off(handle, *args)
            handle.meta["deferred"].clear()
        return
        yield  # pragma: no cover - makes this a generator

    def end_read(self, nid: int, handle):
        # Registered null (see module docstring) — kept imperative, not
        # a table row, but identical to the end_write release path.
        yield Delay(self.table.cost("release"))
        yield from self.act_release(nid, handle)

    # -- home side (handler context) ----------------------------------------
    def _on_request(self, node, src, fut, rid):
        ent = self._dir[rid]
        if ent["busy"]:
            ent["queue"].append((src, fut))
            return
        self._grant(rid, ent, src, fut)

    def _grant(self, rid, ent, src, fut) -> None:
        holder = ent["loc"]
        region = self.regions.get(rid)
        if holder == src:
            # Requester is the recorded holder (possible transiently after a
            # flush); its copy is authoritative — just revalidate.
            fut.resolve(None)
            return
        ent["busy"] = True
        self.transport.post(
            region.home,
            holder,
            self._on_recall,
            rid,
            src,
            fut,
            payload_words=2,
            category="proto.Migratory.recall",
        )

    def _on_recall(self, node, src_home, rid, dest, fut):
        copy = self._copies[node.nid][rid]
        # Defer while the copy is in use, and also while the hand-off data
        # is still in flight to us (the home can learn about a move before
        # the — larger, hence slower — data message lands).
        if copy.meta["use"] > 0 or copy.state != "valid":
            copy.meta["deferred"].append((rid, dest, fut))
            return
        self._hand_off(copy, rid, dest, fut)

    def _hand_off(self, copy: RegionCopy, rid: int, dest: int, fut: Future) -> None:
        region = copy.region
        data = np.array(copy.data, copy=True)
        copy.state = "invalid"
        self.transport.post(
            copy.node,
            dest,
            self._on_data,
            rid,
            data,
            fut,
            payload_words=region.size,
            category="proto.Migratory.data",
        )
        # tell home the new location
        self.transport.post(
            copy.node,
            region.home,
            self._on_moved,
            rid,
            dest,
            payload_words=2,
            category="proto.Migratory.moved",
        )

    def _on_data(self, node, src, rid, data, fut):
        if node.nid == self.regions.get(rid).home:
            np.copyto(self.regions.get(rid).home_data, data)
            fut.resolve(None)
        else:
            fut.resolve(data)

    def _on_moved(self, node, src, rid, dest):
        ent = self._dir[rid]
        ent["loc"] = dest
        ent["busy"] = False
        if ent["queue"]:
            nxt_src, nxt_fut = ent["queue"].popleft()
            self._grant(rid, ent, nxt_src, nxt_fut)

    def flush_node(self, nid: int):
        """Bring every migrated region home so successors find it there."""
        for rid in self.space.regions:
            region = self.regions.get(rid)
            if nid != region.home:
                continue
            ent = self._dir[rid]
            if ent["loc"] == nid or ent["busy"]:
                continue
            handle = self._copies[nid][rid]
            handle.state = "invalid"
            yield from self.start_read(nid, handle)
            yield from self.end_read(nid, handle)
        # Remote copies are NOT dropped here: the home's recall may still
        # be in flight toward them (change_protocol barriers after every
        # node's flush); they are discarded with this protocol instance.
