"""Buffered update protocol — built from the §6 building blocks.

Fills the gap between the two update protocols the paper evaluates:
``DynamicUpdate`` propagates on *every* write (low latency, chatty) and
``StaticUpdate`` pushes at barriers but only homes may write.  Here
*any* node may write; writes buffer locally, and the node's barrier
hook ships each written region once — whole-region, last-writer-wins —
to its home, which forwards to the sharers.  The application asserts a
single writer per region per epoch (checked at the home: concurrent
epoch writers raise).

Implementation-wise this protocol is deliberately thin: sharer
tracking, fan-out acking, and version bookkeeping all come from
:mod:`repro.protocols.blocks`, and the table is three rows.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import ProtocolMisuse, ProtocolSpec
from repro.protocols.blocks import AckCollector, SharerDirectory, VersionTable
from repro.protocols.caching import CachedTableProtocol
from repro.protocols.registry import default_registry
from repro.sim import Future
from repro.spec import ProtocolTable, Transition

BUFFERED_UPDATE_TABLE = ProtocolTable(
    name="BufferedUpdate",
    description="writes buffered locally; one push per dirty region per barrier",
    node_states=("invalid", "valid", "home"),
    home_states=("idle",),
    base_state="invalid",
    transitions=(
        Transition(
            "node",
            "*",
            "end_write",
            cost=4,
            actions=("mark_dirty",),
            effects=("mark_dirty",),
        ),
        Transition(
            "node",
            "*",
            "barrier",
            actions=("ship_dirty", "rendezvous", "advance_epoch"),
            msg="update",
            effects=("write_home", "push_sharers", "epoch_advance"),
        ),
        Transition(
            "home",
            "idle",
            "update",
            actions=("check_epoch_writer", "apply_update", "fan_out"),
            msg="push",
            note="one writer per region per epoch (misuse otherwise)",
        ),
    ),
    costs={"end_write": 4},
    optimizable=True,
    null_hooks=frozenset({"start_read", "end_read", "start_write"}),
    sync_model="barrier",
    writer_model="epoch",
)


@default_registry.register
class BufferedUpdateProtocol(CachedTableProtocol):
    """Any-writer batched updates, shipped once per barrier epoch."""

    table = BUFFERED_UPDATE_TABLE
    spec = ProtocolSpec.from_table(BUFFERED_UPDATE_TABLE)

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        n = self.transport.n_procs
        self._dirty: list[set] = [set() for _ in range(n)]
        self._sharers = SharerDirectory()
        self._versions = VersionTable()
        self._acks = AckCollector(self.machine, name="BufferedUpdate")
        # home-side: rid -> epoch version of last accepted write
        self._last_writer: dict = {}
        self._epoch = [0] * n

    def _fetch_extra(self, rid: int, src: int):
        self._sharers.register(rid, src)
        return None

    # -- actions (table-referenced) ---------------------------------------
    def act_mark_dirty(self, nid: int, handle):
        self._dirty[nid].add(handle.region.rid)
        return
        yield  # pragma: no cover - makes this a generator

    def act_ship_dirty(self, nid: int):
        """Ship dirty regions to their homes and drain the acks."""
        dirty = sorted(self._dirty[nid])
        self._dirty[nid].clear()
        epoch = self._epoch[nid]
        done = Future(name=f"bu:ship@{nid}")
        state = {"need": len(dirty), "done": done}
        if not dirty:
            done.resolve(None)
        for rid in dirty:
            region = self.regions.get(rid)
            copy = self._copies[nid][rid]
            data = np.array(copy.data, copy=True)
            if nid == region.home:
                self._on_update(self.transport.nodes[nid], nid, rid, epoch, data, state)
            else:
                self.transport.post(
                    nid,
                    region.home,
                    self._on_update,
                    rid,
                    epoch,
                    data,
                    state,
                    payload_words=region.size,
                    category="proto.BufferedUpdate.update",
                )
        yield done

    def act_advance_epoch(self, nid: int):
        self._epoch[nid] += 1
        return
        yield  # pragma: no cover - makes this a generator

    # -- home side (handler context) -------------------------------------
    def _on_update(self, node, src, rid, epoch, data, state):
        key = (rid, epoch)
        prev = self._last_writer.get(key)
        if prev is not None and prev != src:
            raise ProtocolMisuse(
                f"BufferedUpdate: nodes {prev} and {src} both wrote region {rid} "
                f"in epoch {epoch}; this protocol asserts one writer per epoch"
            )
        self._last_writer[key] = src
        region = self.regions.get(rid)
        np.copyto(region.home_data, data)
        self._versions.bump(rid)
        targets = self._sharers.sharers(rid, exclude=(src, region.home))
        fanout = self._acks.fan_out(
            region.home,
            targets,
            self._on_push,
            rid,
            data,
            payload_words=region.size,
            category="proto.BufferedUpdate.push",
        )
        fanout.add_callback(lambda _: self._acks.ack(state))

    def _on_push(self, node, src, rid, data, state):
        copy = self._copies[node.nid].get(rid)
        if copy is not None:
            np.copyto(copy.data, data)
        self._acks.post_ack(node.nid, src, state, category="proto.BufferedUpdate.push_ack")
