"""Home-write protocol: only a region's creator writes it (BSC, §5.2).

"For BSC, we take advantage of the fact that data are written only by
the processors that created them."  With a single known writer there
is nothing to invalidate and no ownership to move: the home writes
locally and bumps a version number; readers cache whole regions and
revalidate with a metadata round trip instead of participating in an
invalidation protocol.

The paper found the improvement marginal because the default protocol
already bulk-transfers whole regions (user-specified granularity) —
the only savings are the removed ownership/invalidation messages.
This implementation reproduces exactly that balance: reads trade SC's
invalidation fan-out for cheap version checks.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import ProtocolMisuse, ProtocolSpec
from repro.protocols.caching import CachedTableProtocol
from repro.protocols.registry import default_registry
from repro.spec import ProtocolTable, Transition

HOME_WRITE_TABLE = ProtocolTable(
    name="HomeWrite",
    description="only the home writes; readers bulk-fetch and version-check",
    node_states=("invalid", "valid", "home"),
    home_states=("idle",),
    base_state="invalid",
    transitions=(
        Transition(
            "node",
            "*",
            "start_read",
            guard="remote",
            cost=10,
            actions=("revalidate",),
            msg="check",
            effects=("version_check",),
        ),
        Transition(
            "node",
            "*",
            "start_write",
            guard="remote",
            actions=("reject_remote_write",),
            note="creators own their data; remote writes are misuse",
        ),
        Transition(
            "node",
            "*",
            "end_write",
            cost=4,
            actions=("bump_version",),
            effects=("version_bump",),
        ),
    ),
    costs={"check": 10, "end_write": 4},
    optimizable=True,
    null_hooks=frozenset({"end_read"}),
    home_writer=True,
    sync_model="access",
    writer_model="home",
)


@default_registry.register
class HomeWriteProtocol(CachedTableProtocol):
    """Single-writer-at-home; readers revalidate cached copies by version."""

    table = HOME_WRITE_TABLE
    spec = ProtocolSpec.from_table(HOME_WRITE_TABLE)

    CHECK_COST = HOME_WRITE_TABLE.cost("check")

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._versions: dict[int, int] = {}

    def _fetch_extra(self, rid: int, src: int):
        return self._versions.get(rid, 0)

    def _after_fetch(self, nid: int, copy, extra) -> None:
        copy.meta["version"] = extra

    # -- guards / actions (table-referenced) ------------------------------
    def g_remote(self, nid: int, handle) -> bool:
        return handle.region.home != nid

    def act_reject_remote_write(self, nid: int, handle):
        raise ProtocolMisuse(
            f"HomeWrite: node {nid} wrote region {handle.region.rid} homed at "
            f"{handle.region.home}; this protocol asserts creators own their data"
        )
        yield  # pragma: no cover - makes this a generator

    def act_bump_version(self, nid: int, handle):
        rid = handle.region.rid
        self._versions[rid] = self._versions.get(rid, 0) + 1
        return
        yield  # pragma: no cover - makes this a generator

    def act_revalidate(self, nid: int, handle):
        """Version round trip; refetch the whole region when stale."""
        region = handle.region
        current = yield from self.transport.rpc(
            nid,
            region.home,
            self._on_check,
            region.rid,
            handle.meta.get("version", -1),
            payload_words=2,
            category="proto.HomeWrite.check",
        )
        if current is not None:
            version, data = current
            np.copyto(handle.data, data)
            handle.meta["version"] = version
            handle.state = "valid"
            self._count("refetch")
        else:
            self._count("revalidate_hit")

    # -- home side (handler context) -------------------------------------
    def _on_check(self, node, src, fut, rid, reader_version):
        version = self._versions.get(rid, 0)
        if version == reader_version:
            self.transport.reply(fut, None, payload_words=1, category="proto.HomeWrite.ok")
        else:
            region = self.regions.get(rid)
            self.transport.reply(
                fut,
                (version, region.home_data.copy()),
                payload_words=region.size,
                category="proto.HomeWrite.data",
            )
