"""Home-write protocol: only a region's creator writes it (BSC, §5.2).

"For BSC, we take advantage of the fact that data are written only by
the processors that created them."  With a single known writer there
is nothing to invalidate and no ownership to move: the home writes
locally and bumps a version number; readers cache whole regions and
revalidate with a metadata round trip instead of participating in an
invalidation protocol.

The paper found the improvement marginal because the default protocol
already bulk-transfers whole regions (user-specified granularity) —
the only savings are the removed ownership/invalidation messages.
This implementation reproduces exactly that balance: reads trade SC's
invalidation fan-out for cheap version checks.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import ProtocolMisuse, ProtocolSpec
from repro.protocols.caching import CachedCopyProtocol
from repro.protocols.registry import default_registry
from repro.sim import Delay


@default_registry.register
class HomeWriteProtocol(CachedCopyProtocol):
    """Single-writer-at-home; readers revalidate cached copies by version."""

    spec = ProtocolSpec(
        name="HomeWrite",
        optimizable=True,
        null_hooks=frozenset({"end_read"}),
        description="only the home writes; readers bulk-fetch and version-check",
        home_writer=True,
    )

    CHECK_COST = 10

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._versions: dict[int, int] = {}

    def _fetch_extra(self, rid: int, src: int):
        return self._versions.get(rid, 0)

    def _after_fetch(self, nid: int, copy, extra) -> None:
        copy.meta["version"] = extra

    def start_write(self, nid: int, handle):
        if handle.region.home != nid:
            raise ProtocolMisuse(
                f"HomeWrite: node {nid} wrote region {handle.region.rid} homed at "
                f"{handle.region.home}; this protocol asserts creators own their data"
            )
        return
        yield  # pragma: no cover - makes this a generator

    def end_write(self, nid: int, handle):
        yield Delay(4)
        rid = handle.region.rid
        self._versions[rid] = self._versions.get(rid, 0) + 1

    def start_read(self, nid: int, handle):
        region = handle.region
        if nid == region.home:
            return
        yield Delay(self.CHECK_COST)
        current = yield from self.transport.rpc(
            nid,
            region.home,
            self._on_check,
            region.rid,
            handle.meta.get("version", -1),
            payload_words=2,
            category="proto.HomeWrite.check",
        )
        if current is not None:
            version, data = current
            np.copyto(handle.data, data)
            handle.meta["version"] = version
            handle.state = "valid"
            self._count("refetch")
        else:
            self._count("revalidate_hit")

    # -- home side (handler context) -------------------------------------
    def _on_check(self, node, src, fut, rid, reader_version):
        version = self._versions.get(rid, 0)
        if version == reader_version:
            self.transport.reply(fut, None, payload_words=1, category="proto.HomeWrite.ok")
        else:
            region = self.regions.get(rid)
            self.transport.reply(
                fut,
                (version, region.home_data.copy()),
                payload_words=region.size,
                category="proto.HomeWrite.data",
            )
