"""Self-invalidation / self-downgrade protocol (the "Mending Fences" family).

The invalidation protocols keep copies coherent *eagerly*: the home
tracks every sharer and recalls copies when a writer shows up.  The
self-invalidation family inverts the responsibility — each node damages
its **own** copies at synchronization points, so the home needs no
sharer lists, no recall fan-out, and no busy windows:

* **write self-downgrade**: ``end_write`` ships the region home
  synchronously (the writer waits for the ack), so canonical data is
  always current and the writer's copy downgrades itself from
  "dirty" to "clean readable" the moment the write completes;
* **barrier self-invalidate**: entering a barrier, a node invalidates
  every non-home copy it holds; whatever it touches next epoch is
  re-fetched from the (current) home.

The application contract is the data-race-free one the family assumes:
one writer per region per barrier epoch, readers synchronized by the
barrier.  The home *checks* the contract (concurrent epoch writers
raise :class:`~repro.protocols.base.ProtocolMisuse`) — that is the
entire directory.

The table carries ``sync_model="barrier"`` / ``writer_model="epoch"``,
which routes the model checker to its barrier-epoch machine: reads must
observe at least everything published by the last barrier.  Dropping
the ``writeback_home`` action or the ``self_invalidate`` action from
the table makes the checker report a stale read — see
``tests/verify/test_modelcheck.py``.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import ProtocolMisuse, ProtocolSpec
from repro.protocols.caching import CachedTableProtocol
from repro.protocols.registry import default_registry
from repro.spec import ProtocolTable, Transition

SELF_INVALIDATE_TABLE = ProtocolTable(
    name="SelfInvalidate",
    description="self-invalidate at barriers; writes self-downgrade via synchronous write-back",
    node_states=("invalid", "valid", "home"),
    home_states=("idle",),
    base_state="invalid",
    transitions=(
        # -- reads: hit on any resident copy, refetch otherwise ----------
        Transition("node", "valid", "start_read", actions=("hit",)),
        Transition("node", "home", "start_read", actions=("hit",)),
        Transition(
            "node",
            "*",
            "start_read",
            next="valid",
            cost=25,
            actions=("fetch",),
            msg="fetch",
            effects=("copy_current",),
            note="self-invalidated copy revalidates from the always-current home",
        ),
        # -- writes: same shape; epoch discipline replaces exclusivity ---
        Transition("node", "valid", "start_write", actions=("hit",)),
        Transition("node", "home", "start_write", actions=("hit",)),
        Transition(
            "node",
            "*",
            "start_write",
            next="valid",
            cost=25,
            actions=("fetch",),
            msg="fetch",
            effects=("copy_current",),
        ),
        # -- write self-downgrade: home is current before the write ends --
        Transition(
            "node",
            "*",
            "end_write",
            cost=4,
            actions=("writeback_home",),
            msg="wb",
            effects=("write_home", "epoch_writer"),
            note="synchronous: the writer waits for the home's ack",
        ),
        # -- barrier self-invalidate ---------------------------------------
        Transition(
            "node",
            "*",
            "barrier",
            actions=("self_invalidate", "rendezvous", "advance_epoch"),
            effects=("drop_copies", "epoch_advance"),
            note="each node damages its own copies; no fan-out, no sharer lists",
        ),
        # -- the whole directory: an epoch-writer assertion ----------------
        Transition(
            "home",
            "idle",
            "wb",
            actions=("check_epoch_writer", "apply_writeback"),
            msg="wb_ack",
            note="one writer per region per epoch (ProtocolMisuse otherwise)",
        ),
    ),
    costs={"fetch": 25, "end_write": 4},
    entry_costs={"start_read": 6, "start_write": 6},
    optimizable=True,
    null_hooks=frozenset({"end_read"}),
    sync_model="barrier",
    writer_model="epoch",
)


@default_registry.register
class SelfInvalidateProtocol(CachedTableProtocol):
    """Barrier-triggered self-invalidation with write self-downgrade."""

    table = SELF_INVALIDATE_TABLE
    spec = ProtocolSpec.from_table(SELF_INVALIDATE_TABLE)

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        n = self.transport.n_procs
        self._epoch = [0] * n
        # The directory, in its entirety: (rid, epoch) -> writer nid.
        self._epoch_writer: dict = {}

    # -- actions (table-referenced) ---------------------------------------
    def act_hit(self, nid: int, handle):
        self._count("hit")
        return
        yield  # pragma: no cover - makes this a generator

    def act_fetch(self, nid: int, handle):
        """Revalidate a self-invalidated copy from the home."""
        self._count("refetch")
        region = handle.region
        data, _extra = yield from self._rpc(
            nid,
            region.home,
            self._on_fetch,
            region.rid,
            payload_words=2,
            category="proto.SelfInvalidate.fetch",
        )
        np.copyto(handle.data, data)

    def act_writeback_home(self, nid: int, handle):
        """Ship the written region home and wait for the ack."""
        region = handle.region
        epoch = self._epoch[nid]
        if nid == region.home:
            # The home copy aliases canonical storage: the data is
            # already in place, only the epoch contract is checked.
            self._note_writer(region.rid, epoch, nid)
            return
        self._count("writeback")
        data = np.array(handle.data, copy=True)
        yield from self._rpc(
            nid,
            region.home,
            self._on_writeback,
            region.rid,
            epoch,
            data,
            payload_words=region.size,
            category="proto.SelfInvalidate.wb",
        )

    def act_self_invalidate(self, nid: int):
        """Invalidate every non-home copy this node holds."""
        dropped = 0
        for rid, copy in self._copies[nid].items():
            if self.regions.get(rid).home != nid and copy.state != "invalid":
                copy.state = "invalid"
                dropped += 1
        if dropped:
            self._count("self_invalidate", dropped)
        return
        yield  # pragma: no cover - makes this a generator

    def act_advance_epoch(self, nid: int):
        self._epoch[nid] += 1
        return
        yield  # pragma: no cover - makes this a generator

    # -- home side (handler context) --------------------------------------
    def _note_writer(self, rid: int, epoch: int, src: int) -> None:
        key = (rid, epoch)
        prev = self._epoch_writer.get(key)
        if prev is not None and prev != src:
            raise ProtocolMisuse(
                f"SelfInvalidate: nodes {prev} and {src} both wrote region {rid} "
                f"in epoch {epoch}; this protocol asserts one writer per epoch"
            )
        self._epoch_writer[key] = src

    def _on_writeback(self, node, src, fut, rid, epoch, data, seq=None):
        # A late duplicate of an old epoch's write-back must not clobber
        # newer canonical data, so retransmits are dedup'd, not re-run.
        if self._kit is not None and not self._dedup.admit(src, seq, fut):
            return
        self._note_writer(rid, epoch, src)
        np.copyto(self.regions.get(rid).home_data, data)
        reply = self.transport.reply if self._kit is None else self._dedup.reply
        reply(fut, None, payload_words=1, category="proto.SelfInvalidate.wb_ack")

    # flush_node: the inherited default (drop non-home copies) is exact —
    # write self-downgrade keeps home data current synchronously, so
    # there is never buffered dirty state to drain.
