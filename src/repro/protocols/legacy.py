"""Frozen hand-written protocol implementations (differential oracle).

The table-driven port (ROADMAP item 4) rewrote every shipped protocol's
hook dispatch as a :class:`~repro.spec.table.ProtocolTable` interpreted
by :class:`~repro.protocols.base.TableProtocol`.  This module preserves
the pre-port generator classes **verbatim** and registers them in a
separate :data:`legacy_registry`, so the differential-oracle test
(``tests/protocols/test_table_oracle.py``) can run the same programs
under both registries and assert bit-identical simulated cycles,
results, and protocol counters:

    run_spmd(prog)                               # table-driven library
    run_spmd(prog, registry=legacy_registry)     # this module

The classes here are snapshots, not shared code: they must NOT import
from the (now table-driven) protocol modules, only from the stable
infrastructure (``base``, ``caching``, ``blocks``, ``repro.dsm``).
Their specs are field-identical to the shipped ones, so the compiler
makes the same direct-dispatch and deletion decisions for both
registries and any cycle difference is attributable to the port alone.
"""

from __future__ import annotations

from collections import deque
from functools import partial

import numpy as np

from repro.dsm import CoherenceEngine, DSMCosts
from repro.memory import RegionCopy
from repro.protocols.base import Protocol, ProtocolMisuse, ProtocolSpec
from repro.protocols.blocks import AckCollector, SharerDirectory, VersionTable
from repro.protocols.caching import CachedCopyProtocol
from repro.protocols.registry import ProtocolRegistry
from repro.sim import Delay, Future

#: The oracle registry: same names, pre-port implementations.
legacy_registry = ProtocolRegistry()


@legacy_registry.register
class LegacySCProtocol(Protocol):
    """Sequentially consistent invalidation protocol (pre-port snapshot)."""

    spec = ProtocolSpec(
        name="SC",
        optimizable=False,
        null_hooks=frozenset(),
        description="home-based MSI invalidation; sequentially consistent",
    )

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._bind_engine(runtime.sc_engine)

    def _bind_engine(self, engine) -> None:
        self._engine = engine
        self.create = engine.create
        self.map = engine.map
        self.unmap = engine.unmap
        self.start_read = engine.start_read
        self.end_read = engine.end_read
        self.start_write = engine.start_write
        self.end_write = engine.end_write

    @property
    def engine(self):
        return self._engine

    def flush_node(self, nid: int):
        for rid in self.space.regions:
            yield from self._engine.flush(nid, rid)


#: the hardware unit checks access tags in a couple of cycles; the
#: software-only miss machinery is unchanged from the Ace SC table.
LEGACY_HW_SC_COSTS = DSMCosts(
    create=100,
    map_hit=2,
    map_cold=60,
    map_needs_lookup=False,
    unmap=2,
    start_hit=2,
    start_miss=45,
    end_op=1,
    dir_handler=40,
    inval_handler=32,
    flush=40,
)


@legacy_registry.register
class LegacyHwAssistedSCProtocol(LegacySCProtocol):
    """SC with hardware access checks (pre-port snapshot)."""

    spec = ProtocolSpec(
        name="HwSC",
        optimizable=False,
        null_hooks=frozenset(),
        description="SC invalidation; hit-path checks done by hardware access control",
        hardware=True,
    )

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._bind_engine(
            CoherenceEngine(
                runtime.transport, runtime.regions, LEGACY_HW_SC_COSTS, stats_prefix="ace.hwsc"
            )
        )


@legacy_registry.register
class LegacyNullProtocol(CachedCopyProtocol):
    """No coherence: local data stays local; remote reads get a snapshot."""

    spec = ProtocolSpec(
        name="Null",
        optimizable=True,
        null_hooks=frozenset({"start_read", "end_read", "end_write"}),
        description="no coherence actions; remote writes are protocol misuse",
        home_writer=True,
    )

    def start_write(self, nid: int, handle):
        if handle.region.home != nid:
            raise ProtocolMisuse(
                f"Null protocol: node {nid} wrote region {handle.region.rid} "
                f"homed at {handle.region.home}; the null protocol asserts "
                "writes are home-local"
            )
        return
        yield  # pragma: no cover - makes this a generator


@legacy_registry.register
class LegacyDynamicUpdateProtocol(CachedCopyProtocol):
    """Write-through-with-multicast update protocol (pre-port snapshot)."""

    spec = ProtocolSpec(
        name="DynamicUpdate",
        optimizable=True,
        null_hooks=frozenset({"start_read", "end_read", "start_write"}),
        description="writes propagated to all sharers after each write",
    )

    END_WRITE_COST = 20
    APPLY_COST = 15

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._sharers: dict[int, set[int]] = {}

    def _fetch_extra(self, rid: int, src: int):
        self._sharers.setdefault(rid, set()).add(src)
        return None

    def end_write(self, nid: int, handle):
        region = handle.region
        yield Delay(self.END_WRITE_COST)
        self._count("propagate")
        data = np.array(handle.data, copy=True)
        if nid == region.home:
            done = Future(name=f"du:{region.rid}@{nid}")
            self._fan_out(region, data, exclude=nid, done=done)
            yield done
        else:
            yield from self._rpc(
                nid,
                region.home,
                self._on_update,
                region.rid,
                data,
                payload_words=region.size,
                category="proto.DynamicUpdate.update",
            )

    def _on_update(self, node, src, fut, rid, data, seq=None):
        if self._kit is not None and not self._dedup.admit(src, seq, fut):
            return
        reply = self.transport.reply if self._kit is None else self._dedup.reply
        region = self.regions.get(rid)
        np.copyto(region.home_data, data)
        done = Future(name=f"du:{rid}@home")
        done.add_callback(
            lambda _: reply(fut, None, payload_words=1, category="proto.DynamicUpdate.update_ack")
        )
        self._fan_out(region, data, exclude=src, done=done)

    def _fan_out(self, region, data, exclude: int, done: Future) -> None:
        targets = sorted(self._sharers.get(region.rid, set()) - {exclude, region.home})
        if not targets:
            done.resolve(None)
            return
        state = {"need": len(targets), "done": done}
        if self._kit is not None:
            for t in targets:
                self._kit.post(
                    region.home,
                    t,
                    self._on_apply_r,
                    region.rid,
                    data,
                    payload_words=region.size,
                    category="proto.DynamicUpdate.push",
                    on_ack=partial(self._ack_state, state),
                )
            return
        for t in targets:
            self.transport.post(
                region.home,
                t,
                self._on_apply,
                region.rid,
                data,
                state,
                payload_words=region.size,
                category="proto.DynamicUpdate.push",
            )

    def _on_apply(self, node, src, rid, data, state):
        copy = self._copies[node.nid].get(rid)
        if copy is not None:
            np.copyto(copy.data, data)
            copy.state = "valid"
        self.transport.post(
            node.nid,
            src,
            self._on_apply_ack,
            state,
            payload_words=1,
            category="proto.DynamicUpdate.push_ack",
        )

    def _on_apply_r(self, node, src, fut, rid, data, seq=None):
        if self._push_seen.first(src, seq):
            copy = self._copies[node.nid].get(rid)
            if copy is not None:
                np.copyto(copy.data, data)
                copy.state = "valid"
        self.transport.reply(fut, None, payload_words=1, category="proto.DynamicUpdate.push_ack")

    def _on_apply_ack(self, node, src, state):
        state["need"] -= 1
        if state["need"] == 0:
            state["done"].resolve(None)


@legacy_registry.register
class LegacyStaticUpdateProtocol(CachedCopyProtocol):
    """Falsafi-style static update (pre-port snapshot)."""

    spec = ProtocolSpec(
        name="StaticUpdate",
        optimizable=True,
        null_hooks=frozenset({"start_read", "end_read", "start_write"}),
        description="sharer lists built at first map; homes push updates at barriers",
        home_writer=True,
    )

    END_WRITE_COST = 8
    PUSH_SETUP_COST = 12

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._sharers: dict[int, set[int]] = {}
        self._dirty: list[set[int]] = [set() for _ in range(self.transport.n_procs)]

    def _fetch_extra(self, rid: int, src: int):
        self._sharers.setdefault(rid, set()).add(src)
        return None

    def end_write(self, nid: int, handle):
        region = handle.region
        if region.home != nid:
            raise ProtocolMisuse(
                f"StaticUpdate: node {nid} wrote region {region.rid} homed at "
                f"{region.home}; this protocol asserts producers own their regions"
            )
        yield Delay(self.END_WRITE_COST)
        self._dirty[nid].add(region.rid)

    def barrier(self, nid: int):
        dirty = sorted(self._dirty[nid])
        self._dirty[nid].clear()
        pushes = []
        for rid in dirty:
            region = self.regions.get(rid)
            targets = sorted(self._sharers.get(rid, ()))
            if not targets:
                continue
            pushes.append((region, targets))
        if pushes:
            yield Delay(self.PUSH_SETUP_COST)
            done = Future(name=f"su:barrier@{nid}")
            state = {"need": sum(len(t) for _, t in pushes), "done": done}
            for region, targets in pushes:
                data = region.home_data.copy()
                self._count("push", len(targets))
                for t in targets:
                    if self._kit is not None:
                        self._kit.post(
                            nid,
                            t,
                            self._on_push_r,
                            region.rid,
                            data,
                            payload_words=region.size,
                            category="proto.StaticUpdate.push",
                            on_ack=partial(self._ack_state, state),
                        )
                    else:
                        self.transport.post(
                            nid,
                            t,
                            self._on_push,
                            region.rid,
                            data,
                            state,
                            payload_words=region.size,
                            category="proto.StaticUpdate.push",
                        )
            yield done
        yield from self.runtime.rendezvous(nid)

    def _on_push(self, node, src, rid, data, state):
        copy = self._copies[node.nid].get(rid)
        if copy is not None:
            np.copyto(copy.data, data)
            copy.state = "valid"
        self.transport.post(
            node.nid,
            src,
            self._on_push_ack,
            state,
            payload_words=1,
            category="proto.StaticUpdate.push_ack",
        )

    def _on_push_ack(self, node, src, state):
        state["need"] -= 1
        if state["need"] == 0:
            state["done"].resolve(None)

    def _on_push_r(self, node, src, fut, rid, data, seq=None):
        if self._push_seen.first(src, seq):
            copy = self._copies[node.nid].get(rid)
            if copy is not None:
                np.copyto(copy.data, data)
                copy.state = "valid"
        self.transport.reply(fut, None, payload_words=1, category="proto.StaticUpdate.push_ack")


@legacy_registry.register
class LegacyMigratoryProtocol(Protocol):
    """Exclusive, migrating single copy per region (pre-port snapshot)."""

    spec = ProtocolSpec(
        name="Migratory",
        optimizable=True,
        null_hooks=frozenset({"end_read"}),
        description="single copy migrates to each accessor in turn",
    )

    CREATE_COST = 90
    MAP_COST = 12
    START_HIT_COST = 10
    MISS_COST = 25

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._copies: list[dict[int, RegionCopy]] = [dict() for _ in range(self.transport.n_procs)]
        self._dir: dict[int, dict] = {}

    def init_space(self, nid: int):
        for rid in self.space.regions:
            region = self.regions.get(rid)
            if region.home != nid or rid in self._dir:
                continue
            copy = RegionCopy(region, nid)
            copy.data = region.home_data
            copy.state = "valid"
            copy.meta["use"] = 0
            copy.meta["deferred"] = []
            self._copies[nid][rid] = copy
            self._dir[rid] = {"loc": nid, "busy": False, "queue": deque()}
        return
        yield  # pragma: no cover - makes this a generator

    def create(self, nid: int, size: int):
        yield Delay(self.CREATE_COST)
        region = self.regions.alloc(home=nid, size=size)
        copy = RegionCopy(region, nid)
        copy.data = region.home_data
        copy.state = "valid"
        copy.meta["use"] = 0
        copy.meta["deferred"] = []
        self._copies[nid][region.rid] = copy
        self._dir[region.rid] = {"loc": nid, "busy": False, "queue": deque()}
        return region.rid

    def map(self, nid: int, rid: int):
        copy = self._copies[nid].get(rid)
        if copy is None:
            yield Delay(self.MAP_COST)
            region = self.regions.get(rid)
            copy = RegionCopy(region, nid)
            copy.meta["use"] = 0
            copy.meta["deferred"] = []
            self._copies[nid][rid] = copy
        else:
            yield Delay(self.MAP_COST)
        copy.mapped = True
        return copy

    def unmap(self, nid: int, handle):
        yield Delay(4)
        handle.mapped = False

    def _acquire(self, nid: int, handle):
        yield Delay(self.START_HIT_COST)
        if handle.state == "valid":
            handle.meta["use"] += 1
            self._count("hit")
            return
        yield Delay(self.MISS_COST)
        self._count("migrate")
        region = handle.region
        fut = Future(name=f"mig:{region.rid}@{nid}")
        if nid == region.home:
            self._on_request(self.transport.nodes[nid], nid, fut, region.rid)
        else:
            yield from self.transport.request(
                nid,
                region.home,
                self._on_request,
                fut,
                region.rid,
                payload_words=2,
                category="proto.Migratory.req",
            )
        data = yield fut
        if data is not None:
            np.copyto(handle.data, data)
        handle.state = "valid"
        handle.meta["use"] += 1

    def start_read(self, nid: int, handle):
        yield from self._acquire(nid, handle)

    def start_write(self, nid: int, handle):
        yield from self._acquire(nid, handle)

    def _release(self, nid: int, handle):
        yield Delay(4)
        handle.meta["use"] -= 1
        if handle.meta["use"] == 0 and handle.meta["deferred"]:
            for args in handle.meta["deferred"]:
                self._hand_off(handle, *args)
            handle.meta["deferred"].clear()

    def end_read(self, nid: int, handle):
        yield from self._release(nid, handle)

    def end_write(self, nid: int, handle):
        yield from self._release(nid, handle)

    def _on_request(self, node, src, fut, rid):
        ent = self._dir[rid]
        if ent["busy"]:
            ent["queue"].append((src, fut))
            return
        self._grant(rid, ent, src, fut)

    def _grant(self, rid, ent, src, fut) -> None:
        holder = ent["loc"]
        region = self.regions.get(rid)
        if holder == src:
            fut.resolve(None)
            return
        ent["busy"] = True
        self.transport.post(
            region.home,
            holder,
            self._on_recall,
            rid,
            src,
            fut,
            payload_words=2,
            category="proto.Migratory.recall",
        )

    def _on_recall(self, node, src_home, rid, dest, fut):
        copy = self._copies[node.nid][rid]
        if copy.meta["use"] > 0 or copy.state != "valid":
            copy.meta["deferred"].append((rid, dest, fut))
            return
        self._hand_off(copy, rid, dest, fut)

    def _hand_off(self, copy: RegionCopy, rid: int, dest: int, fut: Future) -> None:
        region = copy.region
        data = np.array(copy.data, copy=True)
        copy.state = "invalid"
        self.transport.post(
            copy.node,
            dest,
            self._on_data,
            rid,
            data,
            fut,
            payload_words=region.size,
            category="proto.Migratory.data",
        )
        self.transport.post(
            copy.node,
            region.home,
            self._on_moved,
            rid,
            dest,
            payload_words=2,
            category="proto.Migratory.moved",
        )

    def _on_data(self, node, src, rid, data, fut):
        if node.nid == self.regions.get(rid).home:
            np.copyto(self.regions.get(rid).home_data, data)
            fut.resolve(None)
        else:
            fut.resolve(data)

    def _on_moved(self, node, src, rid, dest):
        ent = self._dir[rid]
        ent["loc"] = dest
        ent["busy"] = False
        if ent["queue"]:
            nxt_src, nxt_fut = ent["queue"].popleft()
            self._grant(rid, ent, nxt_src, nxt_fut)

    def flush_node(self, nid: int):
        for rid in self.space.regions:
            region = self.regions.get(rid)
            if nid != region.home:
                continue
            ent = self._dir[rid]
            if ent["loc"] == nid or ent["busy"]:
                continue
            handle = self._copies[nid][rid]
            handle.state = "invalid"
            yield from self._acquire(nid, handle)
            yield from self._release(nid, handle)


@legacy_registry.register
class LegacyHomeWriteProtocol(CachedCopyProtocol):
    """Single-writer-at-home with version revalidation (pre-port snapshot)."""

    spec = ProtocolSpec(
        name="HomeWrite",
        optimizable=True,
        null_hooks=frozenset({"end_read"}),
        description="only the home writes; readers bulk-fetch and version-check",
        home_writer=True,
    )

    CHECK_COST = 10

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._versions: dict[int, int] = {}

    def _fetch_extra(self, rid: int, src: int):
        return self._versions.get(rid, 0)

    def _after_fetch(self, nid: int, copy, extra) -> None:
        copy.meta["version"] = extra

    def start_write(self, nid: int, handle):
        if handle.region.home != nid:
            raise ProtocolMisuse(
                f"HomeWrite: node {nid} wrote region {handle.region.rid} homed at "
                f"{handle.region.home}; this protocol asserts creators own their data"
            )
        return
        yield  # pragma: no cover - makes this a generator

    def end_write(self, nid: int, handle):
        yield Delay(4)
        rid = handle.region.rid
        self._versions[rid] = self._versions.get(rid, 0) + 1

    def start_read(self, nid: int, handle):
        region = handle.region
        if nid == region.home:
            return
        yield Delay(self.CHECK_COST)
        current = yield from self.transport.rpc(
            nid,
            region.home,
            self._on_check,
            region.rid,
            handle.meta.get("version", -1),
            payload_words=2,
            category="proto.HomeWrite.check",
        )
        if current is not None:
            version, data = current
            np.copyto(handle.data, data)
            handle.meta["version"] = version
            handle.state = "valid"
            self._count("refetch")
        else:
            self._count("revalidate_hit")

    def _on_check(self, node, src, fut, rid, reader_version):
        version = self._versions.get(rid, 0)
        if version == reader_version:
            self.transport.reply(fut, None, payload_words=1, category="proto.HomeWrite.ok")
        else:
            region = self.regions.get(rid)
            self.transport.reply(
                fut,
                (version, region.home_data.copy()),
                payload_words=region.size,
                category="proto.HomeWrite.data",
            )


@legacy_registry.register
class LegacyCounterProtocol(CachedCopyProtocol):
    """Home-serialized fetch/modify/commit (pre-port snapshot)."""

    spec = ProtocolSpec(
        name="Counter",
        optimizable=False,
        null_hooks=frozenset({"end_read"}),
        description="home-serialized read-modify-write; one round trip per access",
    )

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._locks: dict[int, dict] = {}

    def _lock_state(self, rid: int) -> dict:
        st = self._locks.get(rid)
        if st is None:
            st = {"held_by": None, "queue": deque()}
            self._locks[rid] = st
        return st

    def start_write(self, nid: int, handle):
        region = handle.region
        yield Delay(8)
        fut = Future(name=f"ctr:{region.rid}@{nid}")
        if nid == region.home:
            self._on_acquire(self.transport.nodes[nid], nid, fut, region.rid)
        else:
            yield from self.transport.request(
                nid,
                region.home,
                self._on_acquire,
                fut,
                region.rid,
                payload_words=2,
                category="proto.Counter.acquire",
            )
        data = yield fut
        if data is not None:
            np.copyto(handle.data, data)
        handle.state = "valid"
        self._count("rmw")

    def end_write(self, nid: int, handle):
        region = handle.region
        yield Delay(8)
        if nid == region.home:
            self._on_commit(self.transport.nodes[nid], nid, region.rid, None)
        else:
            yield from self.transport.request(
                nid,
                region.home,
                self._on_commit,
                region.rid,
                np.array(handle.data, copy=True),
                payload_words=region.size,
                category="proto.Counter.commit",
            )

    def start_read(self, nid: int, handle):
        region = handle.region
        if nid == region.home:
            return
        yield Delay(6)
        data = yield from self.transport.rpc(
            nid,
            region.home,
            self._on_read,
            region.rid,
            payload_words=2,
            category="proto.Counter.read",
        )
        np.copyto(handle.data, data)
        handle.state = "valid"

    def _on_acquire(self, node, src, fut, rid):
        st = self._lock_state(rid)
        if st["held_by"] is None:
            st["held_by"] = src
            self._grant(rid, src, fut)
        else:
            st["queue"].append((src, fut))
            self._count("contended")

    def _grant(self, rid: int, src: int, fut: Future) -> None:
        region = self.regions.get(rid)
        if src == region.home:
            fut.resolve(None)
        else:
            self.transport.reply(
                fut,
                region.home_data.copy(),
                payload_words=region.size,
                category="proto.Counter.grant",
            )

    def _on_commit(self, node, src, rid, data):
        region = self.regions.get(rid)
        st = self._lock_state(rid)
        if data is not None:
            np.copyto(region.home_data, data)
        st["held_by"] = None
        if st["queue"]:
            nxt, fut = st["queue"].popleft()
            st["held_by"] = nxt
            self._grant(rid, nxt, fut)

    def _on_read(self, node, src, fut, rid):
        region = self.regions.get(rid)
        self.transport.reply(
            fut,
            region.home_data.copy(),
            payload_words=region.size,
            category="proto.Counter.read_data",
        )


@legacy_registry.register
class LegacyPipelinedWriteProtocol(CachedCopyProtocol):
    """Accumulating pipelined writes (pre-port snapshot)."""

    spec = ProtocolSpec(
        name="PipelinedWrite",
        optimizable=True,
        null_hooks=frozenset({"end_read"}),
        description="delta writes pipelined to home; drained at barriers",
    )

    ALIAS_HOME = False
    SNAPSHOT_COST = 6
    DELTA_COST = 12

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._phase = [0] * self.transport.n_procs
        self._outstanding = [0] * self.transport.n_procs
        self._drain_futs: list[Future | None] = [None] * self.transport.n_procs

    def start_read(self, nid: int, handle):
        region = handle.region
        if region.home == nid:
            if handle.meta.get("phase") != self._phase[nid]:
                yield Delay(4)
                np.copyto(handle.data, region.home_data)
                handle.meta["phase"] = self._phase[nid]
            return
        if handle.meta.get("phase") == self._phase[nid]:
            return
        yield Delay(4)
        data = yield from self.transport.rpc(
            nid,
            region.home,
            self._on_refetch,
            region.rid,
            payload_words=2,
            category="proto.PipelinedWrite.refetch",
        )
        np.copyto(handle.data, data)
        handle.meta["phase"] = self._phase[nid]
        self._count("refetch")

    def _on_refetch(self, node, src, fut, rid):
        region = self.regions.get(rid)
        self.transport.reply(
            fut,
            region.home_data.copy(),
            payload_words=region.size,
            category="proto.PipelinedWrite.refetch_data",
        )

    def _after_fetch(self, nid: int, copy, extra) -> None:
        copy.meta["phase"] = self._phase[nid]

    def start_write(self, nid: int, handle):
        yield Delay(self.SNAPSHOT_COST)
        depth = handle.meta.get("wdepth", 0)
        handle.meta["wdepth"] = depth + 1
        if depth > 0:
            return
        if handle.meta.get("phase") != self._phase[nid]:
            yield from self.start_read(nid, handle)
        handle.meta["snapshot"] = np.array(handle.data, copy=True)

    def end_write(self, nid: int, handle):
        yield Delay(self.DELTA_COST)
        depth = handle.meta.get("wdepth", 0) - 1
        handle.meta["wdepth"] = max(depth, 0)
        if depth > 0:
            return
        snapshot = handle.meta.pop("snapshot", None)
        if snapshot is None:
            snapshot = np.zeros_like(handle.data)
        delta = handle.data - snapshot
        region = handle.region
        self._outstanding[nid] += 1
        self._count("delta")
        if nid == region.home:
            region.home_data += delta
            self._ack(nid)
        else:
            yield from self.transport.request(
                nid,
                region.home,
                self._on_delta,
                region.rid,
                delta,
                nid,
                payload_words=region.size,
                category="proto.PipelinedWrite.delta",
            )

    def _on_delta(self, node, src, rid, delta, writer):
        region = self.regions.get(rid)
        region.home_data += delta
        self.transport.post(
            node.nid,
            writer,
            self._on_delta_ack,
            writer,
            payload_words=1,
            category="proto.PipelinedWrite.delta_ack",
        )

    def _on_delta_ack(self, node, src, writer):
        self._ack(writer)

    def _ack(self, nid: int) -> None:
        self._outstanding[nid] -= 1
        if self._outstanding[nid] == 0 and self._drain_futs[nid] is not None:
            fut = self._drain_futs[nid]
            self._drain_futs[nid] = None
            fut.resolve(None)

    def barrier(self, nid: int):
        yield from self._drain(nid)
        yield from self.runtime.rendezvous(nid)
        self._phase[nid] += 1
        for copy in self._copies[nid].values():
            if copy.region.home == nid:
                np.copyto(copy.data, copy.region.home_data)

    def _drain(self, nid: int):
        if self._outstanding[nid] > 0:
            fut = Future(name=f"pw:drain@{nid}")
            self._drain_futs[nid] = fut
            yield fut

    def flush_node(self, nid: int):
        yield from self._drain(nid)
        yield from self.runtime.rendezvous(nid)
        self._copies[nid] = {
            rid: c for rid, c in self._copies[nid].items() if c.region.home == nid
        }


@legacy_registry.register
class LegacyRaceDetectProtocol(CachedCopyProtocol):
    """Epoch-based race checker (pre-port snapshot)."""

    spec = ProtocolSpec(
        name="RaceDetect",
        optimizable=False,
        null_hooks=frozenset(),
        description="records readers/writers per barrier epoch; reports conflicts",
    )

    RECORD_COST = 6
    SUMMARY_WORDS = 4

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        n = self.transport.n_procs
        self._checker = getattr(runtime, "checker", None)
        self._epoch = [0] * n
        self._touched: list[dict] = [dict() for _ in range(n)]
        self._agg: dict = {}
        self.races: list = []

    def _touch(self, nid: int, handle, kind: str):
        yield Delay(self.RECORD_COST)
        rec = self._touched[nid].setdefault(handle.region.rid, {"r": False, "w": False})
        rec[kind] = True

    def start_read(self, nid: int, handle):
        if handle.meta.get("epoch") != self._epoch[nid] and handle.region.home != nid:
            yield Delay(4)
            data = yield from self.transport.rpc(
                nid,
                handle.region.home,
                self._on_refetch,
                handle.region.rid,
                payload_words=2,
                category="proto.RaceDetect.refetch",
            )
            np.copyto(handle.data, data)
        handle.meta["epoch"] = self._epoch[nid]
        yield from self._touch(nid, handle, "r")

    def end_read(self, nid: int, handle):
        yield Delay(2)

    def start_write(self, nid: int, handle):
        handle.meta["epoch"] = self._epoch[nid]
        yield from self._touch(nid, handle, "w")

    def end_write(self, nid: int, handle):
        yield Delay(2)

    def _on_refetch(self, node, src, fut, rid):
        region = self.regions.get(rid)
        self.transport.reply(
            fut,
            region.home_data.copy(),
            payload_words=region.size,
            category="proto.RaceDetect.refetch_data",
        )

    def barrier(self, nid: int):
        epoch = self._epoch[nid]
        touched = self._touched[nid]
        self._touched[nid] = {}
        pending = len(touched)
        done = Future(name=f"rd:summary@{nid}")
        if pending == 0:
            done.resolve(None)
        state = {"need": pending, "done": done}
        for rid, rec in sorted(touched.items()):
            region = self.regions.get(rid)
            data = handle_data = None
            payload = self.SUMMARY_WORDS
            if rec["w"]:
                copy = self._copies[nid].get(rid)
                if copy is not None:
                    handle_data = np.array(copy.data, copy=True)
                    payload += region.size
            if nid == region.home:
                self._on_summary(
                    self.transport.nodes[nid], nid, rid, epoch, rec["r"], rec["w"], handle_data, state
                )
            else:
                self.transport.post(
                    nid,
                    region.home,
                    self._on_summary,
                    rid,
                    epoch,
                    rec["r"],
                    rec["w"],
                    handle_data,
                    state,
                    payload_words=payload,
                    category="proto.RaceDetect.summary",
                )
        yield done
        yield from self.runtime.rendezvous(nid)
        yield from self._close_epoch(nid, epoch)
        yield from self.runtime.rendezvous(nid)
        self._epoch[nid] += 1

    def _on_summary(self, node, src, rid, epoch, read, wrote, data, state):
        agg = self._agg.setdefault((rid, epoch), {"readers": set(), "writers": set()})
        if read:
            agg["readers"].add(src)
        if wrote:
            agg["writers"].add(src)
            if data is not None:
                np.copyto(self.regions.get(rid).home_data, data)
        state["need"] -= 1
        if state["need"] <= 0 and not state["done"].resolved:
            state["done"].resolve(None)

    def _close_epoch(self, nid: int, epoch: int):
        pushes = []
        closed = []
        for (rid, ep), agg in sorted(self._agg.items()):
            if ep != epoch:
                continue
            region = self.regions.get(rid)
            if region.home != nid:
                continue
            closed.append((rid, ep))
            readers = agg["readers"]
            writers = agg["writers"]
            if len(writers) > 1 or (writers and (readers - writers)):
                self.races.append(
                    (epoch, rid, tuple(sorted(readers)), tuple(sorted(writers)))
                )
                self._count("race")
                if self._checker is not None:
                    self._checker.adopt_protocol_race(epoch, rid, readers, writers)
            if writers:
                targets = sorted((readers | writers) - {nid})
                if targets:
                    pushes.append((region, targets))
        for key in closed:
            del self._agg[key]
        if not pushes:
            return
        done = Future(name=f"rd:push@{nid}")
        state = {"need": sum(len(t) for _, t in pushes), "done": done}
        for region, targets in pushes:
            data = region.home_data.copy()
            for t in targets:
                self.transport.post(
                    nid,
                    t,
                    self._on_push,
                    region.rid,
                    data,
                    state,
                    payload_words=region.size,
                    category="proto.RaceDetect.push",
                )
        yield done

    def _on_push(self, node, src, rid, data, state):
        copy = self._copies[node.nid].get(rid)
        if copy is not None:
            np.copyto(copy.data, data)
        self.transport.post(
            node.nid, src, self._on_push_ack, state, payload_words=1,
            category="proto.RaceDetect.push_ack",
        )

    def _on_push_ack(self, node, src, state):
        state["need"] -= 1
        if state["need"] == 0:
            state["done"].resolve(None)


@legacy_registry.register
class LegacyBufferedUpdateProtocol(CachedCopyProtocol):
    """Any-writer batched updates (pre-port snapshot)."""

    spec = ProtocolSpec(
        name="BufferedUpdate",
        optimizable=True,
        null_hooks=frozenset({"start_read", "end_read", "start_write"}),
        description="writes buffered locally; one push per dirty region per barrier",
    )

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        n = self.transport.n_procs
        self._dirty: list[set] = [set() for _ in range(n)]
        self._sharers = SharerDirectory()
        self._versions = VersionTable()
        self._acks = AckCollector(self.machine, name="BufferedUpdate")
        self._last_writer: dict = {}
        self._epoch = [0] * n

    def _fetch_extra(self, rid: int, src: int):
        self._sharers.register(rid, src)
        return None

    def end_write(self, nid: int, handle):
        yield Delay(4)
        self._dirty[nid].add(handle.region.rid)

    def barrier(self, nid: int):
        dirty = sorted(self._dirty[nid])
        self._dirty[nid].clear()
        epoch = self._epoch[nid]
        done = Future(name=f"bu:ship@{nid}")
        state = {"need": len(dirty), "done": done}
        if not dirty:
            done.resolve(None)
        for rid in dirty:
            region = self.regions.get(rid)
            copy = self._copies[nid][rid]
            data = np.array(copy.data, copy=True)
            if nid == region.home:
                self._on_update(self.transport.nodes[nid], nid, rid, epoch, data, state)
            else:
                self.transport.post(
                    nid,
                    region.home,
                    self._on_update,
                    rid,
                    epoch,
                    data,
                    state,
                    payload_words=region.size,
                    category="proto.BufferedUpdate.update",
                )
        yield done
        yield from self.runtime.rendezvous(nid)
        self._epoch[nid] += 1

    def _on_update(self, node, src, rid, epoch, data, state):
        key = (rid, epoch)
        prev = self._last_writer.get(key)
        if prev is not None and prev != src:
            raise ProtocolMisuse(
                f"BufferedUpdate: nodes {prev} and {src} both wrote region {rid} "
                f"in epoch {epoch}; this protocol asserts one writer per epoch"
            )
        self._last_writer[key] = src
        region = self.regions.get(rid)
        np.copyto(region.home_data, data)
        self._versions.bump(rid)
        targets = self._sharers.sharers(rid, exclude=(src, region.home))
        fanout = self._acks.fan_out(
            region.home,
            targets,
            self._on_push,
            rid,
            data,
            payload_words=region.size,
            category="proto.BufferedUpdate.push",
        )
        fanout.add_callback(lambda _: self._acks.ack(state))

    def _on_push(self, node, src, rid, data, state):
        copy = self._copies[node.nid].get(rid)
        if copy is not None:
            np.copyto(copy.data, data)
        self._acks.post_ack(node.nid, src, state, category="proto.BufferedUpdate.push_ack")
