"""Static update protocol: sharer lists built once, updates pushed at barriers.

"The static protocol builds sharer lists during the first iteration,
and then, propagates updates appropriately at subsequent barriers —
essentially Falsafi et al.'s protocol for EM3D" (§3.3).  The paper
measures ~5x over SC invalidation for EM3D with it.

Assertions this protocol is built on (the §6 state-space reduction):

* a region is written only by its *home* node (the producer owns it);
* the reader set is stable after first map (static access pattern).

Consequently:

* sharer registration happens at map time, *at the home* — since the
  home is the writer, the sharer list is local to the node that needs
  it at barrier time;
* reads after the first fetch are pure local accesses —
  ``start_read``/``end_read``/``start_write`` are all registered null,
  which is why the compiler's direct-dispatch pass wins so much on
  EM3D's tight kernel (Table 4);
* at ``Ace_Barrier``, each node pushes every *dirty* region it homes
  to that region's sharers and waits for their acknowledgements
  before entering the global rendezvous, so all consumers see fresh
  values after the barrier.

The table's two ``end_write`` rows are the protocol's assertion made
machine-readable: the guarded row marks the region dirty when the
writer is the home; the fall-through row rejects everything else.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.protocols.base import ProtocolMisuse, ProtocolSpec
from repro.protocols.caching import CachedTableProtocol
from repro.protocols.registry import default_registry
from repro.sim import Delay, Future
from repro.spec import ProtocolTable, Transition

STATIC_UPDATE_TABLE = ProtocolTable(
    name="StaticUpdate",
    description="sharer lists built at first map; homes push updates at barriers",
    node_states=("invalid", "valid", "home"),
    home_states=("idle",),
    base_state="invalid",
    transitions=(
        Transition(
            "node",
            "*",
            "end_write",
            guard="home_writer",
            cost=8,
            actions=("mark_dirty",),
            effects=("mark_dirty",),
        ),
        Transition(
            "node",
            "*",
            "end_write",
            actions=("reject_remote_write",),
            note="producers own their regions; remote writes are misuse",
        ),
        Transition(
            "node",
            "*",
            "barrier",
            actions=("push_dirty", "rendezvous"),
            msg="push",
            effects=("push_sharers", "epoch_advance"),
        ),
        Transition(
            "node",
            "valid",
            "push",
            actions=("apply_push",),
            msg="push_ack",
            effects=("copy_current",),
        ),
    ),
    costs={"end_write": 8, "push_setup": 12},
    optimizable=True,
    null_hooks=frozenset({"start_read", "end_read", "start_write"}),
    home_writer=True,
    sync_model="barrier",
    writer_model="home",
)


@default_registry.register
class StaticUpdateProtocol(CachedTableProtocol):
    """Falsafi-style static update: home pushes dirty regions at barriers."""

    table = STATIC_UPDATE_TABLE
    spec = ProtocolSpec.from_table(STATIC_UPDATE_TABLE)

    END_WRITE_COST = STATIC_UPDATE_TABLE.cost("end_write")
    PUSH_SETUP_COST = STATIC_UPDATE_TABLE.cost("push_setup")

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._sharers: dict[int, set[int]] = {}
        self._dirty: list[set[int]] = [set() for _ in range(self.transport.n_procs)]

    def _fetch_extra(self, rid: int, src: int):
        self._sharers.setdefault(rid, set()).add(src)
        return None

    # -- guards / actions (table-referenced) ------------------------------
    def g_home_writer(self, nid: int, handle) -> bool:
        return handle.region.home == nid

    def act_mark_dirty(self, nid: int, handle):
        self._dirty[nid].add(handle.region.rid)
        return
        yield  # pragma: no cover - makes this a generator

    def act_reject_remote_write(self, nid: int, handle):
        region = handle.region
        raise ProtocolMisuse(
            f"StaticUpdate: node {nid} wrote region {region.rid} homed at "
            f"{region.home}; this protocol asserts producers own their regions"
        )
        yield  # pragma: no cover - makes this a generator

    def act_push_dirty(self, nid: int):
        """Push dirty home regions to sharers (the barrier's first leg)."""
        dirty = sorted(self._dirty[nid])
        self._dirty[nid].clear()
        pushes = []
        for rid in dirty:
            region = self.regions.get(rid)
            targets = sorted(self._sharers.get(rid, ()))
            if not targets:
                continue
            pushes.append((region, targets))
        if pushes:
            yield Delay(self.PUSH_SETUP_COST)
            done = Future(name=f"su:barrier@{nid}")
            state = {"need": sum(len(t) for _, t in pushes), "done": done}
            for region, targets in pushes:
                data = region.home_data.copy()
                self._count("push", len(targets))
                for t in targets:
                    if self._kit is not None:
                        self._kit.post(
                            nid,
                            t,
                            self._on_push_r,
                            region.rid,
                            data,
                            payload_words=region.size,
                            category="proto.StaticUpdate.push",
                            on_ack=partial(self._ack_state, state),
                        )
                    else:
                        self.transport.post(
                            nid,
                            t,
                            self._on_push,
                            region.rid,
                            data,
                            state,
                            payload_words=region.size,
                            category="proto.StaticUpdate.push",
                        )
            yield done

    # -- sharer side (handler context) -----------------------------------
    def _on_push(self, node, src, rid, data, state):
        copy = self._copies[node.nid].get(rid)
        if copy is not None:
            np.copyto(copy.data, data)
            copy.state = "valid"
        self.transport.post(
            node.nid,
            src,
            self._on_push_ack,
            state,
            payload_words=1,
            category="proto.StaticUpdate.push_ack",
        )

    def _on_push_ack(self, node, src, state):
        state["need"] -= 1
        if state["need"] == 0:
            state["done"].resolve(None)

    def _on_push_r(self, node, src, fut, rid, data, seq=None):
        # Sharer-side dedup: a delayed duplicate of a previous barrier's
        # push must not overwrite this barrier's data (see the dynamic
        # protocol's _on_apply_r).  Duplicates still ack.
        if self._push_seen.first(src, seq):
            copy = self._copies[node.nid].get(rid)
            if copy is not None:
                np.copyto(copy.data, data)
                copy.state = "valid"
        self.transport.reply(fut, None, payload_words=1, category="proto.StaticUpdate.push_ack")
