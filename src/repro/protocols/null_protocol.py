"""The null protocol: no coherence actions at all.

Used when the programmer can assert a phase touches only data that
needs no coherence — the paper's Water uses it for the intra-molecular
phase, where every processor reads and writes only its own molecules
(§2.2, §5.2).  Remote *reads* are permitted and served by a one-time
snapshot fetch at map time; remote *writes* violate the protocol's
assertion and raise, which is exactly the kind of error the paper's
"theoretical framework of correctness" discussion (§6) is about
catching.

All access hooks are null, so the compiler's direct-dispatch pass
deletes every START/END call on data in a null space.
"""

from __future__ import annotations

from repro.protocols.base import ProtocolMisuse, ProtocolSpec
from repro.protocols.caching import CachedCopyProtocol
from repro.protocols.registry import default_registry


@default_registry.register
class NullProtocol(CachedCopyProtocol):
    """No coherence: local data stays local; remote reads get a snapshot."""

    spec = ProtocolSpec(
        name="Null",
        optimizable=True,
        null_hooks=frozenset({"start_read", "end_read", "end_write"}),
        description="no coherence actions; remote writes are protocol misuse",
        home_writer=True,
    )

    def start_write(self, nid: int, handle):
        if handle.region.home != nid:
            raise ProtocolMisuse(
                f"Null protocol: node {nid} wrote region {handle.region.rid} "
                f"homed at {handle.region.home}; the null protocol asserts "
                "writes are home-local"
            )
        return
        yield  # pragma: no cover - makes this a generator
