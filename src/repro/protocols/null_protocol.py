"""The null protocol: no coherence actions at all.

Used when the programmer can assert a phase touches only data that
needs no coherence — the paper's Water uses it for the intra-molecular
phase, where every processor reads and writes only its own molecules
(§2.2, §5.2).  Remote *reads* are permitted and served by a one-time
snapshot fetch at map time; remote *writes* violate the protocol's
assertion and raise, which is exactly the kind of error the paper's
"theoretical framework of correctness" discussion (§6) is about
catching.

All access hooks are null, so the compiler's direct-dispatch pass
deletes every START/END call on data in a null space.  The table below
is correspondingly tiny: one guarded ``start_write`` row enforcing the
home-writer assertion.
"""

from __future__ import annotations

from repro.protocols.base import ProtocolMisuse, ProtocolSpec
from repro.protocols.caching import CachedTableProtocol
from repro.protocols.registry import default_registry
from repro.spec import ProtocolTable, Transition

NULL_TABLE = ProtocolTable(
    name="Null",
    description="no coherence actions; remote writes are protocol misuse",
    node_states=("invalid", "valid", "home"),
    home_states=("idle",),
    base_state="invalid",
    transitions=(
        Transition(
            "node",
            "*",
            "start_write",
            guard="remote",
            actions=("reject_remote_write",),
            note="phase-local assertion: only the home may write",
        ),
    ),
    optimizable=True,
    null_hooks=frozenset({"start_read", "end_read", "end_write"}),
    home_writer=True,
    sync_model="access",
    writer_model="home",
)


@default_registry.register
class NullProtocol(CachedTableProtocol):
    """No coherence: local data stays local; remote reads get a snapshot."""

    table = NULL_TABLE
    spec = ProtocolSpec.from_table(NULL_TABLE)

    def g_remote(self, nid: int, handle) -> bool:
        return handle.region.home != nid

    def act_reject_remote_write(self, nid: int, handle):
        raise ProtocolMisuse(
            f"Null protocol: node {nid} wrote region {handle.region.rid} "
            f"homed at {handle.region.home}; the null protocol asserts "
            "writes are home-local"
        )
        yield  # pragma: no cover - makes this a generator
