"""Dynamic update protocol: writes propagate to all sharers immediately.

The producer-consumer protocol of §2.1/§3.3: "writes to a region are
propagated to all sharers immediately".  A writer needs no exclusive
access — the §6 observation that custom protocols shrink the state
space ("a writer need not acquire exclusive access before proceeding
with a write, as long as the result of the write is propagated to all
sharers").

Mechanics
---------
* Sharer registration happens at map time (the home records who
  fetched a copy).
* ``end_write`` ships the whole region to the home, which applies it
  and fans it out to every other sharer; the writer blocks until all
  sharers have acknowledged, so propagation really is *immediate* and
  a subsequent barrier needs no extra work.
* Reads are pure local hits — ``start_read``/``end_read`` are null and
  the compiler deletes them (this protocol's assertion: regions have a
  single writer at a time, e.g. a Barnes-Hut body is written only by
  its owner).

The message rows (``update``/``push``) are not interpreted by the hook
dispatcher; they declare the home/sharer machines for the model
checker and the protocol reference docs.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.protocols.base import ProtocolSpec
from repro.protocols.caching import CachedTableProtocol
from repro.protocols.registry import default_registry
from repro.sim import Future
from repro.spec import ProtocolTable, Transition

DYNAMIC_UPDATE_TABLE = ProtocolTable(
    name="DynamicUpdate",
    description="writes propagated to all sharers after each write",
    node_states=("invalid", "valid", "home"),
    home_states=("idle",),
    base_state="invalid",
    transitions=(
        Transition(
            "node",
            "*",
            "end_write",
            cost=20,
            actions=("propagate_write",),
            msg="update",
            effects=("write_home", "push_sharers"),
            note="ship whole region to home; block until sharers ack",
        ),
        Transition(
            "home",
            "idle",
            "update",
            actions=("apply_update", "fan_out"),
            msg="push",
            effects=("home_current",),
        ),
        Transition(
            "node",
            "valid",
            "push",
            actions=("apply_push",),
            msg="push_ack",
            effects=("copy_current",),
        ),
    ),
    costs={"end_write": 20, "apply": 15},
    optimizable=True,
    null_hooks=frozenset({"start_read", "end_read", "start_write"}),
    sync_model="immediate",
    writer_model="none",
)


@default_registry.register
class DynamicUpdateProtocol(CachedTableProtocol):
    """Write-through-with-multicast update protocol."""

    table = DYNAMIC_UPDATE_TABLE
    spec = ProtocolSpec.from_table(DYNAMIC_UPDATE_TABLE)

    END_WRITE_COST = DYNAMIC_UPDATE_TABLE.cost("end_write")
    APPLY_COST = DYNAMIC_UPDATE_TABLE.cost("apply")

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._sharers: dict[int, set[int]] = {}
        #: recovery-active only: (src, seq) -> {"rid", "data", "state"}
        #: for updates whose fan-out has not fully acked (a dead home
        #: strands these; on_node_dead re-issues from the new home).
        self._open_updates: dict = {}

    def _fetch_extra(self, rid: int, src: int):
        self._sharers.setdefault(rid, set()).add(src)
        return None

    def act_propagate_write(self, nid: int, handle):
        """Push the written region to home + all sharers; wait for acks."""
        region = handle.region
        self._count("propagate")
        data = np.array(handle.data, copy=True)
        if nid == region.home:
            # Home's copy aliases home_data: canonical store already current.
            done = Future(name=f"du:{region.rid}@{nid}")
            self._fan_out(region, data, exclude=nid, done=done)
            yield done
        else:
            yield from self._rpc(
                nid,
                region.home,
                self._on_update,
                region.rid,
                data,
                payload_words=region.size,
                category="proto.DynamicUpdate.update",
            )

    # -- home side (handler context) -------------------------------------
    def _on_update(self, node, src, fut, rid, data, seq=None):
        # On a lossy fabric a delayed duplicate of update K can arrive
        # after update K+1 (the writer only blocks per update), and
        # re-applying it would roll home data back — so the dedup table
        # gates the whole handler, replaying the recorded ack instead.
        if self._kit is not None and not self._dedup.admit(src, seq, fut):
            return
        reply = self.transport.reply if self._kit is None else self._dedup.reply
        region = self.regions.get(rid)
        np.copyto(region.home_data, data)
        done = Future(name=f"du:{rid}@home")
        done.add_callback(
            lambda _: reply(fut, None, payload_words=1, category="proto.DynamicUpdate.update_ack")
        )
        state = self._fan_out(region, data, exclude=src, done=done)
        if self._recovery is not None and state is not None and seq is not None:
            # If the home dies mid-fan-out the writer would stall on the
            # update ack forever; record enough to re-issue the pushes
            # from the successor home.
            key = (src, seq)
            self._open_updates[key] = {"rid": rid, "data": data, "state": state}
            done.add_callback(lambda _fut, _k=key: self._open_updates.pop(_k, None))

    def _fan_out(self, region, data, exclude: int, done: Future):
        """Multicast ``data`` to every sharer except ``exclude``; resolve
        ``done`` when all have acknowledged.  Returns the fan-out state
        dict (None when there was nothing to send)."""
        targets = sorted(self._sharers.get(region.rid, set()) - {exclude, region.home})
        if not targets:
            done.resolve(None)
            return None
        state = {"need": len(targets), "done": done}
        if self._kit is not None:
            track = self._recovery is not None
            if track:
                state["pending"] = set(targets)
            for t in targets:
                on_ack = (
                    partial(self._ack_target, state, t) if track else partial(self._ack_state, state)
                )
                self._kit.post(
                    region.home,
                    t,
                    self._on_apply_r,
                    region.rid,
                    data,
                    payload_words=region.size,
                    category="proto.DynamicUpdate.push",
                    on_ack=on_ack,
                )
            return state
        for t in targets:
            self.transport.post(
                region.home,
                t,
                self._on_apply,
                region.rid,
                data,
                state,
                payload_words=region.size,
                category="proto.DynamicUpdate.push",
            )
        return state

    def _on_apply(self, node, src, rid, data, state):
        copy = self._copies[node.nid].get(rid)
        if copy is not None:
            np.copyto(copy.data, data)
            copy.state = "valid"
        self.transport.post(
            node.nid,
            src,
            self._on_apply_ack,
            state,
            payload_words=1,
            category="proto.DynamicUpdate.push_ack",
        )

    def _on_apply_r(self, node, src, fut, rid, data, seq=None):
        # Sharer-side dedup: a delayed duplicate of an old push must not
        # overwrite a newer one.  Duplicates still ack (their original
        # ack may have been the drop).
        if self._push_seen.first(src, seq):
            copy = self._copies[node.nid].get(rid)
            if copy is not None:
                np.copyto(copy.data, data)
                copy.state = "valid"
        self.transport.reply(fut, None, payload_words=1, category="proto.DynamicUpdate.push_ack")

    def _on_apply_ack(self, node, src, state):
        state["need"] -= 1
        if state["need"] == 0:
            state["done"].resolve(None)

    # -- crash recovery ---------------------------------------------------
    def _ack_target(self, state: dict, target: int, _value=None) -> None:
        state["pending"].discard(target)
        self._ack_state(state)

    def _register_recovery(self, manager) -> None:
        super()._register_recovery(manager)
        manager.register_home_categories(("proto.DynamicUpdate.update",), self.regions)
        manager.register_push_categories(("proto.DynamicUpdate.push",))

    def on_node_dead(self, dead: int, manager, rehomed: dict) -> None:
        """Shrink the sharer sets and finish fan-outs a dead home stranded.

        Pushes *to* a dead sharer were fake-acked by the manager's sweep
        (their ``_ack_target`` already ran); pushes *from* a dead home
        were abandoned, so the writer's update would never complete.
        The successor home re-issues those pushes — ``home_data`` (which
        the old home applied before dying and the successor adopted)
        carries exactly the in-flight update's contents.
        """
        super().on_node_dead(dead, manager, rehomed)
        for sharers in self._sharers.values():
            sharers.discard(dead)
        for _key, entry in sorted(self._open_updates.items()):
            pending = entry["state"].get("pending")
            if not pending or entry["rid"] not in rehomed:
                continue
            region = rehomed[entry["rid"]]
            for t in sorted(pending):
                if t in manager.dead:
                    self._ack_target(entry["state"], t)
                else:
                    self._kit.post(
                        region.home,
                        t,
                        self._on_apply_r,
                        region.rid,
                        entry["data"],
                        payload_words=region.size,
                        category="proto.DynamicUpdate.push",
                        on_ack=partial(self._ack_target, entry["state"], t),
                    )
