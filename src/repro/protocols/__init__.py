"""The Ace protocol library.

Each module implements one coherence protocol against the *full access
control* interface of §2.1/§3.2: hooks before and after reads and
writes, and at synchronization points (barrier/lock/unlock), plus
lifecycle hooks (space initialization and flush-to-base-state for
``Ace_ChangeProtocol``).

Protocols are registered declaratively (:mod:`repro.protocols.registry`),
mirroring the paper's Tcl registration script (Figure 1): a protocol
declares its name, which hooks are null, and whether its semantics
permit compiler optimization.  The registry doubles as the "system
configuration file" the Ace compiler reads.

Shipped protocols
-----------------
==================  =====================================================
``SC``              default sequentially-consistent MSI invalidation
``Null``            no coherence actions (phase-local data assertion)
``DynamicUpdate``   writes propagated to all sharers after each write
``StaticUpdate``    sharer lists built at first map; homes push at barriers
``Migratory``       data migrates to the accessing node (extension, §2.4)
``HomeWrite``       only the home writes; readers revalidate by version
``Counter``         home-serialized fetch-op region (TSP's job counter)
``PipelinedWrite``  buffered delta writes drained/verified at barriers
``RaceDetect``      Larus-style per-epoch data-race checking (§2.1)
``HwSC``            SC with hardware access-fault control (§6, Typhoon)
``BufferedUpdate``  any-writer batched updates, built from §6's blocks
``SelfInvalidate``  barrier self-invalidation with write self-downgrade
``Owned``           MOESI-style owned state; dirty owners supply readers
==================  =====================================================

:mod:`repro.protocols.blocks` holds the §6 protocol-building-block
library (ack collection, home queues, sharer directories, versions).
"""

from repro.protocols.base import Handle, Protocol, ProtocolSpec
from repro.protocols.registry import ProtocolRegistry, default_registry

# Import for registration side effects into the default registry.
from repro.protocols import (  # noqa: E402  (order matters: registry first)
    sc_invalidate,
    null_protocol,
    dynamic_update,
    static_update,
    migratory,
    home_write,
    counter,
    pipelined_write,
    race_detect,
    hw_assisted,
    buffered_update,
    self_invalidate,
    owned,
)

__all__ = [
    "Handle",
    "Protocol",
    "ProtocolRegistry",
    "ProtocolSpec",
    "default_registry",
    "sc_invalidate",
    "null_protocol",
    "dynamic_update",
    "static_update",
    "migratory",
    "home_write",
    "counter",
    "pipelined_write",
    "race_detect",
    "hw_assisted",
    "buffered_update",
    "self_invalidate",
    "owned",
]
