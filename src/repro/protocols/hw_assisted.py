"""Hardware-assisted SC: the §6 Typhoon/FLASH integration path.

"On Typhoon, which provides hardware support for access-fault control,
protocol designers could implement certain protocols by registering
null handlers with the Ace system and appropriate system handlers with
Typhoon ... Separating application and protocol views permits the use
of hardware mechanisms by protocols, independent of application code."

``HwSC`` runs the same home-based MSI state machine as the default SC
protocol, but its access checks are performed by a modeled hardware
fine-grain access-control unit: the fast-path check costs a couple of
cycles instead of tens, and the runtime's software dispatch is skipped
(``spec.hardware``).  Misses still go through the full software
directory — hardware accelerates the hit path, exactly the hybrid the
paper sketches.  Applications switch with one ``Ace_ChangeProtocol``
call and no other change.
"""

from __future__ import annotations

from repro.dsm import CoherenceEngine, DSMCosts
from repro.dsm.msi import HW_SC_TABLE
from repro.protocols.base import ProtocolSpec
from repro.protocols.registry import default_registry
from repro.protocols.sc_invalidate import SCProtocol

#: the hardware unit checks access tags in a couple of cycles; the
#: software-only miss machinery is unchanged from the Ace SC table.
HW_SC_COSTS = DSMCosts(
    create=100,
    map_hit=2,
    map_cold=60,
    map_needs_lookup=False,
    unmap=2,
    start_hit=2,
    start_miss=45,
    end_op=1,
    dir_handler=40,
    inval_handler=32,
    flush=40,
)


@default_registry.register
class HwAssistedSCProtocol(SCProtocol):
    """Sequentially consistent invalidation with hardware access checks."""

    table = HW_SC_TABLE
    spec = ProtocolSpec.from_table(HW_SC_TABLE)

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._bind_engine(
            CoherenceEngine(
                runtime.transport,
                runtime.regions,
                HW_SC_COSTS,
                stats_prefix="ace.hwsc",
                table=HW_SC_TABLE,
            )
        )
