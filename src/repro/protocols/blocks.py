"""Protocol building blocks (§6).

"Protocol development would also be facilitated by the creation of a
library of protocol building blocks ... We are currently attempting to
isolate the primitives needed for such a library."  This module is
that library, distilled from the patterns the shipped protocols repeat:

``AckCollector``
    fan a payload out to a set of nodes and resolve a future when all
    have acknowledged (update pushes, invalidation storms, drains);
``HomeQueue``
    FIFO serialization point at a region's home (counters, migratory
    hand-offs, lock-like grants);
``SharerDirectory``
    per-region sharer sets with registration and pruning;
``VersionTable``
    monotonically versioned regions for revalidation protocols.

:class:`~repro.protocols.buffered_update.BufferedUpdateProtocol` is
built entirely from these blocks as the worked demonstration.
"""

from __future__ import annotations

from collections import deque

from repro.dsm.transport import as_transport
from repro.sim import Future


class AckCollector:
    """Send a handler to ``targets`` and resolve ``done`` after all acks.

    The receiving handler must call :meth:`ack` exactly once per
    delivery (typically via :meth:`ack_handler` posted back).

    Accepts any coherence-core fabric (a machine or a
    :class:`~repro.dsm.transport.Transport`); messaging goes through
    the transport's one-way ``post``.
    """

    def __init__(self, fabric, name: str = "acks"):
        transport = as_transport(fabric)
        self.transport = transport
        self.machine = transport.machine
        self._post = transport.post
        self.name = name
        # Crash recovery (None on every other fabric): open fan-outs
        # track their unacked target set so the manager can shrink a
        # collective whose member died instead of waiting forever.
        self._recovery = transport.recovery
        self._open: list = []
        if self._recovery is not None:
            self._recovery.register_collector(self)
            # Acks keep the pending set exact (instance-attribute swap,
            # so reliable/non-recovery fabrics run the original path).
            self._on_ack = self._on_ack_tracked

    def fan_out(self, src: int, targets, handler, *args, payload_words=0, category=None):
        """Post ``handler(node, src, *args, collector_state)`` to each
        target; returns a Future resolved when every target acked."""
        done = Future(name=f"{self.name}:fanout@{src}")
        targets = list(targets)
        if not targets:
            done.resolve(None)
            return done
        state = {"need": len(targets), "done": done}
        if self._recovery is not None:
            state["pending"] = set(targets)
            self._open.append(state)
            done.add_callback(lambda _fut, _s=state: self._open.remove(_s))
        for t in targets:
            self._post(
                src,
                t,
                handler,
                *args,
                state,
                payload_words=payload_words,
                category=category or f"blocks.{self.name}",
            )
        return done

    def ack(self, state) -> None:
        """Count one acknowledgement against a fan-out's state."""
        state["need"] -= 1
        if state["need"] == 0:
            state["done"].resolve(None)

    def on_node_dead(self, dead: int, manager) -> None:
        """Crash recovery: ack open fan-outs on the dead member's behalf.

        Handlers that ack through :meth:`_on_ack` keep the pending set
        exact (``need == len(pending)``); direct :meth:`ack` calls leave
        it an over-approximation, in which case the dead member may
        already have acked — the guard below shrinks only when the set
        is provably exact, so a death can never double-count an ack
        (the worst case is waiting out a retry that will not come,
        which is what the non-recovery fabric would do anyway)."""
        for state in list(self._open):
            pending = state["pending"]
            if dead not in pending:
                continue
            pending.discard(dead)
            if state["need"] > len(pending):
                self.ack(state)

    def post_ack(self, src: int, dst: int, state, category=None) -> None:
        """Send the ack message back to the fan-out's origin."""
        self._post(
            src,
            dst,
            self._on_ack,
            state,
            payload_words=1,
            category=category or f"blocks.{self.name}.ack",
        )

    def _on_ack(self, node, src, state):
        self.ack(state)

    def _on_ack_tracked(self, node, src, state):
        state["pending"].discard(src)
        self.ack(state)


class HomeQueue:
    """FIFO serialization of grants at a home node, one queue per key."""

    def __init__(self):
        self._state: dict = {}  # key -> {"held": bool, "queue": deque}

    def _entry(self, key):
        ent = self._state.get(key)
        if ent is None:
            ent = {"held": False, "queue": deque()}
            self._state[key] = ent
        return ent

    def acquire(self, key, grant) -> None:
        """Call ``grant()`` now if free, else queue it (handler context)."""
        ent = self._entry(key)
        if ent["held"]:
            ent["queue"].append(grant)
        else:
            ent["held"] = True
            grant()

    def release(self, key) -> None:
        """Release; the next queued grant (if any) runs immediately."""
        ent = self._entry(key)
        if ent["queue"]:
            ent["queue"].popleft()()
        else:
            ent["held"] = False

    def held(self, key) -> bool:
        return self._entry(key)["held"]


class SharerDirectory:
    """Per-region sharer sets (who holds a cached copy)."""

    def __init__(self):
        self._sharers: dict[int, set] = {}

    def register(self, rid: int, node: int) -> None:
        self._sharers.setdefault(rid, set()).add(node)

    def drop(self, rid: int, node: int) -> None:
        self._sharers.get(rid, set()).discard(node)

    def sharers(self, rid: int, exclude=()) -> list:
        return sorted(self._sharers.get(rid, set()) - set(exclude))

    def __contains__(self, item) -> bool:
        rid, node = item
        return node in self._sharers.get(rid, set())


class VersionTable:
    """Monotone per-region versions for revalidation-style protocols."""

    def __init__(self):
        self._versions: dict[int, int] = {}

    def current(self, rid: int) -> int:
        return self._versions.get(rid, 0)

    def bump(self, rid: int) -> int:
        self._versions[rid] = self.current(rid) + 1
        return self._versions[rid]

    def is_current(self, rid: int, version) -> bool:
        return self.current(rid) == version
