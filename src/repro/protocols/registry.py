"""Protocol registration — the paper's Figure 1 as a Python API.

In Ace, a protocol designer runs a Tcl script naming the protocol, its
hook points, and whether calls to it may be optimized; the script
generates a *system configuration file* consumed by the compiler.
Here the same record is a :class:`~repro.protocols.base.ProtocolSpec`
attached to the protocol class, and :meth:`ProtocolRegistry.config_table`
is the configuration file: the compiler reads it to learn which hooks
are null and which protocols permit code motion.
"""

from __future__ import annotations

from repro.protocols.base import HOOK_NAMES, Protocol, ProtocolSpec


class ProtocolRegistry:
    """Name → protocol class table; extensible at runtime (§2.4)."""

    def __init__(self):
        self._protocols: dict[str, type] = {}

    def register(self, cls: type) -> type:
        """Register a Protocol subclass (usable as a class decorator)."""
        if not (isinstance(cls, type) and issubclass(cls, Protocol)):
            raise TypeError(f"{cls!r} is not a Protocol subclass")
        spec = cls.spec
        if not isinstance(spec, ProtocolSpec) or spec.name == "Abstract":
            raise ValueError(f"{cls.__name__} must define a concrete ProtocolSpec")
        if spec.name in self._protocols:
            raise ValueError(f"protocol {spec.name!r} registered twice")
        self._protocols[spec.name] = cls
        return cls

    def names(self) -> list[str]:
        return sorted(self._protocols)

    def get(self, name: str) -> type:
        try:
            return self._protocols[name]
        except KeyError:
            raise KeyError(
                f"unknown protocol {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def spec(self, name: str) -> ProtocolSpec:
        return self.get(name).spec

    def table_of(self, name: str):
        """The protocol's declarative :class:`~repro.spec.table.ProtocolTable`,
        or ``None`` for protocols that predate the table layer.  This is
        what the model checker and the doc generator consume."""
        return getattr(self.get(name), "table", None)

    def create(self, name: str, runtime, space) -> Protocol:
        """Instantiate a fresh protocol instance for ``space``."""
        return self.get(name)(runtime, space)

    def serving_candidates(self) -> list[str]:
        """Protocols legal for open request-serving traffic (:mod:`repro.serve`).

        A serving shard sees concurrent writers on arbitrary nodes with
        no barrier between requests, so a candidate must (a) not assume
        the home is the only writer, (b) publish writes at access
        granularity rather than at barriers (``sync_model`` in the
        table metadata), and (c) not assert a single/epoch writer
        discipline the open traffic cannot honor.  The filter is
        derived from each protocol's declarative table — a new protocol
        that declares multi-writer access-grained semantics becomes a
        serving (and adaptive-controller) candidate with no list to
        maintain by hand; table-less legacy protocols are excluded
        because nothing machine-readable vouches for them.
        """
        out = []
        for name in self.names():
            pt = self.table_of(name)
            if pt is None or pt.home_writer:
                continue
            if pt.sync_model not in ("access", "immediate"):
                continue
            if pt.writer_model not in ("copy", "none"):
                continue
            out.append(name)
        return out

    def config_table(self) -> dict:
        """The "system configuration file" the Ace compiler reads (§3.2).

        Maps protocol name to its optimizability, the set of null
        hooks, and the derived handler routine names (e.g.
        ``Update_StartRead``).  Table-driven protocols additionally
        export their declarative metadata (base state, sync/writer
        models, home-writer flag) straight from the table, so the
        configuration file and the verified artifact cannot drift.
        """
        table = {}
        for name, cls in sorted(self._protocols.items()):
            spec = cls.spec
            entry = {
                "optimizable": spec.optimizable,
                "null_hooks": sorted(spec.null_hooks),
                "routines": {h: spec.routine_name(h) for h in HOOK_NAMES},
            }
            pt = getattr(cls, "table", None)
            if pt is not None:
                entry.update(
                    base_state=pt.base_state,
                    sync_model=pt.sync_model,
                    writer_model=pt.writer_model,
                    home_writer=pt.home_writer,
                )
            table[name] = entry
        return table


#: Registry holding every protocol that ships with the library.
default_registry = ProtocolRegistry()
