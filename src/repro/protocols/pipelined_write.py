"""Pipelined-write protocol: buffered delta writes drained at barriers (Water).

"In Water, we improve performance by pipelining writes to a molecule
during the inter-molecular calculation phase" (§5.2).  During that
phase many processors *accumulate* forces into the same molecule; the
SC default would bounce ownership of each molecule region between
writers.  Instead:

* ``start_write`` snapshots the local copy;
* ``end_write`` computes the write's *delta*, fires it at the home in
  a single one-way message, and immediately continues — writes from
  different molecules pipeline into the network;
* the home **combines** deltas into the canonical data (addition is
  commutative, so ordering does not matter — the assertion this
  protocol rests on);
* the ``barrier`` hook first waits for all of this node's outstanding
  deltas to be acknowledged (the Split-C-style split-phase completion
  check of §2.1), then enters the global rendezvous, and finally
  advances the local *phase* so the next read of a remote molecule
  refetches fresh data.

Reads revalidate once per phase: the first ``start_read`` of a region
after a barrier refetches it; later reads in the phase are local.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import ProtocolSpec
from repro.protocols.caching import CachedTableProtocol
from repro.protocols.registry import default_registry
from repro.sim import Future
from repro.spec import ProtocolTable, Transition

PIPELINED_WRITE_TABLE = ProtocolTable(
    name="PipelinedWrite",
    description="delta writes pipelined to home; drained at barriers",
    node_states=("invalid", "valid", "home"),
    home_states=("idle",),
    base_state="invalid",
    transitions=(
        Transition(
            "node",
            "*",
            "start_read",
            guard="phase_stale_home",
            cost=4,
            actions=("home_refresh",),
            note="home rereads canonical data once per phase",
        ),
        Transition(
            "node",
            "*",
            "start_read",
            guard="phase_stale_remote",
            cost=4,
            actions=("refetch",),
            msg="refetch",
            effects=("copy_current",),
        ),
        Transition("node", "*", "start_write", cost=6, actions=("open_write",)),
        Transition(
            "node",
            "*",
            "end_write",
            cost=12,
            actions=("close_write",),
            msg="delta",
            effects=("delta_to_home",),
        ),
        Transition(
            "node",
            "*",
            "barrier",
            actions=("drain", "rendezvous", "advance_phase"),
            effects=("drain_outstanding", "epoch_advance"),
        ),
        Transition("home", "idle", "delta", actions=("merge_delta",), msg="delta_ack"),
    ),
    costs={"snapshot": 6, "delta": 12, "refetch_check": 4},
    optimizable=True,
    null_hooks=frozenset({"end_read"}),
    sync_model="barrier",
    writer_model="none",
)


@default_registry.register
class PipelinedWriteProtocol(CachedTableProtocol):
    """Accumulating pipelined writes; per-phase read revalidation."""

    table = PIPELINED_WRITE_TABLE
    spec = ProtocolSpec.from_table(PIPELINED_WRITE_TABLE)

    ALIAS_HOME = False  # home works on a private copy; deltas merge into truth
    SNAPSHOT_COST = PIPELINED_WRITE_TABLE.cost("snapshot")
    DELTA_COST = PIPELINED_WRITE_TABLE.cost("delta")

    def __init__(self, runtime, space):
        super().__init__(runtime, space)
        self._phase = [0] * self.transport.n_procs
        self._outstanding = [0] * self.transport.n_procs
        self._drain_futs: list[Future | None] = [None] * self.transport.n_procs

    # -- guards (table-referenced) ----------------------------------------
    def g_phase_stale_home(self, nid: int, handle) -> bool:
        return handle.region.home == nid and handle.meta.get("phase") != self._phase[nid]

    def g_phase_stale_remote(self, nid: int, handle) -> bool:
        return handle.region.home != nid and handle.meta.get("phase") != self._phase[nid]

    # -- reads: revalidate once per phase ---------------------------------
    def act_home_refresh(self, nid: int, handle):
        np.copyto(handle.data, handle.region.home_data)
        handle.meta["phase"] = self._phase[nid]
        return
        yield  # pragma: no cover - makes this a generator

    def act_refetch(self, nid: int, handle):
        region = handle.region
        data = yield from self.transport.rpc(
            nid,
            region.home,
            self._on_refetch,
            region.rid,
            payload_words=2,  # request is metadata-only; the reply carries data
            category="proto.PipelinedWrite.refetch",
        )
        np.copyto(handle.data, data)
        handle.meta["phase"] = self._phase[nid]
        self._count("refetch")

    def _on_refetch(self, node, src, fut, rid):
        region = self.regions.get(rid)
        self.transport.reply(
            fut,
            region.home_data.copy(),
            payload_words=region.size,
            category="proto.PipelinedWrite.refetch_data",
        )

    def _after_fetch(self, nid: int, copy, extra) -> None:
        copy.meta["phase"] = self._phase[nid]

    # -- writes: snapshot, delta, pipeline ----------------------------------
    def act_open_write(self, nid: int, handle):
        """Snapshot on the outermost start_write only.

        Write sections may nest or overlap (the compiler's hoisting and
        merging passes create exactly that — this protocol is registered
        *optimizable*, so it must tolerate it): a depth counter keeps a
        single snapshot per outermost section.
        """
        depth = handle.meta.get("wdepth", 0)
        handle.meta["wdepth"] = depth + 1
        if depth > 0:
            return
        # Make sure the copy we diff against is phase-fresh (start_read
        # handles both the home fast path and the remote refetch).
        if handle.meta.get("phase") != self._phase[nid]:
            yield from self.start_read(nid, handle)
        handle.meta["snapshot"] = np.array(handle.data, copy=True)

    def act_close_write(self, nid: int, handle):
        depth = handle.meta.get("wdepth", 0) - 1
        handle.meta["wdepth"] = max(depth, 0)
        if depth > 0:
            return
        snapshot = handle.meta.pop("snapshot", None)
        if snapshot is None:
            snapshot = np.zeros_like(handle.data)
        delta = handle.data - snapshot
        region = handle.region
        self._outstanding[nid] += 1
        self._count("delta")
        if nid == region.home:
            region.home_data += delta
            self._ack(nid)
        else:
            yield from self.transport.request(
                nid,
                region.home,
                self._on_delta,
                region.rid,
                delta,
                nid,
                payload_words=region.size,
                category="proto.PipelinedWrite.delta",
            )

    def _on_delta(self, node, src, rid, delta, writer):
        region = self.regions.get(rid)
        region.home_data += delta
        self.transport.post(
            node.nid,
            writer,
            self._on_delta_ack,
            writer,
            payload_words=1,
            category="proto.PipelinedWrite.delta_ack",
        )

    def _on_delta_ack(self, node, src, writer):
        self._ack(writer)

    def _ack(self, nid: int) -> None:
        self._outstanding[nid] -= 1
        if self._outstanding[nid] == 0 and self._drain_futs[nid] is not None:
            fut = self._drain_futs[nid]
            self._drain_futs[nid] = None
            fut.resolve(None)

    # -- synchronization -------------------------------------------------------
    def act_drain(self, nid: int):
        yield from self._drain(nid)

    def act_advance_phase(self, nid: int):
        self._phase[nid] += 1
        # Home copies must pick up deltas merged by other writers.
        for copy in self._copies[nid].values():
            if copy.region.home == nid:
                np.copyto(copy.data, copy.region.home_data)
        return
        yield  # pragma: no cover - makes this a generator

    def _drain(self, nid: int):
        if self._outstanding[nid] > 0:
            fut = Future(name=f"pw:drain@{nid}")
            self._drain_futs[nid] = fut
            yield fut

    def flush_node(self, nid: int):
        """Drain deltas then drop caches so home data is the single truth."""
        yield from self._drain(nid)
        yield from self.runtime.rendezvous(nid)
        self._copies[nid] = {
            rid: c for rid, c in self._copies[nid].items() if c.region.home == nid
        }
