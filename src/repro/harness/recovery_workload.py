"""Shared ring-write workload for crash-recovery scenarios.

The chaos harness's ``--crash`` matrix, the tier-1 recovery smokes,
and the tier-2 hypothesis sweep all drive the same program: node *i*
allocates one region (homed at *i*) and repeatedly writes the region
homed at its ring successor ``(i + 1) % n`` across barrier-separated
rounds, then reads its written region back and returns the snapshot.

Each round, node *i* also reads the region homed at ``(i + 2) % n``
(the one node ``i + 1`` writes), so every node touches the fabric every
round — the writer's invalidations/updates keep hitting the reader's
copy.  Without that, a writer that held its region exclusively would go
quiet on the network and a mid-run crash would be *unobservable*.

The shape is chosen so recovery outcomes are checkable:

* every region has exactly **one writer** (node ``home - 1``), so the
  workload is legal under single-writer protocols (DynamicUpdate) and
  under invalidation protocols alike;
* a survivor's return value depends **only on its own writes**, so
  after a crash the survivors' results must equal the crash-free
  baseline's results for the same nodes, bit for bit (the cross reads
  are traffic, not part of the returned value);
* the crashed node's region is written by a *survivor* and read by
  another, so re-homing sits on the hot path: both keep hitting the
  region straight through the epoch transition.

``n_procs`` must be at least 3 so the written and read regions are
distinct.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ring_program", "expected_result", "locked_counter_program"]


def round_values(nid: int, rnd: int, size: int) -> np.ndarray:
    """Deterministic payload for node ``nid``'s write in round ``rnd``."""
    return np.arange(size, dtype=np.float64) + 1000.0 * (rnd + 1) + nid


def expected_result(nid: int, rounds: int, size: int) -> np.ndarray:
    """What node ``nid`` returns when it survives all ``rounds``."""
    return round_values(nid, rounds - 1, size)


def ring_program(protocol: str = "SC", rounds: int = 4, size: int = 8):
    """Build the SPMD ring-write program (fresh shared state per call)."""
    shared: dict = {}

    def prog(ctx):
        n = ctx.n_procs
        sid = yield from ctx.new_space(protocol)
        rid = yield from ctx.gmalloc(sid, size)
        shared[ctx.nid] = rid
        yield from ctx.barrier()
        handle = yield from ctx.map(shared[(ctx.nid + 1) % n])
        watch = yield from ctx.map(shared[(ctx.nid + 2) % n])
        for rnd in range(rounds):
            yield from ctx.write_region(handle, round_values(ctx.nid, rnd, size))
            yield from ctx.read_region(watch)
            yield from ctx.barrier()
            yield from ctx.compute(500)
        data = yield from ctx.read_region(handle)
        yield from ctx.barrier()
        return data

    return prog


def locked_counter_program(increments: int = 3):
    """Lock-protected shared counter: every node adds ``increments``
    under the region lock.  Used to show a dead lock holder's lock is
    broken and re-granted (the counter keeps advancing)."""
    shared: dict = {}

    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            shared["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        rid = shared["rid"]
        handle = yield from ctx.map(rid)
        for _ in range(increments):
            yield from ctx.lock(rid)
            yield from ctx.start_write(handle)
            handle.data[0] += 1.0
            yield from ctx.end_write(handle)
            yield from ctx.unlock(rid)
            yield from ctx.compute(200)
        yield from ctx.barrier()
        value = yield from ctx.read_region(handle)
        return float(value[0])

    return prog
