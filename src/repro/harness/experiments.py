"""Reproduction drivers for every table and figure in the paper.

Workloads here are the *bench-scale* configurations: the paper's
shapes (who wins, by roughly what factor) at sizes a pure-Python
discrete-event simulation sweeps in seconds.  Every ``*Workload``
class also carries the paper's exact Table 3 inputs via ``.paper()``
for anyone willing to wait.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import acec_sources as K
from repro.apps import barnes_hut, bsc, em3d, tsp, water
from repro.compiler import OPT_BASE, OPT_DIRECT, OPT_LI, OPT_LI_MC, compile_source, run_compiled
from repro.facade import run_spmd

#: simulated processors used by the facade experiments (paper: 32)
BENCH_PROCS = 8

# --------------------------------------------------------------- workloads
FIG7_WORKLOADS = {
    "Barnes-Hut": lambda: barnes_hut.BHWorkload(n_bodies=64, n_steps=2, seed=6),
    "BSC": lambda: bsc.BSCWorkload(n_block_cols=10, block=10, band=3, seed=13),
    "EM3D": lambda: em3d.EM3DWorkload(n_e=96, n_h=96, degree=5, pct_remote=0.25, n_iters=6, seed=3),
    "TSP": lambda: tsp.TSPWorkload(n_cities=8, prefix_depth=2, seed=11),
    "Water": lambda: water.WaterWorkload(n_molecules=24, n_steps=2, seed=4),
}

_PROGRAMS = {
    "Barnes-Hut": (barnes_hut.bh_program, barnes_hut.SC_PLAN, barnes_hut.CUSTOM_PLAN),
    "BSC": (bsc.bsc_program, bsc.SC_PLAN, bsc.CUSTOM_PLAN),
    "EM3D": (em3d.em3d_program, em3d.SC_PLAN, em3d.STATIC_PLAN),
    "TSP": (tsp.tsp_program, tsp.SC_PLAN, tsp.CUSTOM_PLAN),
    "Water": (water.water_program, water.SC_PLAN, water.CUSTOM_PLAN),
}

TABLE4_KERNELS = {
    "Barnes-Hut": dict(
        wl=K.BHKernelWL(n=16, steps=2),
        source=lambda wl: K.bh_source(wl),
        hand=lambda wl: K.bh_hand_source(wl),
        host=lambda wl: K.bh_host_data(wl),
    ),
    "BSC": dict(
        wl=K.BSCKernelWL(nb=5, block=3, band=2),
        source=lambda wl: K.bsc_source(wl),
        hand=lambda wl: K.bsc_hand_source(wl),
        host=lambda wl: K.bsc_host_data(wl),
    ),
    "EM3D": dict(
        wl=K.EM3DKernelWL(n=20, degree=3, iters=6),
        source=lambda wl: K.em3d_source(wl),
        hand=lambda wl: K.em3d_hand_source(wl),
        host=lambda wl: K.em3d_host_data(wl, BENCH_PROCS),
    ),
    "TSP": dict(
        wl=K.TSPKernelWL(n_cities=6),
        source=lambda wl: K.tsp_source(wl),
        hand=lambda wl: K.tsp_source(wl, hand=True),
        host=lambda wl: K.tsp_host_data(wl),
    ),
    "Water": dict(
        wl=K.WaterKernelWL(n=10, steps=2),
        source=lambda wl: K.water_source(wl),
        hand=lambda wl: K.water_hand_source(wl),
        host=lambda wl: K.water_host_data(wl),
    ),
}


@dataclass
class Row:
    app: str
    variant: str
    cycles: int

    def __iter__(self):  # allows tuple() for table rendering
        return iter((self.app, self.variant, self.cycles))


# --------------------------------------------------------------- tracing
def plan_for(app: str, variant: str) -> dict:
    """Resolve a plan by short name: ``SC``/``custom`` for every app,
    plus ``dynamic``/``static`` for EM3D (the §3.3 ladder)."""
    program_fn, sc_plan, custom_plan = _PROGRAMS[app]
    plans = {"SC": sc_plan, "custom": custom_plan}
    if app == "EM3D":
        plans["dynamic"] = em3d.DYNAMIC_PLAN
        plans["static"] = em3d.STATIC_PLAN
    try:
        return plans[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r} for {app}; choose from {sorted(plans)}"
        ) from None


def trace_run(
    app: str,
    variant: str = "SC",
    backend: str = "ace",
    n_procs: int = BENCH_PROCS,
    capacity: int = 1 << 18,
    metrics=None,
):
    """Run one (app, plan) with observability on; returns ``(RunResult, TraceBuffer)``.

    This is the recording entry point ``tools/trace.py`` and the
    examples build on: same workloads as fig7a/fig7b, but with a
    :class:`repro.obs.TraceBuffer` wired through every layer.
    ``metrics`` is an optional :class:`repro.obs.MetricsWindow` fed
    inline at emit time (it sees every event even if the ring wraps).
    """
    from repro.obs import TraceBuffer

    program_fn, _, _ = _PROGRAMS[app]
    plan = plan_for(app, variant)
    wl = FIG7_WORKLOADS[app]()
    buf = TraceBuffer(capacity=capacity, metrics=metrics)
    res = run_spmd(program_fn(wl, plan), backend=backend, n_procs=n_procs, tracer=buf)
    return res, buf


# --------------------------------------------------------------- figure 7a
def fig7a_rows(n_procs: int = BENCH_PROCS) -> list[Row]:
    """Ace runtime vs CRL, both running the SC invalidation protocol."""
    rows = []
    for app, make_wl in FIG7_WORKLOADS.items():
        program_fn, sc_plan, _ = _PROGRAMS[app]
        wl = make_wl()
        for backend in ("crl", "ace"):
            res = run_spmd(program_fn(wl, sc_plan), backend=backend, n_procs=n_procs)
            rows.append(Row(app, backend, res.time))
    return rows


# --------------------------------------------------------------- figure 7b
def fig7b_rows(n_procs: int = BENCH_PROCS) -> list[Row]:
    """SC vs application-specific protocols, on Ace."""
    rows = []
    for app, make_wl in FIG7_WORKLOADS.items():
        program_fn, sc_plan, custom_plan = _PROGRAMS[app]
        wl = make_wl()
        for variant, plan in (("SC", sc_plan), ("custom", custom_plan)):
            res = run_spmd(program_fn(wl, plan), backend="ace", n_procs=n_procs)
            rows.append(Row(app, variant, res.time))
    return rows


# --------------------------------------------------------------- §3.3 ladder
def sec33_ladder_rows(n_procs: int = BENCH_PROCS) -> list[Row]:
    """EM3D: SC → dynamic update → static update (§3.3's 3.5x / 5x)."""
    wl = FIG7_WORKLOADS["EM3D"]()
    rows = []
    for variant, plan in (
        ("SC", em3d.SC_PLAN),
        ("DynamicUpdate", em3d.DYNAMIC_PLAN),
        ("StaticUpdate", em3d.STATIC_PLAN),
    ):
        res = run_spmd(em3d.em3d_program(wl, plan), backend="ace", n_procs=n_procs)
        rows.append(Row("EM3D", variant, res.time))
    return rows


# --------------------------------------------------------------- table 4
TABLE4_LEVELS = [OPT_BASE, OPT_LI, OPT_LI_MC, OPT_DIRECT]


def table4_rows(apps: list[str] | None = None, n_procs: int = 4) -> list[Row]:
    """Compiler-optimization ladder + hand-optimized, per kernel."""
    rows = []
    for app, spec in TABLE4_KERNELS.items():
        if apps is not None and app not in apps:
            continue
        wl = spec["wl"]
        host = spec["host"](wl)
        src = spec["source"](wl)
        for level in TABLE4_LEVELS:
            run = run_compiled(compile_source(src, opt=level), n_procs=n_procs, host_data=host)
            rows.append(Row(app, level.name, run.time))
        hand = run_compiled(
            compile_source(spec["hand"](wl), opt=OPT_BASE), n_procs=n_procs, host_data=host
        )
        rows.append(Row(app, "hand", hand.time))
    return rows


# --------------------------------------------------------------- table 3
def table3_rows() -> list[tuple]:
    """The paper's benchmark inputs, plus this reproduction's bench scale."""
    return [
        ("Barnes-Hut", "16,384 bodies, 4 steps, tol=1.0, eps=0.5",
         str(FIG7_WORKLOADS["Barnes-Hut"]())),
        ("BSC", "Tk15.O", str(FIG7_WORKLOADS["BSC"]())),
        ("EM3D", "1000 E + 1000 H, 20% remote, degree 10, 100 steps",
         str(FIG7_WORKLOADS["EM3D"]())),
        ("TSP", "12 cities", str(FIG7_WORKLOADS["TSP"]())),
        ("Water", "512 molecules, 3 steps", str(FIG7_WORKLOADS["Water"]())),
    ]


# --------------------------------------------------------------- rendering
def format_table(title: str, header: list[str], rows: list) -> str:
    """Plain-text table for bench output and EXPERIMENTS.md."""
    str_rows = [[str(c) for c in tuple(r)] for r in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) for i, h in enumerate(header)]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, " | ".join(h.ljust(w) for h, w in zip(header, widths)), sep]
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def by_app(rows: list[Row]) -> dict:
    """{app: {variant: cycles}} convenience view."""
    out: dict = {}
    for row in rows:
        out.setdefault(row.app, {})[row.variant] = row.cycles
    return out
