"""Experiment drivers shared by ``benchmarks/`` and EXPERIMENTS.md.

Each paper artifact (Figure 7a, Figure 7b, Table 4, the §3.3 EM3D
ladder) has a function returning structured rows; the benchmark files
render them and assert the paper's qualitative shapes.
"""

from repro.harness.experiments import (
    BENCH_PROCS,
    by_app,
    fig7a_rows,
    fig7b_rows,
    format_table,
    sec33_ladder_rows,
    table3_rows,
    table4_rows,
)

__all__ = [
    "BENCH_PROCS",
    "by_app",
    "fig7a_rows",
    "fig7b_rows",
    "format_table",
    "sec33_ladder_rows",
    "table3_rows",
    "table4_rows",
]
