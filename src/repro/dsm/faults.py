"""Deterministic fault injection and reliable delivery for the coherence core.

The paper's runtime assumes a perfectly reliable Active-Messages
fabric (CM-5 CMAML), so every protocol in the library silently depends
on exactly-once, in-order delivery.  This module cashes in the
transport layer's promise that "a recording/fault-injecting shim slots
in by providing the same eight operations":

:class:`FaultPlan`
    A seeded, fully deterministic description of what goes wrong:
    per-category and per-link drop/duplicate/delay rates, node
    crash-stop and stall windows, permanently dead links, and targeted
    one-shot faults.  Same plan + same message stream → same faults,
    always — a chaos failure replays from its plan alone.
:class:`FaultTransport`
    A :class:`~repro.dsm.transport.Transport` wrapping the simulated
    machine that applies a fault plan at the injection point.  It sets
    ``reliable = False``, which makes every protocol layer install its
    retry/dedup variants at construction (the same instance-attribute
    swap idiom as the machine's traced paths — with faults off no
    ``FaultTransport`` exists and the fast paths are untouched).
:class:`RetryKit`
    Sequence-numbered at-least-once delivery: reliable RPC and ack'd
    one-way sends with timeout/retry/exponential backoff.  Receivers
    dedup on ``(src, seq)`` (see :class:`DedupTable`), so at-least-once
    transport stays semantically exactly-once.
:class:`LivenessWatchdog` / :class:`StallReport` / :class:`StallError`
    Retry exhaustion converts a silent stall into a structured report:
    blocked tasks with their wait reasons, every in-flight reliable
    call (category, link, region, attempts), and the non-quiescent
    directory state.  :class:`StallError` extends
    :class:`~repro.sim.errors.DeadlockError`, so harnesses that catch
    deadlocks catch stalls too.

Modeling notes
--------------
* **Crash-stop** is modeled at the fabric: from the crash cycle on,
  every message from or to the crashed node is dropped.  The node's
  task keeps running locally (the kernel cannot kill a generator
  mid-yield), but it can no longer be heard — the usual fail-stop
  abstraction for a machine whose network interface died.
* **The control network stays reliable.**  ``hw_barrier`` models the
  CM-5's dedicated barrier network, which had its own flow control;
  faults apply to the data network only.
* **Replies** carry no explicit source/destination (the future is the
  address), so only category-default fault rates apply to them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from functools import partial
from random import Random

from repro.dsm.transport import Transport, as_transport
from repro.machine.stats import intern_key
from repro.sim.errors import DeadlockError
from repro.sim.future import _UNSET, Future

_NEVER = float("inf")
_NO_FAULT = (0,)  # shared verdict: one delivery, no extra delay
_DEFER = object()  # sentinel: invalidation seen but deferred (no ack yet)

#: Cap on the in-memory fault log (counters keep exact totals beyond it).
_LOG_CAP = 65536


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LinkFaults:
    """Fault rates for one link/category: probabilities per message."""

    drop: float = 0.0
    dup: float = 0.0
    delay: float = 0.0
    delay_cycles: int = 1500  # max extra cycles a delayed message waits

    @property
    def any(self) -> bool:
        return bool(self.drop or self.dup or self.delay)


@dataclass(frozen=True)
class OneShot:
    """A targeted fault: fires on the nth message matching the filter.

    ``None`` filter fields match anything; ``action`` is ``"drop"``,
    ``"dup"``, or ``"delay"`` (``delay_cycles`` extra).
    """

    action: str
    category: str | None = None
    src: int | None = None
    dst: int | None = None
    nth: int = 1
    delay_cycles: int = 1000

    def __post_init__(self):
        if self.action not in ("drop", "dup", "delay"):
            raise ValueError(f"unknown one-shot action {self.action!r}")
        if self.nth < 1:
            raise ValueError(f"one-shot nth must be >= 1, got {self.nth}")


@dataclass
class FaultPlan:
    """Everything that will go wrong, decided by ``seed`` alone.

    The plan's RNG is consumed in message-send order; the simulation
    itself is deterministic, so the whole faulted run is a pure
    function of (program, plan).
    """

    seed: int = 0
    default: LinkFaults = field(default_factory=LinkFaults)
    per_category: dict = field(default_factory=dict)  # category -> LinkFaults
    per_link: dict = field(default_factory=dict)  # (src, dst) -> LinkFaults
    crashes: dict = field(default_factory=dict)  # node -> crash-stop cycle
    stalls: dict = field(default_factory=dict)  # node -> (start, end, extra_delay)
    link_down: dict = field(default_factory=dict)  # (src, dst) -> dead-from cycle
    one_shots: list = field(default_factory=list)  # [OneShot, ...]

    # -- stock plans ----------------------------------------------------
    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """A plan that injects nothing (useful as a sweep baseline)."""
        return cls(seed=seed)

    @classmethod
    def canonical(cls, seed: int) -> "FaultPlan":
        """The chaos harness's standard drop/duplicate/reorder mix."""
        return cls(seed=seed, default=LinkFaults(drop=0.02, dup=0.02, delay=0.05))

    @classmethod
    def drop_retry(cls, seed: int, drop: float = 0.05) -> "FaultPlan":
        """Drops only: the smallest plan that exercises every retry path."""
        return cls(seed=seed, default=LinkFaults(drop=drop))

    @classmethod
    def dead_link(cls, src: int, dst: int, at: int = 0, seed: int = 0) -> "FaultPlan":
        """A permanently silent link from cycle ``at`` on (stall test)."""
        return cls(seed=seed, link_down={(src, dst): at})

    @classmethod
    def crash(cls, node: int, at: int, seed: int = 0,
              faults: LinkFaults | None = None) -> "FaultPlan":
        """Crash-stop ``node`` at cycle ``at`` (recovery scenarios).

        ``faults`` optionally layers lossy-link behavior on top, so one
        plan can exercise retry/dedup *and* crash recovery together.
        """
        return cls(seed=seed, default=faults or LinkFaults(), crashes={node: at})

    # -- serialization (chaos artifacts) --------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "default": asdict(self.default),
            "per_category": {cat: asdict(lf) for cat, lf in self.per_category.items()},
            "per_link": {f"{s}->{d}": asdict(lf) for (s, d), lf in self.per_link.items()},
            "crashes": {str(n): c for n, c in self.crashes.items()},
            "stalls": {str(n): list(w) for n, w in self.stalls.items()},
            "link_down": {f"{s}->{d}": c for (s, d), c in self.link_down.items()},
            "one_shots": [asdict(s) for s in self.one_shots],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def describe(self) -> str:
        d = self.default
        bits = [f"seed={self.seed}", f"drop={d.drop}", f"dup={d.dup}", f"delay={d.delay}"]
        for name in ("per_category", "per_link", "crashes", "stalls", "link_down", "one_shots"):
            val = getattr(self, name)
            if val:
                bits.append(f"{name}={len(val)}")
        return "FaultPlan(" + ", ".join(bits) + ")"


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff schedule for reliable calls.

    The timeout doubles per attempt up to ``max_timeout``; after
    ``max_attempts`` unacknowledged sends the watchdog trips and the
    run terminates with a :class:`StallError`.  The defaults give a
    total patience of several hundred thousand cycles — far beyond any
    legitimate wait in the benched apps — so a trip means a genuinely
    dead peer or link, not a slow one.
    """

    timeout: int = 6000
    max_timeout: int = 96000
    max_attempts: int = 12

    def timeout_for(self, attempt: int) -> int:
        t = self.timeout << (attempt - 1)
        return t if t < self.max_timeout else self.max_timeout


# ---------------------------------------------------------------------------
# stall reporting
# ---------------------------------------------------------------------------
@dataclass
class StallReport:
    """Structured picture of a stalled run (what a hang looks like inside).

    ``blocked_tasks`` holds the kernel's :class:`~repro.sim.kernel.Task`
    objects; ``tasks``/``in_flight``/``directory`` are plain dicts safe
    to JSON-serialize into CI artifacts.
    """

    now: int
    reason: str
    blocked_tasks: list
    tasks: list  # [{"task": name, "waiting_on": future name}, ...]
    in_flight: list  # [{"category", "src", "dst", "region", "attempts", ...}, ...]
    directory: list  # non-quiescent DirEntry dumps
    #: Nodes most likely responsible for the stall: destinations of
    #: repeatedly-retried in-flight calls (the silent ends of the stuck
    #: links), the tripping call's destination — or the failure
    #: detector's declared-dead node — first.
    suspects: list = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"stall at cycle {self.now}: {self.reason}"]
        if self.suspects:
            lines.append("suspects: " + ", ".join(f"node {n}" for n in self.suspects))
        if self.tasks:
            lines.append(
                "blocked: "
                + "; ".join(f"{t['task']} waiting on {t['waiting_on']}" for t in self.tasks)
            )
        for call in self.in_flight:
            region = "" if call.get("region") is None else f" region {call['region']}"
            lines.append(
                f"in flight: {call['category']} node {call['src']} -> "
                f"home {call['dst']}{region}, {call['attempts']} attempts "
                f"over {call['age']} cycles"
            )
        for ent in self.directory:
            lines.append(
                f"directory[{ent['prefix']}]: region {ent['rid']} home {ent['home']} "
                f"busy={ent['busy']} owner={ent['owner']} sharers={ent['sharers']} "
                f"queued={ent['queued']} pending={ent['pending']}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "now": self.now,
            "reason": self.reason,
            "suspects": self.suspects,
            "tasks": self.tasks,
            "in_flight": self.in_flight,
            "directory": self.directory,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=repr)


class StallError(DeadlockError):
    """A reliable call exhausted its retries: the run is stuck.

    Extends :class:`DeadlockError` so existing harnesses that catch
    deadlocks catch stalls; carries the full :class:`StallReport`.
    """

    def __init__(self, report: StallReport):
        super().__init__(report.blocked_tasks)
        self.report = report
        self.args = (report.summary(),)


class LivenessWatchdog:
    """Turns retry exhaustion into a :class:`StallReport`.

    Protocol services register themselves at construction (directory
    state providers, and the message categories whose first argument
    names a region), so the report can say *which region at which home*
    is stuck rather than just which task.
    """

    def __init__(self, transport: "FaultTransport"):
        self._transport = transport
        self._sim = transport.sim
        self.kit: RetryKit | None = None
        self._directories: list = []
        self._rid_categories: set[str] = set()

    def register_directory(self, directory) -> None:
        """Register a DirectoryService: state dumps + rid-first categories."""
        self._directories.append(directory)
        p = directory.prefix
        self._rid_categories.update(
            f"{p}.{op}" for op in ("read_req", "write_req", "flush", "inval", "map_lookup")
        )

    def register_rid_categories(self, categories) -> None:
        """Declare message categories whose first payload arg is a region id."""
        self._rid_categories.update(categories)

    def report(self, reason: str) -> StallReport:
        sim = self._sim
        blocked = [t for t in sim._tasks if t.blocked_on is not None]
        tasks = [
            {"task": t.name, "waiting_on": getattr(t.blocked_on, "name", "") or "<unnamed>"}
            for t in blocked
        ]
        in_flight = []
        suspects: list = []
        if self.kit is not None:
            for pend in sorted(self.kit.pending.values(), key=lambda p: p.seq):
                in_flight.append(self._describe(pend))
                # A destination that has eaten retries without acking is
                # the silent end of a stuck link: a prime suspect.
                if pend.attempts >= 2 and pend.dst not in suspects:
                    suspects.append(pend.dst)
        suspects.sort()
        directory = []
        for d in self._directories:
            directory.extend(d.dump_state())
        return StallReport(
            now=sim.now,
            reason=reason,
            blocked_tasks=blocked,
            tasks=tasks,
            in_flight=in_flight,
            directory=directory,
            suspects=suspects,
        )

    def _describe(self, pend: "_PendingCall") -> dict:
        args = pend.call_args
        region = None
        if pend.category in self._rid_categories and args and isinstance(args[0], int):
            region = args[0]
        return {
            "seq": pend.seq,
            "category": pend.category,
            "src": pend.src,
            "dst": pend.dst,
            "region": region,
            "args": tuple(_short(a) for a in args),
            "attempts": pend.attempts,
            "age": self._sim.now - pend.born,
        }

    def trip(self, pend: "_PendingCall") -> None:
        """Raise a :class:`StallError` for an exhausted call.

        Called from a retry-timer event, so the raise propagates out of
        :meth:`Simulator.run` — the run terminates with a report
        instead of spinning or hanging.
        """
        desc = self._describe(pend)
        region = "" if desc["region"] is None else f" for region {desc['region']}"
        reason = (
            f"{desc['category']}{region} from node {desc['src']} to node {desc['dst']} "
            f"unacknowledged after {pend.attempts} attempts"
        )
        report = self.report(reason)
        # The tripping call's destination leads the suspect list.
        report.suspects = [pend.dst] + [s for s in report.suspects if s != pend.dst]
        raise StallError(report)


def _short(value):
    """Artifact-friendly rendering of one message argument."""
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    shape = getattr(value, "shape", None)
    if shape is not None:
        return f"<array{tuple(shape)}>"
    return repr(value)


# ---------------------------------------------------------------------------
# home-side dedup
# ---------------------------------------------------------------------------
#: Dedup-table GC: a settled entry may be purged once its seq is below
#: the retry kit's low watermark (no in-flight call could still produce
#: a duplicate of it at the sender) AND it has aged past the longest
#: delay any in-the-wire duplicate could still carry.  Both conditions
#: are required — a watermark alone misses a fault-delayed duplicate of
#: an already-settled call, which must hit the recorded-reply path, not
#: re-execute the handler.
_GC_LAG = 250_000
#: Amortization: scan for purgeable entries every this many recordings.
_GC_EVERY = 1024


class DedupTable:
    """Exactly-once admission for sequence-numbered reliable requests.

    The home-side half of the reliability contract: a request keyed
    ``(src, seq)`` is *admitted* once; while its effects are still in
    flight, duplicates are ignored (the original's reply will come);
    after the reply is sent, duplicates get the recorded reply
    re-transmitted without re-executing the handler.  Local calls
    (``seq is None`` — same-node requests never retransmit) bypass the
    table entirely.

    Recorded replies are garbage-collected (see ``_GC_LAG``) so the
    table plateaus instead of growing for the whole run.
    """

    __slots__ = (
        "_reply",
        "_counts",
        "_k_dup",
        "_k_replay",
        "_inflight",
        "_fut_keys",
        "_sent",
        "_sim",
        "_kit",
        "_since_gc",
    )

    def __init__(self, transport: Transport, prefix: str):
        self._reply = transport.reply
        self._counts = transport.stats.counter_ref()
        self._k_dup = intern_key(prefix, "dup_request")
        self._k_replay = intern_key(prefix, "replayed_reply")
        self._inflight: set = set()
        self._fut_keys: dict = {}  # fut -> (src, seq), popped at reply
        self._sent: dict = {}  # (src, seq) -> (value, payload_words, category, cycle)
        self._sim = transport.sim
        self._kit = transport.kit
        self._since_gc = 0

    def admit(self, src: int, seq: int | None, fut: Future) -> bool:
        """True exactly once per logical request; replays recorded replies."""
        if seq is None:
            return True
        key = (src, seq)
        sent = self._sent.get(key)
        if sent is not None:
            value, payload_words, category, _stamp = sent
            self._counts[self._k_replay] += 1
            self._reply(fut, value, payload_words=payload_words, category=category)
            return False
        if key in self._inflight:
            self._counts[self._k_dup] += 1
            return False
        self._inflight.add(key)
        self._fut_keys[fut] = key
        return True

    def reply(self, fut: Future, value=None, payload_words: int = 0, category: str = "am.reply"):
        """Drop-in for ``transport.reply`` that records what was sent."""
        key = self._fut_keys.pop(fut, None)
        if key is not None:
            self._inflight.discard(key)
            self._sent[key] = (value, payload_words, category, self._sim.now)
            self._since_gc += 1
            if self._since_gc >= _GC_EVERY:
                self._gc()
        self._reply(fut, value, payload_words=payload_words, category=category)

    def _gc(self) -> None:
        self._since_gc = 0
        watermark = _kit_watermark(self._kit)
        horizon = self._sim.now - _GC_LAG
        sent = self._sent
        for key in [k for k, v in sent.items() if k[1] < watermark and v[3] < horizon]:
            del sent[key]


def _kit_watermark(kit) -> int:
    """Lowest seq a sender could still retransmit (no pending → next seq)."""
    if kit.pending:
        return min(kit.pending)
    return kit._seq


class SeenOnce:
    """Dedup for one-way ack'd notifications keyed ``(src, seq)``.

    Pass the (fault) transport to enable the same watermark+age GC as
    :class:`DedupTable`; without it the set grows for the whole run
    (the original, unbounded behavior).
    """

    __slots__ = ("_seen", "_sim", "_kit", "_since_gc")

    def __init__(self, transport: Transport | None = None):
        self._seen: dict = {}  # (src, seq) -> cycle recorded
        self._sim = transport.sim if transport is not None else None
        self._kit = transport.kit if transport is not None else None
        self._since_gc = 0

    def first(self, src: int, seq: int | None) -> bool:
        if seq is None:
            return True
        key = (src, seq)
        if key in self._seen:
            return False
        if self._sim is not None:
            self._seen[key] = self._sim.now
            self._since_gc += 1
            if self._since_gc >= _GC_EVERY:
                self._gc()
        else:
            self._seen[key] = 0
        return True

    def _gc(self) -> None:
        self._since_gc = 0
        watermark = _kit_watermark(self._kit)
        horizon = self._sim.now - _GC_LAG
        seen = self._seen
        for key in [k for k, stamp in seen.items() if k[1] < watermark and stamp < horizon]:
            del seen[key]


# ---------------------------------------------------------------------------
# the fault transport
# ---------------------------------------------------------------------------
class FaultTransport(Transport):
    """A machine-backed transport that injects a :class:`FaultPlan`.

    Every send funnels through :meth:`_send`, which asks the plan for a
    verdict — deliver normally, drop, duplicate, or delay — and then
    drives the machine's own (possibly traced) delivery path for each
    surviving copy, so counters, traces, and latency math stay the
    machine's.  Replies go through a resolve-once gate, since a
    duplicated or replayed reply must not resolve a future twice.
    """

    reliable = False
    #: Cluster generation: bumped by the recovery manager at each death
    #: declaration.  Reliable calls are stamped with the epoch they were
    #: issued in (:attr:`_PendingCall.epoch`); the fabric fence installed
    #: at a death discards traffic from/to dead incarnations.
    epoch = 0

    def __init__(
        self,
        fabric,
        plan: FaultPlan,
        retry_policy: RetryPolicy | None = None,
        on_crash: str | None = None,
    ):
        base = as_transport(fabric)
        machine = base.machine
        if machine is None:
            raise TypeError("FaultTransport needs a machine-backed transport to wrap")
        self.base = base
        self.plan = plan
        self.machine = machine
        self.sim = machine.sim
        self.stats = machine.stats
        self.tracer = machine.tracer
        self.nodes = machine.nodes
        self.n_procs = machine.n_procs
        self.after = machine.sim.schedule
        self.hw_barrier = machine.hw_barrier  # control network: always reliable
        self._deliver = machine._deliver  # the traced variant when tracing is on
        self._d_send = machine._d_send
        self._send_overhead = machine.config.am_send_overhead
        self._reply_base = machine._reply_base
        self._per_word = machine._per_word
        self._rng = Random(plan.seed)
        self._shot_hits = [0] * len(plan.one_shots)
        self._counts = machine.stats.counter_ref()
        self._k = {
            v: intern_key("fault", v)
            for v in ("drop", "dup", "delay", "crash", "link_down", "stall")
        }
        self._k_dup_reply = intern_key("fault", "dup_reply_suppressed")
        self._obs = machine.tracer.tracer("faults") if machine.tracer is not None else None
        #: bounded in-memory fault log: (cycle, verdict, category, src, dst)
        self.log: list = []
        self.watchdog = LivenessWatchdog(self)
        self.retry_policy = retry_policy or RetryPolicy()
        self.kit = RetryKit(self, self.retry_policy, self.watchdog)
        if on_crash is not None:
            # Constructed last so the manager can wrap fully-initialized
            # transport surfaces (hw_barrier, _verdict).  Services built
            # on top of this transport find it as ``self.recovery`` and
            # register themselves — with on_crash unset this attribute
            # stays the Transport class default (None) and no recovery
            # code exists anywhere in the run.
            from repro.dsm.recovery import RecoveryManager

            self.recovery = RecoveryManager(self, on_crash)

    # -- Transport operations -------------------------------------------
    def request(self, src, dst, handler, *args, payload_words: int = 0, category: str = "am.request"):
        yield self._d_send
        self._send(src, dst, handler, args, payload_words, category)

    def post(self, src, dst, handler, *args, payload_words: int = 0, category: str = "am.post"):
        self.sim.schedule(
            self._send_overhead,
            partial(self._send, src, dst, handler, args, payload_words, category),
        )

    def rpc(self, src, dst, handler, *args, payload_words: int = 0, category: str = "am.rpc"):
        # NOTE: the *raw* rpc has no retries — on a lossy link it can
        # block forever.  Fault-hardened layers use ``self.kit.rpc``;
        # this path exists for protocols that have not been hardened
        # (they are simply not chaos-safe).
        fut = Future(name="rpc:" + category)
        yield self._d_send
        self._send(src, dst, handler, (fut, *args), payload_words, category)
        value = yield fut
        return value

    def reply(self, fut, value=None, payload_words: int = 0, category: str = "am.reply"):
        deliveries = self._verdict(None, None, category)
        if deliveries is None:
            return
        machine = self.machine
        counts = self._counts
        key = machine._msg_key(category)
        base_delay = self._reply_base + self._per_word * payload_words
        for extra in deliveries:
            counts[key] += 1
            counts["msg.total"] += 1
            counts["msg.words"] += payload_words
            self.sim.schedule(base_delay + extra, partial(self._resolve_once, fut, value))

    def _resolve_once(self, fut, value) -> None:
        # Duplicated replies, replayed recorded replies, and late
        # replies to an already-retried call all land here; only the
        # first resolves the future.
        if fut._value is _UNSET and fut._exc is None:
            fut.resolve(value)
        else:
            self._counts[self._k_dup_reply] += 1

    # -- injection point -------------------------------------------------
    def _send(self, src, dst, handler, args, payload_words, category) -> None:
        deliveries = self._verdict(src, dst, category)
        if deliveries is None:
            return
        deliver = self._deliver
        for extra in deliveries:
            if extra:
                self.sim.schedule(
                    extra, partial(deliver, src, dst, handler, args, payload_words, category)
                )
            else:
                deliver(src, dst, handler, args, payload_words, category)

    def _verdict(self, src, dst, category):
        """Decide this message's fate: ``None`` (drop) or extra-delay list."""
        plan = self.plan
        now = self.sim.now
        # Structural faults first (no randomness): crashed endpoints,
        # dead links, stall windows.
        crashes = plan.crashes
        if crashes and (
            crashes.get(src, _NEVER) <= now or crashes.get(dst, _NEVER) <= now
        ):
            self._note("crash", category, src, dst)
            return None
        if plan.link_down:
            down_at = plan.link_down.get((src, dst))
            if down_at is not None and now >= down_at:
                self._note("link_down", category, src, dst)
                return None
        base_extra = 0
        if plan.stalls:
            for nid in (src, dst):
                win = plan.stalls.get(nid)
                if win is not None and win[0] <= now < win[1]:
                    base_extra += win[2]
            if base_extra:
                self._note("stall", category, src, dst)
        # Targeted one-shots.
        for i, shot in enumerate(plan.one_shots):
            if (
                (shot.category is None or shot.category == category)
                and (shot.src is None or shot.src == src)
                and (shot.dst is None or shot.dst == dst)
            ):
                self._shot_hits[i] += 1
                if self._shot_hits[i] == shot.nth:
                    self._note(shot.action, category, src, dst)
                    if shot.action == "drop":
                        return None
                    if shot.action == "dup":
                        return (base_extra, base_extra + shot.delay_cycles)
                    return (base_extra + shot.delay_cycles,)
        # Seeded rates.
        lf = None
        if plan.per_link:
            lf = plan.per_link.get((src, dst))
        if lf is None and plan.per_category:
            lf = plan.per_category.get(category)
        if lf is None:
            lf = plan.default
        if lf.any:
            rng = self._rng
            if lf.drop and rng.random() < lf.drop:
                self._note("drop", category, src, dst)
                return None
            extra = base_extra
            if lf.delay and rng.random() < lf.delay:
                extra += 1 + rng.randrange(lf.delay_cycles)
                self._note("delay", category, src, dst)
            if lf.dup and rng.random() < lf.dup:
                self._note("dup", category, src, dst)
                return (extra, base_extra + 1 + rng.randrange(lf.delay_cycles))
            if extra:
                return (extra,)
            return _NO_FAULT
        if base_extra:
            return (base_extra,)
        return _NO_FAULT

    def _note(self, verdict, category, src, dst) -> None:
        self._counts[self._k[verdict]] += 1
        if len(self.log) < _LOG_CAP:
            self.log.append((self.sim.now, verdict, category, src, dst))
        if self._obs is not None:
            self._obs.emit(
                self.sim.now,
                "fault." + verdict,
                node=src if isinstance(src, int) else -1,
                data={"category": category, "src": src, "dst": dst},
            )

    # -- introspection ---------------------------------------------------
    def fault_counts(self) -> dict:
        """Fault counters (drop/dup/delay/... -> count) for reports."""
        counts = self.stats.counter_ref()
        out = {v: counts[k] for v, k in self._k.items() if counts[k]}
        if counts[self._k_dup_reply]:
            out["dup_reply_suppressed"] = counts[self._k_dup_reply]
        return out


# ---------------------------------------------------------------------------
# reliable delivery
# ---------------------------------------------------------------------------
class _PendingCall:
    __slots__ = (
        "seq",
        "fut",
        "src",
        "dst",
        "handler",
        "args",
        "call_args",
        "payload_words",
        "category",
        "attempts",
        "born",
        "epoch",
    )

    def __init__(self, seq, fut, src, dst, handler, args, call_args, payload_words, category, born, epoch):
        self.seq = seq
        self.fut = fut
        self.src = src
        self.dst = dst
        self.handler = handler
        self.args = args  # full resend tuple: (fut, *call_args, seq)
        self.call_args = call_args
        self.payload_words = payload_words
        self.category = category
        self.attempts = 0
        self.born = born
        self.epoch = epoch  # cluster generation the call was issued in


class RetryKit:
    """Sequence-numbered reliable calls over an unreliable transport.

    ``kit.rpc`` matches ``transport.rpc``'s signature so protocol
    layers can swap it in as their ``self._rpc``; the handler receives
    the usual ``(node, src, fut, *args)`` plus a trailing ``seq``
    keyword-compatible positional (reliable handlers declare
    ``seq=None`` so direct local calls work unchanged).  ``kit.post``
    is the ack'd one-way send for handler context: it retries until the
    receiver's reply resolves its future, invoking ``on_ack(value)``
    exactly once.

    Retries re-send the *same* future object — messages carry Python
    object references, so the original and every retransmission race to
    resolve one cell and the transport's resolve-once gate picks the
    winner.  One shared sequence counter gives every logical call a
    globally unique ``seq``; receivers dedup on ``(src, seq)``.
    """

    def __init__(self, transport: FaultTransport, policy: RetryPolicy, watchdog: LivenessWatchdog):
        self._transport = transport
        self._after = transport.after
        self._policy = policy
        self._watchdog = watchdog
        watchdog.kit = self
        self._seq = 0
        self.pending: dict[int, _PendingCall] = {}
        self._counts = transport.stats.counter_ref()
        self._k_retry = intern_key("rel", "retry")
        self._k_calls = intern_key("rel", "calls")
        self._obs = transport._obs
        self._d_send = transport._d_send

    def _track(self, fut, src, dst, handler, call_args, payload_words, category) -> _PendingCall:
        seq = self._seq
        self._seq = seq + 1
        pend = _PendingCall(
            seq,
            fut,
            src,
            dst,
            handler,
            (fut, *call_args, seq),
            call_args,
            payload_words,
            category,
            self._transport.sim.now,
            self._transport.epoch,
        )
        self.pending[seq] = pend
        self._counts[self._k_calls] += 1
        return pend

    def rpc(self, src, dst, handler, *args, payload_words: int = 0, category: str = "rel.rpc"):
        """Generator: reliable request/reply round trip (drop-in for rpc)."""
        fut = Future(name="rel:" + category)
        pend = self._track(fut, src, dst, handler, args, payload_words, category)
        yield self._d_send
        pend.attempts = 1
        self._transport._send(src, dst, handler, pend.args, payload_words, category)
        self._after(self._policy.timeout_for(1), partial(self._check, pend))
        value = yield fut
        self.pending.pop(pend.seq, None)
        return value

    def post(
        self,
        src,
        dst,
        handler,
        *args,
        payload_words: int = 0,
        category: str = "rel.post",
        on_ack=None,
    ) -> Future:
        """Ack'd one-way send from handler context; returns the ack future."""
        fut = Future(name="rel:" + category)
        if on_ack is not None:
            fut.add_callback(partial(_ack_adapter, on_ack))
        pend = self._track(fut, src, dst, handler, args, payload_words, category)
        pend.attempts = 1
        # First attempt pays the sender overhead like transport.post.
        self._transport.post(
            src, dst, handler, *pend.args, payload_words=payload_words, category=category
        )
        self._after(self._policy.timeout_for(1), partial(self._check, pend))
        return fut

    def _check(self, pend: _PendingCall) -> None:
        if self.pending.get(pend.seq) is not pend:
            # Completed (rpc pops on return) or canceled — the crash
            # recovery sweep removes abandoned calls from the table, and
            # their orphaned retry timers must go quiet instead of
            # retrying into the fence until the watchdog trips.
            return
        fut = pend.fut
        if fut._value is not _UNSET or fut._exc is not None:
            self.pending.pop(pend.seq, None)
            return
        if pend.attempts >= self._policy.max_attempts:
            self._watchdog.trip(pend)
            return  # pragma: no cover - trip always raises
        pend.attempts += 1
        self._counts[self._k_retry] += 1
        if self._obs is not None:
            self._obs.emit(
                self._transport.sim.now,
                "rel.retry",
                node=pend.src,
                data={"category": pend.category, "dst": pend.dst, "attempt": pend.attempts},
            )
        self._transport.post(
            pend.src,
            pend.dst,
            pend.handler,
            *pend.args,
            payload_words=pend.payload_words,
            category=pend.category,
        )
        self._after(self._policy.timeout_for(pend.attempts), partial(self._check, pend))


def _ack_adapter(on_ack, fut) -> None:
    if fut._exc is None:
        on_ack(fut._value)
