"""The transport layer: what the coherence core needs from a fabric.

The directory protocol above this layer is pure policy — it decides
*what* messages to send and *when*, but performs every send, RPC,
reply, and deferred callback through the narrow interface defined
here.  Today's only implementation wraps the simulated active-message
:class:`~repro.machine.machine.Machine`; a real-parallel backend (or a
recording/fault-injecting shim) slots in by providing the same eight
operations.

Zero-cost boundary
------------------
:class:`SimTransport` binds the machine's methods directly as instance
attributes: ``transport.rpc`` *is* ``machine.rpc`` (the traced variant
when observability is on, since the machine swaps those in during its
own construction).  A call through the transport therefore executes
the identical code object, with the identical ``(delay, seq)`` draws,
as a call on the machine — the layer boundary costs no simulated
cycles and no host-side indirection.  DESIGN.md §8 documents this
invariant; the golden-trace pins enforce it.
"""

from __future__ import annotations

from typing import Callable

from repro.machine import Machine


class Transport:
    """Abstract message fabric joining ``n_procs`` nodes.

    Implementations provide:

    ``request(src, dst, handler, *args, payload_words=, category=)``
        Generator: one-way send from *task* context (charges the
        caller's send overhead, then returns once injected).
    ``post(src, dst, handler, *args, payload_words=, category=)``
        One-way send from *handler* context (no task to charge).
    ``rpc(src, dst, handler, *args, payload_words=, category=)``
        Generator: request/reply round trip; the handler receives a
        ``Future`` first and must eventually :meth:`reply` to it.
    ``reply(fut, value=None, payload_words=, category=)``
        Resolve an RPC future after the reply latency.
    ``after(delay, fn)``
        Run ``fn()`` after ``delay`` simulated cycles (handler-side
        deferred work, e.g. invalidation-handler cost).
    ``defer_post(delay, src, dst, handler, *args, ...)``
        ``after(delay)`` followed by ``post`` as one operation, so a
        traced fabric can keep the causal chain across the deferral.
    ``hw_barrier(nid)``
        Generator: global rendezvous over all nodes.

    plus the attributes ``nodes``, ``n_procs``, ``sim``, ``stats``,
    ``tracer``, and ``machine`` (the underlying machine, or ``None``
    for fabrics not backed by one).

    ``reliable`` declares the fabric's delivery contract.  The default
    (``True``) promises exactly-once delivery, as the CM-5's CMAML
    does; the protocol layers then run their lean fast paths.  A fabric
    that may drop, duplicate, or reorder messages (e.g.
    :class:`~repro.dsm.faults.FaultTransport`) sets it ``False``, and
    the protocol layers swap in sequence-numbered retry/dedup variants
    at construction — the same zero-cost idiom as the traced machine
    paths, so a reliable fabric pays nothing for the machinery.
    """

    machine: object | None = None
    reliable: bool = True
    #: Crash-recovery manager (:class:`repro.dsm.recovery.RecoveryManager`)
    #: or ``None``.  Only :class:`~repro.dsm.faults.FaultTransport`
    #: constructed with ``on_crash=`` ever sets it; every layer that can
    #: participate in recovery (directory, locks, protocols, collectors)
    #: checks this attribute at construction and registers itself when
    #: present — the same swap-at-construction idiom as ``reliable``.
    recovery = None

    def request(self, src: int, dst: int, handler: Callable, *args, **kw):
        raise NotImplementedError

    def post(self, src: int, dst: int, handler: Callable, *args, **kw) -> None:
        raise NotImplementedError

    def rpc(self, src: int, dst: int, handler: Callable, *args, **kw):
        raise NotImplementedError

    def reply(self, fut, value=None, **kw) -> None:
        raise NotImplementedError

    def after(self, delay: int, fn: Callable) -> None:
        raise NotImplementedError

    def defer_post(self, delay: int, src: int, dst: int, handler: Callable, *args, **kw) -> None:
        # Generic composition; machine-backed fabrics bind the
        # machine's own (possibly traced) implementation instead.
        self.after(delay, lambda: self.post(src, dst, handler, *args, **kw))

    def hw_barrier(self, nid: int):
        raise NotImplementedError


class SimTransport(Transport):
    """The simulated active-message machine, behind the fabric interface.

    Every operation is the machine's own bound method — see the module
    docstring for why this boundary is free.
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self.sim = machine.sim
        self.stats = machine.stats
        self.tracer = machine.tracer
        self.nodes = machine.nodes
        self.n_procs = machine.n_procs
        # Direct bindings: the transport call site resolves one instance
        # attribute and lands in machine code, traced or not.
        self.request = machine.am_request
        self.post = machine.post
        self.rpc = machine.rpc
        self.reply = machine.reply
        self.after = machine.sim.schedule
        self.defer_post = machine.defer_post
        self.hw_barrier = machine.hw_barrier


def as_transport(fabric) -> Transport:
    """Coerce a :class:`Machine` or :class:`Transport` to a transport.

    A machine gets one cached :class:`SimTransport` (stored on the
    machine), so every layer wrapping the same machine shares one
    transport object.
    """
    if isinstance(fabric, Transport):
        return fabric
    if isinstance(fabric, Machine):
        transport = getattr(fabric, "_transport", None)
        if transport is None:
            transport = fabric._transport = SimTransport(fabric)
        return transport
    raise TypeError(f"cannot build a transport from {fabric!r}")
