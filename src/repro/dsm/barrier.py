"""Barrier algorithms for the simulated machine.

The default barrier rides the CM-5 control network
(:meth:`~repro.machine.machine.Machine.hw_barrier`), as CRL's does.  A
message-based dissemination barrier is also provided for machines
without a control network and for the barrier-algorithm ablation
bench.  Ace protocols run their ``barrier`` hooks *around* one of
these rendezvous primitives.

Like the locks, the service is written against the
:class:`~repro.dsm.transport.Transport` interface (machine accepted
and coerced), so the dissemination algorithm is fabric-agnostic and
the hardware path is whatever rendezvous the fabric provides.
"""

from __future__ import annotations

from repro.dsm.transport import as_transport
from repro.sim import Future


class BarrierService:
    """Global barriers: ``hw`` (control network) or ``dissemination`` (messages)."""

    def __init__(self, fabric, algorithm: str = "hw"):
        if algorithm not in ("hw", "dissemination"):
            raise ValueError(f"unknown barrier algorithm {algorithm!r}")
        transport = as_transport(fabric)
        self.transport = transport
        self.machine = transport.machine
        self.algorithm = algorithm
        n = transport.n_procs
        self._n_procs = n
        self._stats = transport.stats
        self._sim = transport.sim
        self._request = transport.request
        self._hw_barrier = transport.hw_barrier
        self._rounds = max(1, (n - 1).bit_length())
        # dissemination state: per round, per node, count of notifies seen
        self._flags = [[0] * n for _ in range(self._rounds)]
        self._waiting: list[list[Future | None]] = [[None] * n for _ in range(self._rounds)]
        # Observability: the hw path's epochs are traced by the machine
        # itself; the dissemination path emits its own arrive/release
        # (per-node epochs, since there is no global release instant).
        tracer = transport.tracer
        self._obs = tracer.tracer("barrier") if tracer is not None else None
        self._epochs = [0] * n
        if not transport.reliable:
            self._install_reliable(transport)

    def _install_reliable(self, transport) -> None:
        """Ack'd dissemination rounds for a lossy fabric.

        Each notify becomes a retried, sequence-numbered round trip: a
        dropped notify would park its receiver forever, and a duplicate
        would over-count a round's flag and release a *future* barrier
        early.  The hardware path needs nothing — the control network
        is reliable by construction.
        """
        from repro.dsm.faults import SeenOnce

        if transport.recovery is not None and self.algorithm == "dissemination":
            # Crash recovery shrinks barrier membership through the
            # manager's crash-aware hw rendezvous; the dissemination
            # rounds have no membership to shrink (round structure is a
            # function of n), so the combination cannot survive a death.
            raise ValueError(
                "on_crash recovery requires the 'hw' barrier algorithm "
                "(dissemination rounds cannot shrink membership)"
            )
        self._notify_seen = SeenOnce(transport)
        self._reply = transport.reply
        self._request = transport.kit.rpc
        self._on_notify = self._on_notify_r

    def wait(self, nid: int):
        """Generator: block until all ``n_procs`` nodes have arrived."""
        self._stats.count("barrier.arrive")
        if self.algorithm == "hw" or self._n_procs == 1:
            yield from self._hw_barrier(nid)
            return
        yield from self._dissemination(nid)

    def _dissemination(self, nid: int):
        obs = self._obs
        if obs is not None:
            epoch = self._epochs[nid]
            self._epochs[nid] = epoch + 1
            obs.emit(self._sim.now, "barrier.arrive", node=nid, data={"epoch": epoch})
        n = self._n_procs
        for r in range(self._rounds):
            peer = (nid + (1 << r)) % n
            yield from self._request(
                nid, peer, self._on_notify, r, payload_words=1, category="barrier.notify"
            )
            if self._flags[r][nid] > 0:
                self._flags[r][nid] -= 1
            else:
                fut = Future(name=f"barrier:r{r}@{nid}")
                self._waiting[r][nid] = fut
                yield fut
                self._waiting[r][nid] = None
        if obs is not None:
            obs.emit(self._sim.now, "barrier.release", node=nid, data={"epoch": epoch})

    def _on_notify(self, node, src, r):
        self._notify(node.nid, r)

    def _notify(self, nid: int, r: int) -> None:
        fut = self._waiting[r][nid]
        if fut is not None:
            self._waiting[r][nid] = None
            fut.resolve(None)
        else:
            self._flags[r][nid] += 1

    def _on_notify_r(self, node, src, fut, r, seq=None):
        if self._notify_seen.first(src, seq):
            self._notify(node.nid, r)
        self._reply(fut, None, payload_words=1, category="barrier.notify_ack")
