"""The MSI engine table: one artifact for directory, cache, and hooks.

The coherence engine's state machine — node-side copy states, home-side
admission, the recall/invalidation handshake — used to live implicitly
in three layers' string literals ("shared", "excl", "downgrade", ...).
This module states it once, as a :class:`~repro.spec.table.ProtocolTable`,
and the layers *derive* their constants from it at construction:

* :class:`~repro.dsm.hooks.ProtocolHooks` takes the hit states, the
  fill states a miss installs, and the home-alias state;
* :class:`~repro.dsm.regioncache.RegionCache` takes the dirty states
  (which copies write back on recall) and the per-mode next-state maps;
* :class:`~repro.dsm.directory.DirectoryService` takes the recall mode
  for each request kind and which modes leave the target a sharer.

Derivation happens once per engine via :func:`engine_view`, which also
validates coverage — a table missing a recall row or a fill state fails
at construction, not mid-run.  The per-access fast paths read the
derived attributes exactly as they read the old literals, so the
table-driven engine costs zero simulated cycles (cycle costs come from
:class:`~repro.dsm.costs.DSMCosts`, named in each row's ``note``).

``MSI_TABLE`` doubles as the registration artifact for the two
engine-bound protocols: ``SC`` is the table verbatim and ``HwSC`` is
:meth:`~repro.spec.table.ProtocolTable.with_` overriding the name and
the hardware flag — same machine, different access-check costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.spec.table import ProtocolTable, TableError, Transition

#: recall modes the engine's invalidation handshake understands; the
#: table's home rows name them as ``recall_<mode>`` actions and its
#: node rows handle each as a message event.
RECALL_MODES = ("invalidate", "downgrade")

MSI_TABLE = ProtocolTable(
    name="SC",
    description="home-based MSI invalidation; sequentially consistent",
    node_states=("invalid", "shared", "excl", "home"),
    home_states=("idle", "busy"),
    base_state="invalid",
    transitions=(
        # -- node: access hooks -----------------------------------------
        Transition("node", "shared", "start_read", actions=("hit",), note="costs.start_hit"),
        Transition("node", "excl", "start_read", actions=("hit",), note="costs.start_hit"),
        Transition(
            "node",
            "home",
            "start_read",
            guard="home_idle",
            actions=("hit",),
            note="home alias reads locally unless a remote owner exists",
        ),
        Transition(
            "node",
            "*",
            "start_read",
            next="shared",
            actions=("fetch",),
            msg="read_req",
            effects=("add_sharer", "copy_current"),
            note="costs.start_miss",
        ),
        Transition("node", "excl", "start_write", actions=("hit",), note="costs.start_hit"),
        Transition(
            "node",
            "home",
            "start_write",
            guard="home_sole",
            actions=("hit",),
            note="home alias writes locally unless remote copies exist",
        ),
        Transition(
            "node",
            "*",
            "start_write",
            next="excl",
            actions=("fetch",),
            msg="write_req",
            effects=("set_owner", "drop_sharer", "copy_current"),
            note="costs.start_miss",
        ),
        Transition(
            "node",
            "*",
            "end_read",
            actions=("release",),
            effects=("fire_deferred",),
            note="costs.end_op",
        ),
        Transition(
            "node",
            "*",
            "end_write",
            actions=("release",),
            effects=("fire_deferred",),
            note="costs.end_op; copy stays dirty-exclusive (lazy write-back)",
        ),
        # -- node: recall receive side (message events) ------------------
        Transition(
            "node",
            "excl",
            "invalidate",
            next="invalid",
            actions=("writeback", "ack"),
            msg="inval_ack",
            effects=("write_home",),
            note="costs.inval_handler; dirty data rides the ack",
        ),
        Transition(
            "node",
            "shared",
            "invalidate",
            next="invalid",
            actions=("ack",),
            msg="inval_ack",
            note="costs.inval_handler",
        ),
        Transition(
            "node",
            "excl",
            "downgrade",
            next="shared",
            actions=("writeback", "ack"),
            msg="inval_ack",
            effects=("write_home",),
            note="costs.inval_handler; dirty data rides the ack",
        ),
        Transition(
            "node",
            "shared",
            "downgrade",
            actions=("ack",),
            msg="inval_ack",
            note="costs.inval_handler",
        ),
        # -- home: admission (atomic handler context) --------------------
        Transition(
            "home",
            "idle",
            "read_req",
            guard="home_writing",
            actions=("enqueue",),
            note="home task holds an open write; remote reads queue FIFO",
        ),
        Transition(
            "home",
            "idle",
            "read_req",
            guard="owned_elsewhere",
            next="busy",
            actions=("recall_downgrade",),
            msg="downgrade",
            note="costs.dir_handler; owner's dirty data must come home first",
        ),
        Transition(
            "home",
            "idle",
            "read_req",
            next="busy",
            actions=("grant_shared",),
            msg="read_data",
            effects=("add_sharer",),
            note="costs.dir_handler; busy until grant_ack closes the race window",
        ),
        Transition(
            "home",
            "idle",
            "write_req",
            guard="home_open",
            actions=("enqueue",),
            note="home task has open accesses; remote writes queue FIFO",
        ),
        Transition(
            "home",
            "idle",
            "write_req",
            guard="copies_elsewhere",
            next="busy",
            actions=("recall_invalidate",),
            msg="invalidate",
            note="costs.dir_handler; every remote copy is invalidated",
        ),
        Transition(
            "home",
            "idle",
            "write_req",
            next="busy",
            actions=("grant_excl",),
            msg="write_data",
            effects=("set_owner",),
            note="costs.dir_handler; upgrade ack when the writer already shares",
        ),
        Transition("home", "busy", "read_req", actions=("enqueue",), note="FIFO; no starvation"),
        Transition("home", "busy", "write_req", actions=("enqueue",), note="FIFO; no starvation"),
        Transition(
            "home",
            "busy",
            "inval_ack",
            guard="acks_remaining",
            actions=("collect_ack",),
            note="fan-out not yet fully acknowledged",
        ),
        Transition(
            "home",
            "busy",
            "inval_ack",
            next="idle",
            actions=("collect_ack", "serve_pending", "drain_queue"),
            note="last ack serves the stalled request and drains the queue",
        ),
        Transition(
            "home",
            "busy",
            "grant_ack",
            next="idle",
            actions=("drain_queue",),
            note="grantee installed its copy; entry reopens",
        ),
        Transition(
            "home",
            "idle",
            "flush",
            actions=("accept_flush",),
            msg="flush_ack",
            effects=("write_home", "drop_sharer", "clear_owner"),
            note="costs.flush; change-protocol path",
        ),
    ),
    optimizable=False,
    null_hooks=frozenset(),
    sync_model="access",
    writer_model="copy",
)

#: HwSC is the same machine with hardware access checks; only the
#: registration metadata differs (costs live in HW_SC_COSTS).
HW_SC_TABLE = MSI_TABLE.with_(
    name="HwSC",
    hardware=True,
    description="SC invalidation; hit-path checks done by hardware access control",
)


@dataclass(frozen=True)
class EngineView:
    """The constants the three engine layers derive from one table."""

    #: node states where ``start_read`` is a local hit (no guard)
    read_hit: tuple[str, ...]
    #: node states where ``start_write`` is a local hit (no guard)
    write_hit: tuple[str, ...]
    #: the home node's alias of canonical storage
    home_state: str
    #: state a read miss installs its filled copy in
    fill_read: str
    #: state a write miss installs its filled copy in
    fill_write: str
    #: state flushes and failed copies return to
    base_state: str
    #: states whose copies are dirty (write back on recall/flush)
    dirty_states: frozenset
    #: recall mode -> {state: next_state} on the receiving node
    inval_next: Mapping[str, Mapping[str, str]]
    #: request kind ("read"/"write") -> recall mode the home fans out
    recall_mode: Mapping[str, str]
    #: recall modes after which the target still holds a readable copy
    sharer_modes: frozenset


def engine_view(table: ProtocolTable) -> EngineView:
    """Derive (and validate) the engine layers' constants from ``table``.

    Raises :class:`~repro.spec.table.TableError` when the table does
    not cover the machine the engine runs — missing recall rows, no
    fill state for a miss, an ambiguous home alias — so a bad table
    fails at engine construction rather than mid-simulation.
    """
    # Hit states: unguarded rows whose action is the local fast path.
    read_hit = tuple(
        t.state for t in table.rows("node", "start_read") if "hit" in t.actions and t.guard is None
    )
    write_hit = tuple(
        t.state for t in table.rows("node", "start_write") if "hit" in t.actions and t.guard is None
    )
    if not read_hit or not write_hit:
        raise TableError(f"{table.name}: engine table has no unguarded hit states")

    # The home alias: the unique state whose hits are directory-guarded.
    homes = {
        t.state
        for ev in ("start_read", "start_write")
        for t in table.rows("node", ev)
        if "hit" in t.actions and t.guard is not None
    }
    if len(homes) != 1:
        raise TableError(f"{table.name}: expected one guarded home-alias state, got {sorted(homes)}")
    home_state = homes.pop()

    # Fill states: the destination of the wildcard fetch rows.
    fills = {}
    for kind, event in (("read", "start_read"), ("write", "start_write")):
        rows = [t for t in table.rows("node", event) if "fetch" in t.actions]
        if len(rows) != 1 or rows[0].next in ("=",):
            raise TableError(f"{table.name}: expected one fetch row with a fill state for {event}")
        fills[kind] = rows[0].next

    # Recall receive side: per-mode next-state maps and dirty states.
    dirty: set[str] = set()
    inval_next: dict[str, Mapping[str, str]] = {}
    for mode in RECALL_MODES:
        rows = table.rows("node", mode)
        if not rows:
            raise TableError(f"{table.name}: no node rows for recall mode {mode!r}")
        dirty.update(t.state for t in rows if "writeback" in t.actions)
        inval_next[mode] = MappingProxyType(table.next_map("node", mode))
    if home_state in dirty:
        raise TableError(f"{table.name}: the home alias cannot be a writeback state")

    # Home fan-out: which mode each request kind recalls with.
    recall_mode = {}
    for kind, event in (("read", "read_req"), ("write", "write_req")):
        for t in table.rows("home", event):
            for a in t.actions:
                if a.startswith("recall_"):
                    mode = a[len("recall_"):]
                    if mode not in RECALL_MODES:
                        raise TableError(f"{table.name}: unknown recall mode {mode!r} in {a!r}")
                    recall_mode[kind] = mode
        if kind not in recall_mode:
            raise TableError(f"{table.name}: no recall action on home rows for {event!r}")

    # Modes that leave the target holding a readable copy keep it in
    # the sharer set after its ack (downgrade, in MSI terms).
    sharer_modes = frozenset(
        mode for mode, nm in inval_next.items() if any(s in read_hit for s in nm.values())
    )

    return EngineView(
        read_hit=read_hit,
        write_hit=write_hit,
        home_state=home_state,
        fill_read=fills["read"],
        fill_write=fills["write"],
        base_state=table.base_state,
        dirty_states=frozenset(dirty),
        inval_next=MappingProxyType(inval_next),
        recall_mode=MappingProxyType(recall_mode),
        sharer_modes=sharer_modes,
    )
