"""Home-based queue locks for regions.

``Ace_Lock(region)`` / ``Ace_UnLock(region)`` (Table 2 of the paper)
need a default implementation that protocols can delegate to.  Each
region's lock lives at its home node: acquirers send a request, the
home grants in FIFO order, and release is a single message.  A node
re-acquiring a lock it already holds is a protocol error (the paper's
model has one user thread per processor, so recursive locking would
always be a bug).

All communication goes through the coherence core's
:class:`~repro.dsm.transport.Transport` (the service accepts a machine
or a transport), so the lock protocol is fabric-agnostic like the rest
of the core.
"""

from __future__ import annotations

from collections import deque

from repro.dsm.transport import as_transport
from repro.machine.stats import intern_key
from repro.memory import RegionDirectory
from repro.sim import Delay, Future
from repro.sim.errors import SimulationError


class LockError(SimulationError):
    """Raised on double-acquire, foreign release, or release-when-free."""


class _LockState:
    __slots__ = ("holder", "waiters")

    def __init__(self):
        self.holder: int | None = None
        self.waiters: deque = deque()


class LockService:
    """FIFO mutual-exclusion locks, one per region, homed with the region."""

    LOCK_HANDLER_COST = 25

    def __init__(self, fabric, regions: RegionDirectory, stats_prefix: str = "lock"):
        transport = as_transport(fabric)
        self.transport = transport
        self.machine = transport.machine
        self.regions = regions
        self.prefix = stats_prefix
        self._key = f"lock:{stats_prefix}"
        # Interned once; the acquire/release path builds no f-strings.
        self._k_acquire = intern_key(stats_prefix, "acquire")
        self._k_release = intern_key(stats_prefix, "release")
        self._k_contended = intern_key(stats_prefix, "contended")
        self._cat_req = intern_key(stats_prefix, "req")
        self._cat_rel = intern_key(stats_prefix, "rel")
        self._cat_grant = intern_key(stats_prefix, "grant")
        self._stats = transport.stats
        self._counts = transport.stats.counter_ref()
        self._sim = transport.sim
        self._nodes = transport.nodes
        self._rpc = transport.rpc
        self._request = transport.request
        self._reply = transport.reply
        self._d_handler = Delay(self.LOCK_HANDLER_COST)
        self._h_acquire = self._on_acquire
        self._h_release = self._on_release
        # Observability: lock grant/release events plus a hold-time
        # histogram, measured home-side (grant issued → release
        # received) so both endpoints share one clock.  None when off.
        tracer = transport.tracer
        self._obs = tracer.tracer(stats_prefix) if tracer is not None else None
        self._hold_hist = tracer.hist(stats_prefix + ".hold") if tracer is not None else None
        self._grant_at: dict = {}
        if not transport.reliable:
            self._install_reliable(transport)

    def _install_reliable(self, transport) -> None:
        """Swap in ack'd, deduped lock rounds for a lossy fabric.

        Acquire becomes a sequence-numbered retried RPC with home-side
        dedup (a retransmitted acquire re-executing ``_on_acquire``
        would trip the double-acquire error — or worse, enqueue the
        holder behind itself).  Release, a fire-and-forget message on a
        reliable fabric, becomes an ack'd round trip: a lost release
        would leave the lock held forever.
        """
        from repro.dsm.faults import DedupTable, SeenOnce

        self._kit = transport.kit
        self._dedup = DedupTable(transport, self.prefix)
        self._reply_raw = transport.reply
        self._reply = self._dedup.reply
        self._rel_seen = SeenOnce(transport)
        self._cat_rel_ack = intern_key(self.prefix, "rel_ack")
        self._rpc = self._kit.rpc
        self._h_acquire = self._on_acquire_r
        self._h_release = self._on_release_r
        self.release = self._release_r
        transport.watchdog.register_rid_categories((self._cat_req, self._cat_rel))
        if transport.recovery is not None:
            transport.recovery.register_locks(self)

    def _state(self, region) -> _LockState:
        st = region.meta.get(self._key)
        if st is None:
            st = _LockState()
            region.meta[self._key] = st
        return st

    def acquire(self, nid: int, rid: int):
        """Generator: block until this node holds the lock on ``rid``."""
        region = self.regions.get(rid)
        yield self._d_handler
        self._counts[self._k_acquire] += 1
        if self._obs is not None:
            self._obs.emit(self._sim.now, "lock.request", node=nid, data={"rid": rid})
        if nid == region.home:
            # Local fast path still goes through the same grant logic.
            fut = Future(name=f"lock:{rid}@{nid}")
            self._on_acquire(self._nodes[nid], nid, fut, rid)
            yield fut
        else:
            yield from self._rpc(
                nid, region.home, self._h_acquire, rid, payload_words=2, category=self._cat_req
            )

    def release(self, nid: int, rid: int):
        """Generator: release the lock; the next FIFO waiter is granted."""
        region = self.regions.get(rid)
        yield self._d_handler
        self._counts[self._k_release] += 1
        if nid == region.home:
            self._on_release(self._nodes[nid], nid, rid)
        else:
            yield from self._request(
                nid, region.home, self._h_release, rid, payload_words=2, category=self._cat_rel
            )

    # -- home-side handlers -------------------------------------------
    def _on_acquire(self, node, src, fut, rid):
        st = self._state(self.regions.get(rid))
        if st.holder is None:
            st.holder = src
            self._grant(src, fut, rid)
        elif st.holder == src:
            fut.fail(LockError(f"node {src} re-acquired lock on region {rid}"))
        else:
            st.waiters.append((src, fut))
            self._stats.count(self._k_contended)

    def _on_release(self, node, src, rid):
        st = self._state(self.regions.get(rid))
        if st.holder is None:
            raise LockError(f"release of free lock on region {rid}")
        if st.holder != src:
            raise LockError(f"node {src} released lock on region {rid} held by {st.holder}")
        if self._obs is not None:
            now = self._sim.now
            held = now - self._grant_at.pop((rid, src), now)
            self._hold_hist.add(held)
            self._obs.emit(now, "lock.release", node=src, data={"rid": rid, "held": held})
        if st.waiters:
            nxt, fut = st.waiters.popleft()
            st.holder = nxt
            self._grant(nxt, fut, rid)
        else:
            st.holder = None

    # -- reliable variants (installed by _install_reliable) -------------
    def _release_r(self, nid: int, rid: int):
        """Generator: ack'd release (retried until the home confirms)."""
        region = self.regions.get(rid)
        yield self._d_handler
        self._counts[self._k_release] += 1
        if nid == region.home:
            self._on_release(self._nodes[nid], nid, rid)
        else:
            yield from self._rpc(
                nid, region.home, self._h_release, rid, payload_words=2, category=self._cat_rel
            )

    def _on_acquire_r(self, node, src, fut, rid, seq=None):
        if self._dedup.admit(src, seq, fut):
            self._on_acquire(node, src, fut, rid)

    def _on_release_r(self, node, src, fut, rid, seq=None):
        # A duplicate release must not re-run the handler: the lock may
        # already be re-granted, and releasing on the new holder's
        # behalf raises (correctly) on a reliable fabric.
        if self._rel_seen.first(src, seq):
            self._on_release(node, src, rid)
        self._reply_raw(fut, None, payload_words=1, category=self._cat_rel_ack)

    def break_dead(self, dead: int, manager) -> int:
        """Crash recovery: break locks the dead node holds, prune its waits.

        A lock held by a crashed node would block its FIFO queue forever
        (the release can never arrive) — the manager calls this at each
        death declaration to re-grant to the next *live* waiter.  Dead
        waiters are dropped (their acquire calls were already abandoned
        by the in-flight sweep).  Returns the number of broken holds.
        """
        broken = 0
        for region in self.regions.all_regions():
            st = region.meta.get(self._key)
            if st is None:
                continue
            if any(src == dead for src, _ in st.waiters):
                st.waiters = deque(item for item in st.waiters if item[0] != dead)
            if st.holder != dead:
                continue
            broken += 1
            if self._obs is not None:
                self._obs.emit(
                    self._sim.now, "lock.broken", node=dead, data={"rid": region.rid}
                )
            if st.waiters:
                nxt, fut = st.waiters.popleft()
                st.holder = nxt
                self._grant(nxt, fut, region.rid)
            else:
                st.holder = None
        return broken

    def _grant(self, dst: int, fut, rid) -> None:
        if self._obs is not None:
            now = self._sim.now
            self._grant_at[(rid, dst)] = now
            # Stamp the local-grant future so the woken task.step
            # parents to this event (remote grants get their wake
            # parent from the reply receive instead).
            fut._obs_eid = self._obs.emit(now, "lock.grant", node=dst, data={"rid": rid})
        home = self.regions.get(rid).home
        if dst == home:
            fut.resolve(None)
        else:
            self._reply(fut, None, payload_words=2, category=self._cat_grant)
