"""Errors shared by the coherence-core layers."""

from __future__ import annotations

from repro.sim.errors import SimulationError


class ProtocolError(SimulationError):
    """Raised for protocol misuse (unmatched start/end, bad unmap, ...)."""
