"""DirectoryService: home-node directory state and admission control.

The home side of the MSI protocol (see :mod:`repro.dsm.coherence` for
the state model): per-region :class:`DirEntry` records, the atomic
request handlers that run at a region's home, the recall/invalidation
fan-out, and the FIFO queue that guarantees per-region ordering and
no starvation.

Directory state is addressed by ``(shard, region)``: entries live in
``n_shards`` independent tables selected by ``rid % n_shards``.  With
the default single shard this is exactly the old flat directory; the
shard axis is the seam along which the directory can later be split
across nodes (each shard's handlers and tables move together — they
share no state with other shards).

This layer runs entirely in handler context.  It sends data grants and
acks through the :class:`~repro.dsm.transport.Transport` and calls
into the node side only through the invalidation handler wired in by
:meth:`wire_cache` — it never touches a
:class:`~repro.memory.region.RegionCopy`.
"""

from __future__ import annotations

from collections import deque
from functools import partial

import numpy as np

from repro.dsm.costs import DSMCosts
from repro.dsm.errors import ProtocolError
from repro.dsm.msi import MSI_TABLE, engine_view
from repro.dsm.transport import Transport
from repro.machine.stats import intern_key
from repro.memory import Region, RegionDirectory
from repro.sim import Future


class DirEntry:
    """Home-side directory state for one region."""

    __slots__ = (
        "owner",
        "sharers",
        "home_readers",
        "home_writing",
        "busy",
        "queue",
        "pending",
        "grantee",
    )

    def __init__(self):
        self.owner: int | None = None
        self.sharers: set[int] = set()
        self.home_readers = 0
        self.home_writing = False
        self.busy = False
        self.queue: deque = deque()
        self.pending: dict | None = None
        #: Node a grant is in flight to while ``busy`` (who we are
        #: waiting on for the grant-ack) — lets the recovery manager
        #: clear a window whose grantee died.
        self.grantee: int | None = None


class DirectoryService:
    """Home-side region directory for one (transport, cost table) pair."""

    #: Crash-recovery manager; set by :meth:`enable_recovery`.
    _recovery = None
    #: Futures that must be served remote-style even though their source
    #: is the region's home (see :meth:`enable_recovery`).  The class
    #: default is an immutable empty set: without recovery nothing is
    #: ever marked and the membership probes below are constant-false.
    _remote_self: frozenset = frozenset()

    def __init__(
        self,
        transport: Transport,
        regions: RegionDirectory,
        costs: DSMCosts,
        prefix: str = "dsm",
        n_shards: int = 1,
        table=None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.transport = transport
        self.regions = regions
        self.costs = costs
        self.prefix = prefix
        self.n_shards = n_shards
        # Recall policy, derived from the protocol table (repro.dsm.msi):
        # which mode each request kind fans out with, and which modes
        # leave the recalled node holding a readable (sharer) copy.
        view = engine_view(table if table is not None else MSI_TABLE)
        self._recall_read = view.recall_mode["read"]
        self._recall_write = view.recall_mode["write"]
        self._sharer_modes = view.sharer_modes
        self._shards: tuple[dict[int, DirEntry], ...] = tuple({} for _ in range(n_shards))
        # Stat keys and message categories are interned once here so the
        # handlers never build an f-string (see machine.stats).
        self._counts = transport.stats.counter_ref()
        self._k_recall = intern_key(prefix, "recall")
        self._cat_map_reply = intern_key(prefix, "map_reply")
        self._cat_read_data = intern_key(prefix, "read_data")
        self._cat_write_data = intern_key(prefix, "write_data")
        self._cat_upgrade_ack = intern_key(prefix, "upgrade_ack")
        self._cat_inval = intern_key(prefix, "inval")
        self._cat_flush_ack = intern_key(prefix, "flush_ack")
        # Transport operations, pre-bound.
        self._reply = transport.reply
        self._post = transport.post
        # Stable bound-method handler objects: message sends fetch an
        # attribute instead of materializing a bound method per call,
        # and the machine's handler-stat cache hits on identity.
        self._h_map_lookup = self._on_map_lookup
        self._h_read_req = self._on_read_req
        self._h_write_req = self._on_write_req
        self._h_grant_ack = self._on_grant_ack
        self._h_inval_ack = self._on_inval_ack
        self._h_flush = self._on_flush
        # Node-side invalidation handler; see wire_cache.
        self._h_inval_req = None
        if not transport.reliable:
            self._install_reliable(transport)

    def _install_reliable(self, transport) -> None:
        """Swap in retry/dedup variants for an at-least-once fabric.

        Same construction-time idiom as the machine's traced paths: on
        a reliable transport none of this runs and the handlers above
        stay bound untouched.  Requests arrive sequence-numbered (the
        sender's :class:`~repro.dsm.faults.RetryKit` retransmits until
        the reply lands); the :class:`~repro.dsm.faults.DedupTable`
        admits each ``(src, seq)`` once and replays recorded replies to
        late duplicates, so handler side effects stay exactly-once.
        """
        from repro.dsm.faults import DedupTable, SeenOnce

        self._kit = transport.kit
        self._dedup = DedupTable(transport, self.prefix)
        self._reply_raw = transport.reply
        self._reply = self._dedup.reply
        self._ga_seen = SeenOnce(transport)
        self._cat_ga_ack = intern_key(self.prefix, "grant_ack_ack")
        self._h_map_lookup = self._on_map_lookup_r
        self._h_read_req = self._on_read_req_r
        self._h_write_req = self._on_write_req_r
        self._h_grant_ack = self._on_grant_ack_r
        self._h_flush = self._on_flush_r
        self._begin_recall = self._begin_recall_r
        transport.watchdog.register_directory(self)

    def enable_recovery(self, manager) -> None:
        """Join crash recovery (called via the composing engine when the
        transport carries a :class:`~repro.dsm.recovery.RecoveryManager`).

        Classifies this directory's message categories for the manager's
        in-flight sweep and swaps in the recovery-tolerant invalidation
        ack collector: after a death, acks from recalls the manager
        canceled or orphaned are absorbed instead of raising.  The swap
        happens at construction time, before any recall runs, so every
        ``on_ack`` partial captures the tolerant bound method.
        """
        p = self.prefix
        manager.register_home_categories(
            tuple(intern_key(p, op) for op in ("map_lookup", "read_req", "write_req", "flush")),
            self.regions,
        )
        manager.register_push_categories((self._cat_inval,))
        manager.register_ack_categories((intern_key(p, "grant_ack"),))
        self._recovery = manager
        self._apply_inval_ack = self._apply_inval_ack_t
        # Re-homing can leave a survivor's *remote* miss addressed to
        # itself: its request to the dead home is retargeted (or was
        # queued there and re-admitted) after the survivor became the
        # region's new home.  The requester's continuation is suspended
        # in the remote-miss epilogue, so the serve path must grant
        # remote-style (data reply + busy window) — a home-style grant
        # would open home_readers/home_writing that no continuation ever
        # closes, wedging the entry.  Such futures are marked here and
        # consumed by _serve_read/_serve_write.
        self._remote_self = set()

    def wire_cache(self, cache) -> None:
        """Bind the node-side invalidation handler recalls are sent to."""
        self._h_inval_req = cache._h_inval_req

    # ------------------------------------------------------------------
    # entry addressing: (shard, region)
    # ------------------------------------------------------------------
    def shard_of(self, rid: int) -> int:
        """Which shard holds ``rid``'s entry."""
        return rid % self.n_shards

    def entry(self, rid: int) -> DirEntry:
        """Get-or-create the directory entry for ``rid``."""
        shard = self._shards[self.shard_of(rid)]
        ent = shard.get(rid)
        if ent is None:
            ent = shard[rid] = DirEntry()
        return ent

    def entry_at(self, shard: int, rid: int) -> DirEntry | None:
        """Introspection: the entry for ``rid`` in ``shard``, if present."""
        return self._shards[shard].get(rid)

    # ------------------------------------------------------------------
    # map metadata lookup (CRL-style cold map)
    # ------------------------------------------------------------------
    def _on_map_lookup(self, node, src, fut, rid):
        region = self.regions.get(rid)
        self._reply(
            fut, region.size, payload_words=self.costs.meta_words, category=self._cat_map_reply
        )

    # ------------------------------------------------------------------
    # home-side admission (atomic handler context)
    # ------------------------------------------------------------------
    def _on_read_req(self, node, src, fut, rid):
        region = self.regions.get(rid)
        ent = self.entry(rid)
        if not self._admit("read", src, fut, region, ent):
            ent.queue.append(("read", src, fut))

    def _on_write_req(self, node, src, fut, rid):
        region = self.regions.get(rid)
        ent = self.entry(rid)
        if not self._admit("write", src, fut, region, ent):
            ent.queue.append(("write", src, fut))

    def _admit(self, kind: str, src: int, fut: Future, region: Region, ent: DirEntry) -> bool:
        """Try to serve a request; False means 'leave it on the queue'."""
        home = region.home
        if ent.busy:
            return False
        if kind == "read":
            if ent.home_writing and src != home:
                return False
            if ent.owner is not None and ent.owner != src:
                self._begin_recall(
                    region, ent, kind, src, fut, targets=[(ent.owner, self._recall_read)]
                )
                return True
            self._serve_read(region, ent, src, fut)
            return True
        # write
        if (ent.home_writing or ent.home_readers > 0) and src != home:
            return False
        targets = []
        if ent.owner is not None and ent.owner != src:
            targets.append((ent.owner, self._recall_write))
        if ent.sharers:
            targets.extend((s, self._recall_write) for s in sorted(ent.sharers) if s != src)
        if targets:
            self._begin_recall(region, ent, kind, src, fut, targets=targets)
            return True
        self._serve_write(region, ent, src, fut)
        return True

    def _serve_read(self, region: Region, ent: DirEntry, src: int, fut: Future) -> None:
        if src == region.home:
            if fut in self._remote_self:
                self._remote_self.discard(fut)  # re-homed self-request
            else:
                ent.home_readers += 1
                fut.resolve(None)
                return
        ent.sharers.add(src)
        # The entry stays busy until the grantee acknowledges install:
        # otherwise a queued write's invalidation could overtake the
        # grant data in the network (grant-in-flight race).
        ent.busy = True
        ent.grantee = src
        self._reply(
            fut,
            region.home_data.copy(),
            payload_words=region.size,
            category=self._cat_read_data,
        )

    def _serve_write(self, region: Region, ent: DirEntry, src: int, fut: Future) -> None:
        if src == region.home:
            if fut in self._remote_self:
                self._remote_self.discard(fut)  # re-homed self-request
            else:
                ent.home_writing = True
                # A re-homed node can hold a sharer-state copy of its own
                # region; the local grant epilogue reverts it to the home
                # alias (see hooks), so it stops being a sharer here.
                ent.sharers.discard(src)
                fut.resolve(None)
                return
        had_copy = src in ent.sharers
        ent.sharers.discard(src)
        ent.owner = src
        ent.busy = True  # until grant-ack; see _serve_read
        ent.grantee = src
        if had_copy:  # upgrade: requester's shared data is current
            self._reply(fut, None, payload_words=1, category=self._cat_upgrade_ack)
        else:
            self._reply(
                fut,
                region.home_data.copy(),
                payload_words=region.size,
                category=self._cat_write_data,
            )

    def _on_grant_ack(self, node, src, rid):
        region = self.regions.get(rid)
        ent = self.entry(rid)
        ent.busy = False
        ent.grantee = None
        self._drain(region, ent)

    # ------------------------------------------------------------------
    # reliable variants (installed over the handlers above when the
    # transport may drop/duplicate/reorder; see _install_reliable)
    # ------------------------------------------------------------------
    def _on_map_lookup_r(self, node, src, fut, rid, seq=None):
        # Idempotent (pure metadata read): re-execution re-replies and
        # the sender's resolve-once gate keeps only the first.
        self._on_map_lookup(node, src, fut, rid)

    def _on_read_req_r(self, node, src, fut, rid, seq=None):
        if self._dedup.admit(src, seq, fut):
            # A *fabric* request (seq-numbered; the home's local misses
            # pass seq=None) from the region's own home only exists
            # after re-homing: grant it remote-style.  See enable_recovery.
            if seq is not None and self._recovery is not None and src == self.regions.get(rid).home:
                self._remote_self.add(fut)
            self._on_read_req(node, src, fut, rid)

    def _on_write_req_r(self, node, src, fut, rid, seq=None):
        if self._dedup.admit(src, seq, fut):
            if seq is not None and self._recovery is not None and src == self.regions.get(rid).home:
                self._remote_self.add(fut)
            self._on_write_req(node, src, fut, rid)

    def _on_flush_r(self, node, src, fut, rid, data, seq=None):
        # A retried flush must never re-execute: the home may have
        # granted ownership onward, and replaying the stale writeback
        # would clobber newer home data.
        if self._dedup.admit(src, seq, fut):
            self._on_flush(node, src, fut, rid, data)

    def _on_grant_ack_r(self, node, src, fut, rid, seq=None):
        # Clearing busy twice could release a *later* grant's window,
        # so duplicates ack without touching the entry.
        if self._ga_seen.first(src, seq):
            region = self.regions.get(rid)
            ent = self.entry(rid)
            ent.busy = False
            ent.grantee = None
            self._drain(region, ent)
        self._reply_raw(fut, None, payload_words=1, category=self._cat_ga_ack)

    # ------------------------------------------------------------------
    # recall / invalidation fan-out
    # ------------------------------------------------------------------
    def _begin_recall(self, region, ent, kind, src, fut, targets) -> None:
        ent.busy = True
        ent.pending = {"kind": kind, "src": src, "fut": fut, "need": len(targets)}
        self._counts[self._k_recall] += 1
        for target, mode in targets:
            self._post(
                region.home,
                target,
                self._h_inval_req,
                region.rid,
                mode,
                payload_words=self.costs.meta_words,
                category=self._cat_inval,
            )

    def _begin_recall_r(self, region, ent, kind, src, fut, targets) -> None:
        # Reliable fan-out: each invalidation is an ack'd RetryKit send;
        # the node-side cache acks exactly once per logical request
        # (dedup there), so each callback below fires exactly once.
        ent.busy = True
        ent.pending = {"kind": kind, "src": src, "fut": fut, "need": len(targets)}
        self._counts[self._k_recall] += 1
        for target, mode in targets:
            self._kit.post(
                region.home,
                target,
                self._h_inval_req,
                region.rid,
                mode,
                payload_words=self.costs.meta_words,
                category=self._cat_inval,
                on_ack=partial(self._apply_inval_ack, region.rid, target, mode),
            )

    def _on_inval_ack(self, node, src, rid, target, mode, data):
        self._apply_inval_ack(rid, target, mode, data)

    def _apply_inval_ack(self, rid, target, mode, data):
        region = self.regions.get(rid)
        ent = self.entry(rid)
        if data is not None:
            np.copyto(region.home_data, data)
        if ent.owner == target:
            ent.owner = None
        ent.sharers.discard(target)
        if mode in self._sharer_modes:
            ent.sharers.add(target)
        pending = ent.pending
        if pending is None:  # pragma: no cover - acks only while pending
            raise ProtocolError(f"stray invalidation ack for region {rid}")
        pending["need"] -= 1
        if pending["need"] > 0:
            return
        ent.busy = False
        ent.pending = None
        if pending["kind"] == "read":
            self._serve_read(region, ent, pending["src"], pending["fut"])
        else:
            self._serve_write(region, ent, pending["src"], pending["fut"])
        self._drain(region, ent)

    def _apply_inval_ack_t(self, rid, target, mode, data):
        """Recovery-tolerant ack collector (see :meth:`enable_recovery`).

        Two departures from the strict version: an ack with no pending
        recall is counted and dropped instead of raising (the manager
        canceled the recall when its home died — every surviving ack is
        then structurally stray), and a recall whose requester died
        (``orphan`` mark) completes without serving anyone.
        """
        region = self.regions.get(rid)
        ent = self.entry(rid)
        pending = ent.pending
        if pending is None:
            self._recovery.count_stray_ack()
            return
        if data is not None:
            np.copyto(region.home_data, data)
        if ent.owner == target:
            ent.owner = None
        ent.sharers.discard(target)
        if mode in self._sharer_modes and target != region.home:
            # A recalled copy *on the home node itself* (a re-homed
            # survivor that was granted remote-style) reverts to the
            # home alias, not to a sharer copy — the hr/hw admission
            # gate is the home's coherence mechanism, so it must not
            # be re-listed as a sharer.  See regioncache._apply_inval.
            ent.sharers.add(target)
        pending["need"] -= 1
        if pending["need"] > 0:
            return
        ent.busy = False
        ent.pending = None
        if not pending.get("orphan"):
            if pending["kind"] == "read":
                self._serve_read(region, ent, pending["src"], pending["fut"])
            else:
                self._serve_write(region, ent, pending["src"], pending["fut"])
        self._drain(region, ent)

    # ------------------------------------------------------------------
    # flush (change-protocol path)
    # ------------------------------------------------------------------
    def _on_flush(self, node, src, fut, rid, data):
        region = self.regions.get(rid)
        ent = self.entry(rid)
        if data is not None and (ent.owner == src or src in ent.sharers):
            # Apply the writeback only while the directory still lists
            # the flusher: a recall that crossed this flush already
            # delivered the same snapshot in its ack (and may have
            # granted onward since), so a late flush payload from a
            # de-listed node would clobber newer home data.
            np.copyto(region.home_data, data)
        if ent.owner == src:
            ent.owner = None
        ent.sharers.discard(src)
        self._reply(fut, None, payload_words=1, category=self._cat_flush_ack)

    def _drain(self, region: Region, ent: DirEntry) -> None:
        while ent.queue and not ent.busy:
            kind, src, fut = ent.queue[0]
            if not self._admit(kind, src, fut, region, ent):
                break
            ent.queue.popleft()

    # ------------------------------------------------------------------
    # introspection (liveness watchdog / StallReport)
    # ------------------------------------------------------------------
    def dump_state(self) -> list:
        """Non-quiescent directory entries, as JSON-friendly dicts.

        An entry is interesting to a stall report when it is busy, has
        queued requests, or is mid-recall — idle entries (the vast
        majority) are omitted.
        """
        out = []
        for shard in self._shards:
            for rid, ent in shard.items():
                if not (ent.busy or ent.queue or ent.pending is not None):
                    continue
                pending = None
                if ent.pending is not None:
                    pending = {
                        "kind": ent.pending["kind"],
                        "src": ent.pending["src"],
                        "awaiting_acks": ent.pending["need"],
                    }
                out.append(
                    {
                        "prefix": self.prefix,
                        "rid": rid,
                        "home": self.regions.get(rid).home,
                        "busy": ent.busy,
                        "owner": ent.owner,
                        "sharers": sorted(ent.sharers),
                        "home_readers": ent.home_readers,
                        "home_writing": ent.home_writing,
                        "queued": [(kind, src) for kind, src, _ in ent.queue],
                        "pending": pending,
                    }
                )
        return out
