"""Crash recovery: failure detection, epoch fencing, and directory re-homing.

PR 4's chaos fabric models crash-stop faults, but the only response the
stack had was a :class:`~repro.dsm.faults.StallReport` after retry
exhaustion — hundreds of thousands of cycles after the crash, and the
run still dies.  This module turns a crash into a *handled event*
(DESIGN.md §15):

:class:`FailureDetector`
    Lease-style heartbeats riding the ordinary
    :class:`~repro.dsm.transport.Transport` surface.  Every live node
    posts a small heartbeat message to every peer each
    ``HB_INTERVAL`` cycles; the messages go through the fault fabric
    like any other traffic (they are charged real cycles, can be
    dropped by the plan's rates, and are silently discarded once their
    sender's crash cycle passes — which is exactly the detection
    signal).  A node unheard-from for its seeded, per-node suspicion
    timeout is declared dead.
:class:`RecoveryManager`
    Owns cluster membership.  On a death declaration it either raises
    a prompt, suspect-attributed :class:`~repro.dsm.faults.StallError`
    (``on_crash="abort"``) or runs the recovery sequence
    (``on_crash="recover"``): bump the cluster **epoch**, fence the
    fabric against the dead incarnation, retire the dead task,
    **re-home** every region the dead node was home for onto its
    deterministic rank-order successor, sweep the
    :class:`~repro.dsm.faults.RetryKit`'s in-flight calls (retarget /
    fake-ack / abandon per message category), rebuild directory
    entries from the surviving :class:`~repro.dsm.regioncache`
    copies, shrink collective membership (barriers, ack collectors),
    and break locks the dead node held.

Zero-cost-when-off: no object in this module is constructed unless
``run_spmd(..., on_crash=...)`` (or ``FaultTransport(on_crash=...)``)
asks for it, so crash-free runs — and faulted runs without a recovery
mode — execute exactly the code they always did, cycle for cycle.

Modeling notes
--------------
* **Membership is a global oracle.**  Heartbeats are charged to the
  fabric, but suspicion state is centralized (one ``last_heard`` per
  node, fed by every delivery) rather than replicated per-node — the
  simulation models the *cost* and *latency* of detection, not a
  consensus protocol.  A node is suspected only when *no* peer has
  heard from it, so random heartbeat drops need a full silent window
  across all links to false-positive.
* **Between crash and declaration the dead task keeps running
  locally.**  The kernel cannot kill a generator mid-yield (see
  :mod:`repro.dsm.faults`); the fabric drops everything the node
  sends, so it blocks within a few operations and is retired at
  declaration with a :class:`Crashed` result.
* **Re-homed state reconstruction is synchronous.**  The successor's
  per-survivor state queries are posted (and charged) as real
  ``recovery.rehome`` messages, but the directory rebuild itself
  happens atomically at declaration — the same convention the rest of
  the simulation uses for handler-context state changes.  Home data
  adoption takes the freshest *writer* copy (a surviving owner's
  dirty data) when one exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from random import Random

import numpy as np

from repro.machine.stats import intern_key
from repro.sim.future import _UNSET, Future


@dataclass(frozen=True)
class Crashed:
    """Per-node result marker for a task retired by the recovery manager."""

    nid: int
    at: int  # cycle the node was *declared* dead (epoch transition)


#: Heartbeat period, in cycles.  Small enough that detection (a few
#: missed heartbeats) beats retry exhaustion by an order of magnitude.
HB_INTERVAL = 2000
#: Base silence, in cycles, before a node is suspected.  Several
#: heartbeat periods: random drops must silence every link from a node
#: for the whole window to false-positive.
SUSPECT_AFTER = 9000
#: Range of the seeded per-node suspicion jitter (breaks symmetric
#: multi-crash declarations into a deterministic order).
SUSPECT_JITTER = 1024


class RecoveryManager:
    """Cluster membership, epoch fencing, and the recovery sequence.

    Constructed by :class:`~repro.dsm.faults.FaultTransport` when an
    ``on_crash`` mode is requested; services and protocols find it as
    ``transport.recovery`` and register themselves at construction
    (the same construction-time swap idiom as ``reliable``).
    """

    def __init__(self, transport, mode: str):
        if mode not in ("recover", "abort"):
            raise ValueError(f"unknown on_crash mode {mode!r}; use 'recover' or 'abort'")
        self.transport = transport
        self.mode = mode
        self.sim = transport.sim
        self.n_procs = transport.n_procs
        self.live: set[int] = set(range(self.n_procs))
        self.dead: set[int] = set()
        self.epoch = 0
        #: per-death event records (chaos artifacts; see summary())
        self.events: list[dict] = []
        self._tasks: list = []
        self._active = False
        self._open_tasks = 0
        # Registered participants.
        self._engines: list = []
        self._locks: list = []
        self._protocols: list = []
        self._collectors: list = []
        self._region_dirs: list = []
        #: category -> ("home", regions) | ("push", None) | ("ack", None)
        #:             | ("custom", method_name)
        self._categories: dict = {}
        # Failure-detector state (filled in start()).
        self._last_heard: dict[int, int] = {}
        self._suspect_after: dict[int, int] = {}
        # Counters / tracing.
        counts = self._counts = transport.stats.counter_ref()
        self._k = {
            name: intern_key("recovery", name)
            for name in (
                "fenced",
                "rehomed_regions",
                "broken_locks",
                "lost_dirty",
                "stray_ack",
                "abandoned",
                "retargeted",
                "fake_acks",
                "epochs",
                "heartbeats",
            )
        }
        del counts  # counter_ref retained via self._counts
        tracer = transport.tracer
        self._obs = tracer.tracer("recovery") if tracer is not None else None
        # Crash-aware hardware barrier: replace the transport's binding
        # *before* any service binds it (services are constructed after
        # the transport, so they pick this up).
        self._base_verdict = transport._verdict
        self._bar_arrived: set[int] = set()
        self._bar_gen = 0
        self._bar_fut = Future(name="recovery:hw_barrier:0")
        self._hw_cost = transport.machine.HW_BARRIER_COST
        transport.hw_barrier = self._hw_barrier

    # ------------------------------------------------------------------
    # registration (construction-time, from services and protocols)
    # ------------------------------------------------------------------
    def register_engine(self, engine) -> None:
        """A :class:`~repro.dsm.coherence.CoherenceEngine` joins recovery."""
        self._engines.append(engine)
        self._add_region_dir(engine.regions)
        engine.directory.enable_recovery(self)

    def register_locks(self, service) -> None:
        self._locks.append(service)
        self._add_region_dir(service.regions)
        self.register_home_categories((service._cat_req, service._cat_rel), service.regions)

    def register_protocol(self, proto) -> None:
        self._protocols.append(proto)
        self._add_region_dir(proto.regions)

    def register_collector(self, collector) -> None:
        self._collectors.append(collector)

    def register_home_categories(self, categories, regions) -> None:
        """Calls in these categories target ``regions.get(args[0]).home``:
        on a dead destination they are retargeted to the new home."""
        for cat in categories:
            self._categories[cat] = ("home", regions)

    def register_push_categories(self, categories) -> None:
        """Home-to-peer notifies whose ack feeds a fan-out counter: a dead
        destination is acknowledged on its behalf (fake-ack)."""
        for cat in categories:
            self._categories[cat] = ("push", None)

    def register_ack_categories(self, categories) -> None:
        """Fire-and-forget acknowledgements (grant acks): safe to abandon
        when their destination dies — the rebuild resets the window they
        would have closed."""
        for cat in categories:
            self._categories[cat] = ("ack", None)

    def register_pending_handler(self, category, method_name: str) -> None:
        """Category needing bespoke handling: the manager calls
        ``pend.handler.__self__.<method_name>(self, pend, dead)``."""
        self._categories[category] = ("custom", method_name)

    def _add_region_dir(self, regions) -> None:
        if all(r is not regions for r in self._region_dirs):
            self._region_dirs.append(regions)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a recovery counter (participants report their losses here)."""
        self._counts[self._k[name]] += n

    def count_stray_ack(self) -> None:
        """Tolerant ack collectors report absorbed post-cancel acks here."""
        self._counts[self._k["stray_ack"]] += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, tasks) -> None:
        """Begin heartbeating/sweeping over the spawned node tasks."""
        self._tasks = list(tasks)
        self._open_tasks = len(self._tasks)
        for t in self._tasks:
            t.done.add_callback(self._note_task_done)
        now = self.sim.now
        seed = self.transport.plan.seed
        rng = Random(seed ^ 0x9E3779B9)
        for nid in range(self.n_procs):
            self._last_heard[nid] = now
            self._suspect_after[nid] = SUSPECT_AFTER + rng.randrange(SUSPECT_JITTER)
        self._active = self._open_tasks > 0
        if self._active:
            self.sim.schedule(HB_INTERVAL, self._tick)

    def _note_task_done(self, fut) -> None:
        self._open_tasks -= 1
        if self._open_tasks <= 0:
            self._active = False  # pending ticks become no-ops; queue drains

    def _tick(self) -> None:
        if not self._active:
            return
        now = self.sim.now
        # Heartbeats: every declared-live node posts to every live peer.
        # The posts ride the fault fabric — charged, droppable, and
        # silently discarded once the sender's crash cycle passes.
        counts = self._counts
        k_hb = self._k["heartbeats"]
        for src in sorted(self.live):
            for dst in sorted(self.live):
                if dst == src:
                    continue
                counts[k_hb] += 1
                self.transport.post(
                    src, dst, self._on_hb, payload_words=1, category="recovery.hb"
                )
        # Suspicion sweep (deterministic order).
        for nid in sorted(self.live):
            if now - self._last_heard[nid] > self._suspect_after[nid]:
                if self._obs is not None:
                    self._obs.emit(now, "recovery.suspect", node=nid, data={"silent_for": now - self._last_heard[nid]})
                self._declare_dead(nid)
        if self._active:
            self.sim.schedule(HB_INTERVAL, self._tick)

    def _on_hb(self, node, src) -> None:
        self._last_heard[src] = self.sim.now

    # ------------------------------------------------------------------
    # death declaration
    # ------------------------------------------------------------------
    def _declare_dead(self, nid: int) -> None:
        now = self.sim.now
        crash_at = self.transport.plan.crashes.get(nid)
        if self.mode == "abort":
            from repro.dsm.faults import StallError

            silent = now - self._last_heard[nid]
            report = self.transport.watchdog.report(
                f"failure detector: node {nid} silent for {silent} cycles"
                + (f" (crash-stop at cycle {crash_at})" if crash_at is not None else "")
            )
            report.suspects = [nid] + [s for s in report.suspects if s != nid]
            raise StallError(report)
        self._finalize_death(nid, crash_at, now)

    def _finalize_death(self, nid: int, crash_at, now: int) -> None:
        # 1. Epoch bump + fabric fence: post-recovery traffic from/to the
        #    dead incarnation is discarded at the injection point.
        self.epoch += 1
        self.transport.epoch = self.epoch
        self.dead.add(nid)
        self.live.discard(nid)
        self._counts[self._k["epochs"]] += 1
        self._install_fence()
        if self._obs is not None:
            self._obs.emit(now, "recovery.dead", node=nid, data={"epoch": self.epoch, "crash_at": crash_at})
            self._obs.emit(now, "recovery.epoch", data={"epoch": self.epoch, "live": sorted(self.live)})
        # 2. Retire the dead node's task: its done future resolves with a
        #    Crashed marker instead of stalling the run.
        task = self._tasks[nid] if nid < len(self._tasks) else None
        if task is not None:
            self.sim.retire(task, Crashed(nid, now))
        # 3. Directory re-homing: every region homed at the dead node
        #    moves to its deterministic rank-order successor.
        rehomed = self._rehome(nid)
        # 4. In-flight reliable calls touching the dead node: retarget /
        #    fake-ack / abandon by category.  (After re-homing, so
        #    retargets see the new homes; before the entry rebuild, so
        #    fake-acks still find their pending fan-outs.)
        self._sweep_pending(nid)
        # 5. Rebuild directory entries from surviving caches.
        for engine in self._engines:
            self._rebuild_engine(engine, nid, rehomed)
        # 6. Protocol-specific membership shrink / re-issue.
        for proto in self._protocols:
            proto.on_node_dead(nid, self, rehomed)
        # 7. Break locks the dead node held; prune dead waiters.
        broken = 0
        for service in self._locks:
            broken += service.break_dead(nid, self)
        # 8. Collective membership shrink.
        for collector in self._collectors:
            collector.on_node_dead(nid, self)
        self._check_barrier()
        if self._obs is not None:
            self._obs.emit(self.sim.now, "recovery.complete", node=nid, data={"epoch": self.epoch, "rehomed": len(rehomed)})
        self.events.append(
            {
                "nid": nid,
                "crash_at": crash_at,
                "declared_at": now,
                "epoch": self.epoch,
                "rehomed_regions": len(rehomed),
                "broken_locks": broken,
                "live": sorted(self.live),
            }
        )

    # -- 1: epoch fence --------------------------------------------------
    def _install_fence(self) -> None:
        """Swap the transport's verdict for one that drops dead endpoints.

        Instance-attribute wrapper, installed only at the first death:
        fault runs without a declared death never pay the check.
        """
        dead = frozenset(self.dead)
        inner = self._base_verdict
        counts = self._counts
        k_fenced = self._k["fenced"]

        def fenced_verdict(src, dst, category):
            if src in dead or dst in dead:
                counts[k_fenced] += 1
                return None
            return inner(src, dst, category)

        self.transport._verdict = fenced_verdict

    # -- 3: re-homing ----------------------------------------------------
    def successor(self, nid: int) -> int:
        """Deterministic successor: the next live rank after ``nid``, wrapping."""
        if not self.live:
            raise RuntimeError("no live nodes left to re-home onto")
        return min(self.live, key=lambda r: (r - nid) % self.n_procs)

    def _rehome(self, nid: int) -> dict:
        """Reassign ``region.home`` for the dead node's regions; returns
        ``{rid: region}`` for this event.  Charges one query/ack round
        per (region, survivor) pair as real fabric messages."""
        rehomed: dict = {}
        succ = self.successor(nid)
        k = self._k["rehomed_regions"]
        for regions in self._region_dirs:
            for region in regions.all_regions():
                if region.home != nid or region.rid in rehomed:
                    continue
                region.home = succ
                rehomed[region.rid] = region
                self._counts[k] += 1
                if self._obs is not None:
                    self._obs.emit(self.sim.now, "recovery.rehome", node=succ, data={"rid": region.rid, "from": nid})
                for peer in sorted(self.live):
                    if peer == succ:
                        continue
                    self.transport.post(
                        succ, peer, self._on_rehome_query, peer, region.rid,
                        payload_words=1, category="recovery.rehome",
                    )
        return rehomed

    def _on_rehome_query(self, node, src, peer, rid) -> None:
        # Cost modeling for the successor's state gathering: the peer
        # answers with its copy/dirty state (the actual reconstruction
        # is synchronous; see the module docstring).
        self.transport.post(
            peer, src, self._on_rehome_ack, rid, payload_words=2, category="recovery.rehome"
        )

    def _on_rehome_ack(self, node, src, rid) -> None:
        pass

    # -- 4: pending sweep ------------------------------------------------
    def _sweep_pending(self, dead: int) -> None:
        kit = self.transport.kit
        counts = self._counts
        for pend in sorted(kit.pending.values(), key=lambda p: p.seq):
            if pend.src != dead and pend.dst != dead:
                continue
            kind, extra = self._categories.get(pend.category, (None, None))
            if kind == "custom":
                getattr(pend.handler.__self__, extra)(self, pend, dead)
                continue
            if pend.src == dead:
                # The caller died: nobody is waiting for this call's ack
                # anymore, and firing its callbacks against rebuilt state
                # would corrupt it — neutralize.
                kit.pending.pop(pend.seq, None)
                pend.fut._callbacks.clear()
                counts[self._k["abandoned"]] += 1
                continue
            # pend.dst == dead
            if kind == "home":
                region = extra.get(pend.call_args[0])
                kit.pending.pop(pend.seq, None)
                self.retarget(pend, region.home)
            elif kind == "push":
                # Acknowledge on the dead target's behalf so the fan-out
                # counter completes; its on_ack chain prunes the target.
                kit.pending.pop(pend.seq, None)
                counts[self._k["fake_acks"]] += 1
                self.transport._resolve_once(pend.fut, None)
            else:  # "ack" and unregistered categories
                kit.pending.pop(pend.seq, None)
                pend.fut._callbacks.clear()
                counts[self._k["abandoned"]] += 1

    def retarget(self, pend, new_dst: int) -> None:
        """Re-issue a reliable call at a new destination (same seq, same
        future — the receiver's dedup table keeps effects exactly-once
        even if the old home had already admitted the original)."""
        kit = self.transport.kit
        pend.dst = new_dst
        pend.attempts = 1
        pend.born = self.sim.now
        pend.epoch = self.epoch
        kit.pending[pend.seq] = pend
        self._counts[self._k["retargeted"]] += 1
        self.transport.post(
            pend.src, new_dst, pend.handler, *pend.args,
            payload_words=pend.payload_words, category=pend.category,
        )
        self.transport.after(kit._policy.timeout_for(1), partial(kit._check, pend))

    # -- 5: directory/cache rebuild --------------------------------------
    def _rebuild_engine(self, engine, dead: int, rehomed: dict) -> None:
        directory = engine.directory
        cache = engine.cache
        regions = engine.regions
        counts = self._counts
        # The dead node's copies are gone; dirty ones are lost state
        # (fail-stop: the home's data is the surviving authority).
        for copy in cache.tables[dead].values():
            if copy.state in cache._dirty_states:
                counts[self._k["lost_dirty"]] += 1
        cache.tables[dead].clear()
        for shard in directory._shards:
            for rid, ent in shard.items():
                region = regions.get(rid)
                # Queued requests from the dead node will never be
                # collected — drop them.
                if ent.queue:
                    ent.queue = type(ent.queue)(
                        item for item in ent.queue if item[1] != dead
                    )
                pending = ent.pending
                if pending is not None and pending["src"] == dead:
                    # The requester died mid-recall.  The recall itself is
                    # healthy (its home is alive), so let it run to
                    # completion — the tolerant ack collector sees the
                    # orphan mark and skips the final serve.
                    pending["orphan"] = True
                if ent.busy and ent.pending is None and ent.grantee == dead:
                    # Grant window whose grantee died before acking.
                    ent.busy = False
                    ent.grantee = None
                if ent.owner == dead:
                    ent.owner = None
                ent.sharers.discard(dead)
                if rid in rehomed:
                    self._rebuild_rehomed(directory, cache, region, ent, dead)
                if not ent.busy:
                    directory._drain(region, ent)

    def _rebuild_rehomed(self, directory, cache, region, ent, dead: int) -> None:
        """Reconstruct one re-homed entry at the successor.

        Adopt the freshest writer copy, convert the successor's cached
        copy into the home alias, reset the dead home's local-access
        bookkeeping, and re-admit whatever live work was in flight at
        the old home (the requesters' futures are still live; the dedup
        table keeps their eventual replies consistent with retried
        transmissions)."""
        succ = region.home
        # Freshest-writer adoption: a surviving owner's dirty copy is the
        # authoritative version of the region.  If the owner already
        # applied a recall — its writeback rode an inval ack the dead
        # home never processed (it would have been pruned as owner) —
        # the cache's writeback log still holds that data.
        if ent.owner is not None:
            ocopy = cache.tables[ent.owner].get(region.rid)
            if ocopy is not None and ocopy.state in cache._dirty_states:
                np.copyto(region.home_data, ocopy.data)
            else:
                rec = cache._wb_log.get((ent.owner, region.rid))
                if rec is not None:
                    np.copyto(region.home_data, rec)
        # The successor's own copy becomes the home alias.
        scopy = cache.tables[succ].get(region.rid)
        if scopy is None:
            cache.install(succ, region)
        else:
            if scopy.state in cache._dirty_states:
                np.copyto(region.home_data, scopy.data)
                if ent.owner == succ:
                    ent.owner = None
            scopy.data = region.home_data
            scopy.state = cache._home_state
            ent.sharers.discard(succ)
        # The dead home's own open accesses died with it.
        ent.home_readers = 0
        ent.home_writing = False
        # Live in-flight work at the old home: re-admit.  The old home's
        # recall fan-out (if any) is fully neutralized — its invalidation
        # sends had the dead node as source, so the sweep cleared their
        # ack callbacks — which makes outright cancel + re-issue safe
        # here (unlike the live-home orphan case above).
        reqs = []
        pending = ent.pending
        if pending is not None:
            if pending["src"] != dead:
                reqs.append((pending["kind"], pending["src"], pending["fut"]))
            ent.pending = None
        ent.busy = False
        ent.grantee = None
        # Requests from the successor itself — re-admitted here or still
        # parked on the old home's queue — must be granted remote-style:
        # the requester is suspended in its remote-miss epilogue (see
        # DirectoryService.enable_recovery).
        for kind, src, fut in reqs:
            if src == succ:
                directory._remote_self.add(fut)
        for item in ent.queue:
            if item[1] == succ:
                directory._remote_self.add(item[2])
        for kind, src, fut in reqs:
            if not directory._admit(kind, src, fut, region, ent):
                ent.queue.append((kind, src, fut))

    # ------------------------------------------------------------------
    # crash-aware hardware barrier (replaces machine.hw_barrier)
    # ------------------------------------------------------------------
    def _hw_barrier(self, nid: int):
        """Generator: rendezvous released when every *live* node arrived.

        ``arrived`` may be a superset of ``live`` (a node can arrive and
        then be declared dead); the release rule is
        ``live ⊆ arrived``, re-checked at every arrival and at every
        death declaration, so a crash inside a barrier epoch releases
        the survivors instead of stranding them."""
        if nid in self.dead:
            # A declared-dead task still running host-side: park it (its
            # retirement is imminent or already swept past this frame).
            yield Future(name="recovery:dead_barrier")
            return
        self._bar_arrived.add(nid)
        self.transport.stats.count("barrier.hw_arrive")
        fut = self._bar_fut
        self._check_barrier()
        yield fut

    def _check_barrier(self) -> None:
        if not self._bar_arrived or not self.live <= self._bar_arrived:
            return
        released = self._bar_fut
        self._bar_gen += 1
        self._bar_fut = Future(name=f"recovery:hw_barrier:{self._bar_gen}")
        self._bar_arrived = set()
        self.sim.schedule(self._hw_cost, partial(self._release_barrier, released))

    @staticmethod
    def _release_barrier(released: Future) -> None:
        if released._value is _UNSET and released._exc is None:
            released.resolve(None)

    # ------------------------------------------------------------------
    # introspection (chaos artifacts)
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-friendly recovery record for per-cell chaos artifacts."""
        counts = self._counts
        return {
            "mode": self.mode,
            "epoch": self.epoch,
            "live": sorted(self.live),
            "dead": sorted(self.dead),
            "events": list(self.events),
            "counters": {name: counts[key] for name, key in self._k.items() if counts[key]},
        }
