"""Per-operation software costs for region-based DSM runtimes.

All values are cycles on the simulated 33 MHz node.  Two concrete
tables are exported:

``CRL_COSTS``
    Models CRL 1.0: region mapping goes through a hash of the mapped-
    and unmapped-region caches, and a *cold* map of a remote region
    needs a metadata round trip to the home node before the local copy
    can be allocated.

``ACE_SC_COSTS``
    Models the Ace runtime's redesigned SC protocol: region ids encode
    home and size, so cold maps allocate locally without a metadata
    message, the map fast path is a cheaper table lookup, and the
    directory handlers are leaner.  The Ace *dispatch indirection*
    (region → space → protocol function pointer, §4.1) is NOT part of
    this table — it is charged by the Ace runtime layer on every
    primitive, which is why coarse-grained applications see the two
    systems at parity (§5.1, BSC discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DSMCosts:
    """Requester- and home-side cycle costs for one DSM runtime."""

    create: int = 120          # allocate a region at the local home
    map_hit: int = 40          # map of a locally cached (or home) region
    map_cold: int = 110        # first map: allocate + insert local copy
    map_needs_lookup: bool = True  # cold map of remote region costs a home RPC
    unmap: int = 20
    start_hit: int = 30        # start_read/start_write satisfied locally
    start_miss: int = 55       # requester-side bookkeeping around a miss
    end_op: int = 15           # end_read/end_write local bookkeeping
    dir_handler: int = 55      # home directory handler body
    inval_handler: int = 40    # invalidate/downgrade handler at a sharer
    flush: int = 45            # flush a dirty copy home (change-protocol path)
    meta_words: int = 3        # payload of a metadata-only message

    def with_(self, **kw) -> "DSMCosts":
        """Copy with fields replaced."""
        return replace(self, **kw)


CRL_COSTS = DSMCosts(
    start_hit=40,
    end_op=20,
    dir_handler=60,
)

ACE_SC_COSTS = DSMCosts(
    create=100,
    map_hit=14,
    map_cold=60,
    map_needs_lookup=False,
    unmap=8,
    start_hit=18,
    start_miss=45,
    end_op=8,
    dir_handler=40,
    inval_handler=32,
    flush=40,
)
