"""Region-based software-DSM machinery shared by CRL and Ace.

The paper's two systems — the CRL baseline and Ace's default
sequentially-consistent protocol — run the *same family* of home-based
MSI invalidation protocols; they differ in per-operation software costs
(mapping technique, dispatch path) and engineering detail (§5.1: "a
careful redesign of the sequential consistency protocol and a more
efficient mapping technique").  This package provides the protocol
engine once, parameterized by a :class:`~repro.dsm.costs.DSMCosts`
table, so both systems exercise identical coherence logic and their
measured difference is exactly the modeled software overhead — the
paper's own explanation of Figure 7a.
"""

from repro.dsm.costs import DSMCosts, ACE_SC_COSTS, CRL_COSTS
from repro.dsm.engine import DirectoryEngine, ProtocolError
from repro.dsm.locks import LockService
from repro.dsm.barrier import BarrierService

__all__ = [
    "ACE_SC_COSTS",
    "BarrierService",
    "CRL_COSTS",
    "DSMCosts",
    "DirectoryEngine",
    "LockService",
    "ProtocolError",
]
