"""Region-based software-DSM machinery shared by CRL and Ace.

The paper's two systems — the CRL baseline and Ace's default
sequentially-consistent protocol — run the *same family* of home-based
MSI invalidation protocols; they differ in per-operation software costs
(mapping technique, dispatch path) and engineering detail (§5.1: "a
careful redesign of the sequential consistency protocol and a more
efficient mapping technique").  This package provides the coherence
core once, parameterized by a :class:`~repro.dsm.costs.DSMCosts`
table, so both systems exercise identical coherence logic and their
measured difference is exactly the modeled software overhead — the
paper's own explanation of Figure 7a.

The core is layered (DESIGN.md §8): :class:`~repro.dsm.transport.Transport`
(message fabric), :class:`~repro.dsm.directory.DirectoryService`
(home-side state), :class:`~repro.dsm.regioncache.RegionCache`
(node-side copies), and :class:`~repro.dsm.hooks.ProtocolHooks`
(requester-side access hooks), composed by
:class:`~repro.dsm.coherence.CoherenceEngine`.
"""

from repro.dsm.costs import DSMCosts, ACE_SC_COSTS, CRL_COSTS
from repro.dsm.errors import ProtocolError
from repro.dsm.transport import SimTransport, Transport, as_transport
from repro.dsm.faults import (
    FaultPlan,
    FaultTransport,
    LinkFaults,
    OneShot,
    RetryPolicy,
    StallError,
    StallReport,
)
from repro.dsm.msi import HW_SC_TABLE, MSI_TABLE, EngineView, engine_view
from repro.dsm.recovery import Crashed, RecoveryManager
from repro.dsm.directory import DirEntry, DirectoryService
from repro.dsm.regioncache import RegionCache
from repro.dsm.hooks import ProtocolHooks
from repro.dsm.coherence import CoherenceEngine, DirectoryEngine
from repro.dsm.locks import LockService
from repro.dsm.barrier import BarrierService

__all__ = [
    "ACE_SC_COSTS",
    "BarrierService",
    "CRL_COSTS",
    "CoherenceEngine",
    "Crashed",
    "DSMCosts",
    "DirEntry",
    "DirectoryEngine",
    "DirectoryService",
    "EngineView",
    "FaultPlan",
    "FaultTransport",
    "HW_SC_TABLE",
    "LinkFaults",
    "LockService",
    "MSI_TABLE",
    "OneShot",
    "ProtocolError",
    "ProtocolHooks",
    "RecoveryManager",
    "RegionCache",
    "RetryPolicy",
    "SimTransport",
    "StallError",
    "StallReport",
    "Transport",
    "as_transport",
    "engine_view",
]
