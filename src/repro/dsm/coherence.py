"""The layered coherence core: Transport / Directory / RegionCache / Hooks.

This is the coherence engine of the reproduction: a sequentially
consistent, invalidation-based, region-granularity protocol of the
family CRL 1.0 implements, structured as atomic active-message
handlers plus per-region directory state at the home node — the
classical software-DSM organization — decomposed into four layers
(DESIGN.md §8):

* :class:`~repro.dsm.transport.Transport` — message fabric (the
  simulated active-message machine, behind an interface);
* :class:`~repro.dsm.directory.DirectoryService` — home-node directory
  state, addressed by ``(shard, region)``;
* :class:`~repro.dsm.regioncache.RegionCache` — per-node remote-copy
  state and the invalidation receive side;
* :class:`~repro.dsm.hooks.ProtocolHooks` — the requester-side
  before/after access hook dispatch both backends share.

State model
-----------
Per region, the home node holds a
:class:`~repro.dsm.directory.DirEntry`:

* ``owner`` — the remote node holding a dirty exclusive copy (home
  data is stale while set), or ``None``;
* ``sharers`` — remote nodes holding clean shared copies;
* ``home_readers`` / ``home_writing`` — the home task's own open
  accesses (a node runs one task, so these never count foreign work);
* ``busy`` + ``pending`` — an in-flight recall/invalidation fan-out;
* ``queue`` — FIFO of requests that arrived while the entry was busy,
  guaranteeing per-region request ordering and no starvation.

Node-side, each cached :class:`~repro.memory.region.RegionCopy` is
``invalid``/``shared``/``excl`` (``home`` for the home's alias of the
canonical array).  Exclusive copies stay dirty after ``end_write``
(lazy write-back, as in CRL); the next conflicting access recalls
them.  Invalidations that arrive while a copy is in use are deferred
until the matching ``end_read``/``end_write`` — required for
sequential consistency.
"""

from __future__ import annotations

from repro.dsm.costs import DSMCosts
from repro.dsm.directory import DirectoryService
from repro.dsm.hooks import ProtocolHooks
from repro.dsm.msi import MSI_TABLE
from repro.dsm.regioncache import RegionCache
from repro.dsm.transport import as_transport
from repro.memory import RegionDirectory


class CoherenceEngine:
    """One instance per (fabric, cost table); used by CRL and by Ace's SC protocol.

    Composition root: builds the directory, cache, and hooks layers
    over one transport, cross-wires the two handler edges that span
    layers (recall → cache, invalidation ack → directory), and exposes
    the hook generators as its own attributes so ``yield from
    engine.start_read(...)`` drives the hooks frame directly — callers
    of the old monolithic ``DirectoryEngine`` work unchanged, cycle for
    cycle.

    Parameters
    ----------
    fabric:
        A :class:`~repro.machine.machine.Machine` or any
        :class:`~repro.dsm.transport.Transport`.
    regions:
        The shared region directory.
    costs:
        Per-operation cycle table.
    stats_prefix:
        Namespace for this engine's stats and trace events.
    n_dir_shards:
        Directory shard count (see
        :class:`~repro.dsm.directory.DirectoryService`).
    checker:
        Optional :class:`~repro.sanitize.dynamic.DynamicChecker`.  When
        set, the cache reports copy installs/invalidations and the
        hooks validate mapping discipline on every access — both via
        the instance-attribute swap pattern, so a checker-less engine
        runs the exact same code paths as before.
    table:
        The :class:`~repro.spec.table.ProtocolTable` the three layers
        derive their state machine from (defaults to
        :data:`~repro.dsm.msi.MSI_TABLE`).
    """

    def __init__(
        self,
        fabric,
        regions: RegionDirectory,
        costs: DSMCosts,
        stats_prefix: str = "dsm",
        n_dir_shards: int = 1,
        checker=None,
        table=None,
    ):
        transport = as_transport(fabric)
        self.transport = transport
        self.machine = transport.machine
        self.regions = regions
        self.costs = costs
        self.prefix = stats_prefix
        self.checker = checker
        self.table = table if table is not None else MSI_TABLE
        # One observability handle for the whole engine (None when
        # tracing is off), shared by the layers that emit region state.
        tracer = transport.tracer
        obs = tracer.tracer("dsm." + stats_prefix) if tracer is not None else None
        self.cache = RegionCache(
            transport,
            regions,
            costs,
            prefix=stats_prefix,
            obs=obs,
            checker=checker,
            table=self.table,
        )
        self.directory = DirectoryService(
            transport,
            regions,
            costs,
            prefix=stats_prefix,
            n_shards=n_dir_shards,
            table=self.table,
        )
        # The two cross-layer handler edges, wired once: the directory's
        # recall fan-out posts to the cache's invalidation handler; the
        # cache's acks post back to the directory's collection handler.
        self.directory.wire_cache(self.cache)
        self.cache.wire_directory(self.directory)
        hooks = self.hooks = ProtocolHooks(
            transport,
            regions,
            costs,
            self.directory,
            self.cache,
            prefix=stats_prefix,
            obs=obs,
            checker=checker,
            table=self.table,
        )
        # Crash recovery, when the fabric carries it: the manager prunes
        # and re-homes this engine's directory/cache state at each death
        # declaration (repro.dsm.recovery).  None on every other fabric,
        # so the registration — like the rest of the recovery machinery —
        # costs nothing when off.
        if transport.recovery is not None:
            transport.recovery.register_engine(self)
        # Public API: the hook generators, bound through (callers drive
        # the hooks frame directly; no adapter generator in between).
        self.create = hooks.create
        self.map = hooks.map
        self.unmap = hooks.unmap
        self.start_read = hooks.start_read
        self.end_read = hooks.end_read
        self.start_write = hooks.start_write
        self.end_write = hooks.end_write
        self.flush = hooks.flush
        self.copy_of = self.cache.copy_of


#: Backwards-compatible name: the monolithic engine this composition replaced.
DirectoryEngine = CoherenceEngine
