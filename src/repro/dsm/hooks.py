"""ProtocolHooks: the requester-side access hooks over directory + cache.

The generators here are the before/after read/write hook dispatch both
backends share: CRL's ``rgn_*`` calls and Ace's default SC protocol
bind these exact generator objects (see :mod:`repro.dsm.coherence`),
so ``repro.crl`` is a cost-table configuration of the same core, not a
parallel implementation.

All public operations are generators to be driven by a node's task
(``yield from hooks.start_read(nid, copy)``); they charge the cost
table's cycles and perform whatever communication the directory state
requires, through the transport.

Hot-path notes: the collaborator operations this layer needs per
access (copy tables, directory entry lookup, transport rpc/post) are
bound as instance attributes at construction, so the hit path performs
the same attribute probes the monolithic engine did — the layer split
costs neither simulated cycles nor host time.
"""

from __future__ import annotations

import numpy as np

from repro.dsm.costs import DSMCosts
from repro.dsm.directory import DirectoryService
from repro.dsm.errors import ProtocolError
from repro.dsm.msi import MSI_TABLE, engine_view
from repro.dsm.regioncache import RegionCache
from repro.dsm.transport import Transport
from repro.machine.stats import intern_key
from repro.memory import RegionCopy
from repro.sim import Delay, Future


class ProtocolHooks:
    """Requester-side create/map/unmap, access, and flush generators."""

    def __init__(
        self,
        transport: Transport,
        regions,
        costs: DSMCosts,
        directory: DirectoryService,
        cache: RegionCache,
        prefix: str = "dsm",
        obs=None,
        checker=None,
        table=None,
    ):
        self.transport = transport
        self.regions = regions
        self.costs = costs
        self.directory = directory
        self.cache = cache
        self.prefix = prefix
        self._key = f"dir:{prefix}"
        # Requester-side state machine, derived from the protocol table
        # (repro.dsm.msi): the hit states, the home-alias state, the
        # states misses fill into, and what counts as dirty on a flush.
        # Bound once at construction — the per-access fast path reads
        # these attributes exactly as it used to read string literals.
        view = engine_view(table if table is not None else MSI_TABLE)
        self._read_hit = view.read_hit
        self._write_hit = view.write_hit
        self._home_state = view.home_state
        self._fill_read = view.fill_read
        self._fill_write = view.fill_write
        self._base_state = view.base_state
        self._dirty_states = view.dirty_states
        # Observability handle (None when tracing is off): region state
        # transitions are emitted from the miss/invalidate paths only —
        # hits change no state, so the hot hit path stays untouched.
        self._obs = obs
        self._sim = transport.sim
        # Collaborator fast-path references (see module docstring).
        self._copies = cache.tables
        self._entry = directory.entry
        self._fire_deferred = cache._fire_deferred
        self._drain = directory._drain
        self._rpc = transport.rpc
        self._post = transport.post
        self._nodes = transport.nodes
        # Stat keys and message categories are interned once here so the
        # per-access path never builds an f-string (see machine.stats).
        self._counts = transport.stats.counter_ref()
        self._stat_keys: dict[str, str] = {}
        p = prefix
        self._cat_map_lookup = intern_key(p, "map_lookup")
        self._cat_read_req = intern_key(p, "read_req")
        self._cat_write_req = intern_key(p, "write_req")
        self._cat_grant_ack = intern_key(p, "grant_ack")
        self._cat_flush = intern_key(p, "flush")
        # Counters the per-access fast path bumps directly.
        self._k_read_hit = intern_key(p, "read_hit")
        self._k_read_miss = intern_key(p, "read_miss")
        self._k_write_hit = intern_key(p, "write_hit")
        self._k_write_miss = intern_key(p, "write_miss")
        self._k_map_hit = intern_key(p, "map_hit")
        self._k_unmap = intern_key(p, "unmap")
        # Delay singletons per cost-table entry: the dominant yields of
        # every access allocate and validate nothing.
        self._d_create = Delay(costs.create)
        self._d_map_hit = Delay(costs.map_hit)
        self._d_map_cold = Delay(costs.map_cold)
        self._d_unmap = Delay(costs.unmap)
        self._d_start_hit = Delay(costs.start_hit)
        self._d_start_miss = Delay(costs.start_miss)
        self._d_end_op = Delay(costs.end_op)
        self._d_flush = Delay(costs.flush)
        # Home-side handlers, as the directory's stable bound methods
        # (these already point at the directory's reliable variants when
        # the transport is lossy — it swapped them in its own __init__).
        self._h_map_lookup = directory._h_map_lookup
        self._h_read_req = directory._h_read_req
        self._h_write_req = directory._h_write_req
        self._h_grant_ack = directory._h_grant_ack
        self._h_flush = directory._h_flush
        if not transport.reliable:
            # Requester side of the reliability contract: every remote
            # round trip goes through the RetryKit (sequence-numbered,
            # retransmitted until the reply lands), and the grant ack —
            # which closes the directory's busy window — is ack'd too.
            self._kit = transport.kit
            self._rpc = self._kit.rpc
            self._send_grant_ack = self._send_grant_ack_r
        if checker is not None:
            self._install_checked(checker)

    def _install_checked(self, checker) -> None:
        """Swap in access hooks that validate cache-level mapping
        discipline before delegating (instance-attribute pattern, like
        the reliable variants above: zero cost when no checker is set).

        The runtime-level wrapper already checks *handle*-level
        discipline for every protocol; this cache-level probe
        additionally catches accesses that reach the coherence core on
        a copy whose ``map_count`` has dropped to zero — possible when
        a protocol caches copies across unmaps and hands out a stale
        path.  The probe charges no cycles.
        """
        self._checker = checker
        inner_start_read = self.start_read
        inner_start_write = self.start_write

        def start_read(nid, copy):
            if copy.meta["map_count"] <= 0:
                checker.unmapped_use(nid, copy.rid, where="coherence start_read")
            yield from inner_start_read(nid, copy)

        def start_write(nid, copy):
            if copy.meta["map_count"] <= 0:
                checker.unmapped_use(nid, copy.rid, where="coherence start_write")
            yield from inner_start_write(nid, copy)

        self.start_read = start_read
        self.start_write = start_write

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _count(self, event: str, n: int = 1) -> None:
        key = self._stat_keys.get(event)
        if key is None:
            key = self._stat_keys[event] = intern_key(self.prefix, event)
        self._counts[key] += n

    def _trace_state(self, nid: int, rid: int, state: str) -> None:
        """Emit a region state transition (callers gate on ``self._obs``)."""
        self._obs.emit(self._sim.now, "region.state", node=nid, data={"rid": rid, "state": state})

    # ------------------------------------------------------------------
    # allocation and mapping
    # ------------------------------------------------------------------
    def create(self, nid: int, size: int):
        """Generator: allocate a region homed at ``nid``; returns the rid."""
        yield self._d_create
        region = self.regions.alloc(home=nid, size=size)
        self._entry(region.rid)
        self.cache.install(nid, region)
        self._count("create")
        if self._obs is not None:
            self._trace_state(nid, region.rid, self._home_state)
        return region.rid

    def map(self, nid: int, rid: int):
        """Generator: map ``rid`` on node ``nid``; returns the RegionCopy."""
        copy = self._copies[nid].get(rid)
        if copy is not None:
            yield self._d_map_hit
            self._counts[self._k_map_hit] += 1
        else:
            yield self._d_map_cold
            region = self.regions.get(rid)
            if region.home != nid and self.costs.map_needs_lookup:
                # CRL-style: learn the region's metadata from its home.
                yield from self._rpc(
                    nid,
                    region.home,
                    self._h_map_lookup,
                    rid,
                    payload_words=self.costs.meta_words,
                    category=self._cat_map_lookup,
                )
            copy = self.cache.install(nid, region)
            self._count("map_cold")
        copy.meta["map_count"] += 1
        copy.mapped = True
        return copy

    def unmap(self, nid: int, copy: RegionCopy):
        """Generator: unmap; the copy stays cached (unmapped-region cache)."""
        if copy.meta["map_count"] <= 0:
            raise ProtocolError(f"unmap of unmapped region {copy.rid} on node {nid}")
        if copy.meta["read_count"] or copy.meta["write_count"]:
            raise ProtocolError(f"unmap of region {copy.rid} with open accesses on node {nid}")
        yield self._d_unmap
        copy.meta["map_count"] -= 1
        copy.mapped = copy.meta["map_count"] > 0
        self._counts[self._k_unmap] += 1

    # ------------------------------------------------------------------
    # read / write entry points (called from node tasks)
    # ------------------------------------------------------------------
    def start_read(self, nid: int, copy: RegionCopy):
        """Generator: acquire a readable copy (blocks on a miss)."""
        region = copy.region
        yield self._d_start_hit
        # The directory entry is cached on the copy itself (it is
        # created once per region and never replaced), so the hot path
        # here (and in the other three access primitives) is a single
        # dict probe on a dict we need anyway.
        meta = copy.meta
        key = self._key
        ent = meta.get(key)
        if ent is None:
            ent = meta[key] = self._entry(region.rid)
        state = copy.state
        if state in self._read_hit or (
            state == self._home_state and ent.owner is None and not ent.busy
        ):
            if state == self._home_state:
                ent.home_readers += 1
            meta["read_count"] += 1
            self._counts[self._k_read_hit] += 1
            return
        self._counts[self._k_read_miss] += 1
        if self._obs is not None:
            # Pre-RPC miss marker: attribution reads it as "the next
            # directory wait on this node is for this region".
            self._obs.emit(
                self._sim.now, "dsm.miss", node=nid, data={"rid": region.rid, "op": "read"}
            )
        yield self._d_start_miss
        fut = Future(name=f"read:{region.rid}@{nid}")
        if nid == region.home:
            self._h_read_req(self._nodes[nid], nid, fut, region.rid)
            yield fut
            if copy.state != self._home_state:
                # Post-recovery only: a re-homed node's copy can sit in
                # a remote state.  A home-style grant (home_readers now
                # open) makes it the home view again — end_read closes
                # the access through the home path.
                copy.data = region.home_data
                copy.state = self._home_state
        else:
            data = yield from self._rpc(
                nid,
                region.home,
                self._h_read_req,
                region.rid,
                payload_words=self.costs.meta_words,
                category=self._cat_read_req,
            )
            np.copyto(copy.data, data)
            copy.state = self._fill_read
            if self._obs is not None:
                self._trace_state(nid, region.rid, copy.state)
            self._send_grant_ack(nid, region)
        meta["read_count"] += 1

    def end_read(self, nid: int, copy: RegionCopy):
        """Generator: release a read; may fire deferred invalidations."""
        meta = copy.meta
        if meta["read_count"] <= 0:
            raise ProtocolError(f"end_read without start_read on region {copy.rid} node {nid}")
        yield self._d_end_op
        meta["read_count"] -= 1
        if copy.state == self._home_state:
            key = self._key
            ent = meta.get(key)
            if ent is None:
                ent = meta[key] = self._entry(copy.region.rid)
            ent.home_readers -= 1
            if ent.home_readers == 0:
                self._drain(copy.region, ent)
        elif meta["read_count"] == 0:
            self._fire_deferred(copy)

    def start_write(self, nid: int, copy: RegionCopy):
        """Generator: acquire an exclusive copy (blocks until granted)."""
        region = copy.region
        yield self._d_start_hit
        meta = copy.meta
        key = self._key
        ent = meta.get(key)
        if ent is None:
            ent = meta[key] = self._entry(region.rid)
        state = copy.state
        if state in self._write_hit or (
            state == self._home_state and ent.owner is None and not ent.sharers and not ent.busy
        ):
            if state == self._home_state:
                ent.home_writing = True
            meta["write_count"] += 1
            self._counts[self._k_write_hit] += 1
            return
        self._counts[self._k_write_miss] += 1
        if self._obs is not None:
            self._obs.emit(
                self._sim.now, "dsm.miss", node=nid, data={"rid": region.rid, "op": "write"}
            )
        yield self._d_start_miss
        fut = Future(name=f"write:{region.rid}@{nid}")
        if nid == region.home:
            self._h_write_req(self._nodes[nid], nid, fut, region.rid)
            yield fut
            if copy.state != self._home_state:
                # Post-recovery only; see start_read's local branch.
                copy.data = region.home_data
                copy.state = self._home_state
        else:
            data = yield from self._rpc(
                nid,
                region.home,
                self._h_write_req,
                region.rid,
                payload_words=self.costs.meta_words,
                category=self._cat_write_req,
            )
            if data is not None:
                np.copyto(copy.data, data)
            copy.state = self._fill_write
            if self._obs is not None:
                self._trace_state(nid, region.rid, copy.state)
            self._send_grant_ack(nid, region)
        meta["write_count"] += 1

    def end_write(self, nid: int, copy: RegionCopy):
        """Generator: release a write (copy stays dirty-exclusive; lazy write-back)."""
        meta = copy.meta
        if meta["write_count"] <= 0:
            raise ProtocolError(f"end_write without start_write on region {copy.rid} node {nid}")
        yield self._d_end_op
        meta["write_count"] -= 1
        if copy.state == self._home_state:
            key = self._key
            ent = meta.get(key)
            if ent is None:
                ent = meta[key] = self._entry(copy.region.rid)
            if meta["write_count"] == 0:
                ent.home_writing = False
                self._drain(copy.region, ent)
        elif meta["write_count"] == 0:
            self._fire_deferred(copy)

    def flush(self, nid: int, rid: int):
        """Generator: push/drop the local copy so home data is current.

        Used when a space changes protocol: "changing from the default
        protocol to any other protocol results in all cached regions
        being flushed back to their home processors" (§3.1).
        """
        copy = self._copies[nid].get(rid)
        region = self.regions.get(rid)
        if copy is None or nid == region.home or copy.state == self._base_state:
            return
        yield self._d_flush
        dirty = copy.state in self._dirty_states
        payload = region.size if dirty else self.costs.meta_words
        data = copy.data.copy() if dirty else None
        if self._obs is not None:
            self._obs.emit(self._sim.now, "dsm.miss", node=nid, data={"rid": rid, "op": "flush"})
        # The copy keeps its state until the home has acked the flush:
        # a recall that crosses the flush on the wire must still find
        # the dirty data here and ship it in its ack, or the home would
        # serve readers stale home_data while the writeback is in
        # flight (the home drops the now-duplicate flush payload — see
        # DirectoryService._on_flush).
        yield from self._rpc(
            nid,
            region.home,
            self._h_flush,
            rid,
            data,
            payload_words=payload,
            category=self._cat_flush,
        )
        copy.state = self._base_state
        if self._obs is not None:
            self._trace_state(nid, rid, copy.state)
        self._count("flush")

    def _send_grant_ack(self, nid: int, region) -> None:
        self._post(
            nid,
            region.home,
            self._h_grant_ack,
            region.rid,
            payload_words=1,
            category=self._cat_grant_ack,
        )

    def _send_grant_ack_r(self, nid: int, region) -> None:
        # A lost grant ack would leave the home entry busy forever, so
        # on a lossy fabric it is a retried send; the home acks back and
        # dedups re-deliveries (see DirectoryService._on_grant_ack_r).
        self._kit.post(
            nid,
            region.home,
            self._h_grant_ack,
            region.rid,
            payload_words=1,
            category=self._cat_grant_ack,
        )
