"""Home-based MSI directory protocol engine.

This is the coherence core of the reproduction: a sequentially
consistent, invalidation-based, region-granularity protocol of the
family CRL 1.0 implements, structured as atomic active-message
handlers plus per-region directory state at the home node — the
classical software-DSM organization.

State model
-----------
Per region, the home node holds a :class:`DirEntry`:

* ``owner`` — the remote node holding a dirty exclusive copy (home
  data is stale while set), or ``None``;
* ``sharers`` — remote nodes holding clean shared copies;
* ``home_readers`` / ``home_writing`` — the home task's own open
  accesses (a node runs one task, so these never count foreign work);
* ``busy`` + ``pending`` — an in-flight recall/invalidation fan-out;
* ``queue`` — FIFO of requests that arrived while the entry was busy,
  guaranteeing per-region request ordering and no starvation.

Node-side, each cached :class:`~repro.memory.region.RegionCopy` is
``invalid``/``shared``/``excl`` (``home`` for the home's alias of the
canonical array).  Exclusive copies stay dirty after ``end_write``
(lazy write-back, as in CRL); the next conflicting access recalls
them.  Invalidations that arrive while a copy is in use are deferred
until the matching ``end_read``/``end_write`` — required for
sequential consistency.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.dsm.costs import DSMCosts
from repro.machine import Machine
from repro.machine.stats import intern_key
from repro.memory import Region, RegionCopy, RegionDirectory
from repro.sim import Delay, Future
from repro.sim.errors import SimulationError


class ProtocolError(SimulationError):
    """Raised for protocol misuse (unmatched start/end, bad unmap, ...)."""


class DirEntry:
    """Home-side directory state for one region."""

    __slots__ = ("owner", "sharers", "home_readers", "home_writing", "busy", "queue", "pending")

    def __init__(self):
        self.owner: int | None = None
        self.sharers: set[int] = set()
        self.home_readers = 0
        self.home_writing = False
        self.busy = False
        self.queue: deque = deque()
        self.pending: dict | None = None


class DirectoryEngine:
    """One instance per (machine, cost table); used by CRL and by Ace's SC protocol.

    All public operations are generators to be driven by a node's task
    (``yield from engine.start_read(nid, copy)``); they charge the cost
    table's cycles and perform whatever communication the directory
    state requires.
    """

    def __init__(
        self,
        machine: Machine,
        regions: RegionDirectory,
        costs: DSMCosts,
        stats_prefix: str = "dsm",
    ):
        self.machine = machine
        self.regions = regions
        self.costs = costs
        self.prefix = stats_prefix
        self._key = f"dir:{stats_prefix}"
        # Observability handle (None when tracing is off): region state
        # transitions are emitted from the miss/invalidate paths only —
        # hits change no state, so the hot hit path stays untouched.
        tracer = machine.tracer
        self._obs = tracer.tracer("dsm." + stats_prefix) if tracer is not None else None
        # per-node cache of copies: node id -> {rid: RegionCopy}
        self._copies: list[dict[int, RegionCopy]] = [dict() for _ in range(machine.n_procs)]
        # Stat keys and message categories are interned once here so the
        # per-access path never builds an f-string (see machine.stats).
        self._counts = machine.stats.counter_ref()
        self._stat_keys: dict[str, str] = {}
        p = stats_prefix
        self._cat_map_lookup = intern_key(p, "map_lookup")
        self._cat_map_reply = intern_key(p, "map_reply")
        self._cat_read_req = intern_key(p, "read_req")
        self._cat_write_req = intern_key(p, "write_req")
        self._cat_read_data = intern_key(p, "read_data")
        self._cat_write_data = intern_key(p, "write_data")
        self._cat_upgrade_ack = intern_key(p, "upgrade_ack")
        self._cat_grant_ack = intern_key(p, "grant_ack")
        self._cat_inval = intern_key(p, "inval")
        self._cat_inval_ack = intern_key(p, "inval_ack")
        self._cat_flush = intern_key(p, "flush")
        self._cat_flush_ack = intern_key(p, "flush_ack")
        # Counters the per-access fast path bumps directly.
        self._k_read_hit = intern_key(p, "read_hit")
        self._k_read_miss = intern_key(p, "read_miss")
        self._k_write_hit = intern_key(p, "write_hit")
        self._k_write_miss = intern_key(p, "write_miss")
        self._k_map_hit = intern_key(p, "map_hit")
        self._k_unmap = intern_key(p, "unmap")
        # Delay singletons per cost-table entry: the dominant yields of
        # every access allocate and validate nothing.
        self._d_create = Delay(costs.create)
        self._d_map_hit = Delay(costs.map_hit)
        self._d_map_cold = Delay(costs.map_cold)
        self._d_unmap = Delay(costs.unmap)
        self._d_start_hit = Delay(costs.start_hit)
        self._d_start_miss = Delay(costs.start_miss)
        self._d_end_op = Delay(costs.end_op)
        self._d_flush = Delay(costs.flush)
        # Stable bound-method handler objects: message sends fetch an
        # attribute instead of materializing a bound method per call,
        # and the machine's handler-stat cache hits on identity.
        self._h_map_lookup = self._on_map_lookup
        self._h_read_req = self._on_read_req
        self._h_write_req = self._on_write_req
        self._h_grant_ack = self._on_grant_ack
        self._h_inval_req = self._on_inval_req
        self._h_inval_ack = self._on_inval_ack
        self._h_flush = self._on_flush

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _ent(self, region: Region) -> DirEntry:
        ent = region.meta.get(self._key)
        if ent is None:
            ent = DirEntry()
            region.meta[self._key] = ent
        return ent

    def _count(self, event: str, n: int = 1) -> None:
        key = self._stat_keys.get(event)
        if key is None:
            key = self._stat_keys[event] = intern_key(self.prefix, event)
        self._counts[key] += n

    def _trace_state(self, nid: int, rid: int, state: str) -> None:
        """Emit a region state transition (callers gate on ``self._obs``)."""
        self._obs.emit(
            self.machine.sim.now, "region.state", node=nid, data={"rid": rid, "state": state}
        )

    def copy_of(self, nid: int, rid: int) -> RegionCopy | None:
        """The node's cached copy of ``rid``, if any (None otherwise)."""
        return self._copies[nid].get(rid)

    # ------------------------------------------------------------------
    # allocation and mapping
    # ------------------------------------------------------------------
    def create(self, nid: int, size: int):
        """Generator: allocate a region homed at ``nid``; returns the rid."""
        yield self._d_create
        region = self.regions.alloc(home=nid, size=size)
        self._ent(region)
        copy = RegionCopy(region, nid)
        copy.data = region.home_data  # the home's copy aliases canonical storage
        copy.state = "home"
        copy.meta["read_count"] = 0
        copy.meta["write_count"] = 0
        copy.meta["map_count"] = 0
        copy.meta["deferred"] = []
        self._copies[nid][region.rid] = copy
        self._count("create")
        if self._obs is not None:
            self._trace_state(nid, region.rid, "home")
        return region.rid

    def map(self, nid: int, rid: int):
        """Generator: map ``rid`` on node ``nid``; returns the RegionCopy."""
        copy = self._copies[nid].get(rid)
        if copy is not None:
            yield self._d_map_hit
            self._counts[self._k_map_hit] += 1
        else:
            yield self._d_map_cold
            region = self.regions.get(rid)
            if region.home != nid and self.costs.map_needs_lookup:
                # CRL-style: learn the region's metadata from its home.
                yield from self.machine.rpc(
                    nid,
                    region.home,
                    self._h_map_lookup,
                    rid,
                    payload_words=self.costs.meta_words,
                    category=self._cat_map_lookup,
                )
            copy = RegionCopy(region, nid)
            if region.home == nid:  # pragma: no cover - home copy made in create
                copy.data = region.home_data
                copy.state = "home"
            copy.meta["read_count"] = 0
            copy.meta["write_count"] = 0
            copy.meta["map_count"] = 0
            copy.meta["deferred"] = []
            self._copies[nid][rid] = copy
            self._count("map_cold")
        copy.meta["map_count"] += 1
        copy.mapped = True
        return copy

    def _on_map_lookup(self, node, src, fut, rid):
        region = self.regions.get(rid)
        self.machine.reply(
            fut, region.size, payload_words=self.costs.meta_words, category=self._cat_map_reply
        )

    def unmap(self, nid: int, copy: RegionCopy):
        """Generator: unmap; the copy stays cached (unmapped-region cache)."""
        if copy.meta["map_count"] <= 0:
            raise ProtocolError(f"unmap of unmapped region {copy.rid} on node {nid}")
        if copy.meta["read_count"] or copy.meta["write_count"]:
            raise ProtocolError(f"unmap of region {copy.rid} with open accesses on node {nid}")
        yield self._d_unmap
        copy.meta["map_count"] -= 1
        copy.mapped = copy.meta["map_count"] > 0
        self._counts[self._k_unmap] += 1

    # ------------------------------------------------------------------
    # read / write entry points (called from node tasks)
    # ------------------------------------------------------------------
    def start_read(self, nid: int, copy: RegionCopy):
        """Generator: acquire a readable copy (blocks on a miss)."""
        region = copy.region
        yield self._d_start_hit
        # The directory entry is cached on the copy itself (it is
        # created once per region and never replaced), so the hot path
        # here (and in the other three access primitives) is a single
        # dict probe on a dict we need anyway.
        meta = copy.meta
        key = self._key
        ent = meta.get(key)
        if ent is None:
            ent = region.meta.get(key)
            if ent is None:
                ent = self._ent(region)
            meta[key] = ent
        state = copy.state
        if state in ("shared", "excl") or (
            state == "home" and ent.owner is None and not ent.busy
        ):
            if state == "home":
                ent.home_readers += 1
            meta["read_count"] += 1
            self._counts[self._k_read_hit] += 1
            return
        self._counts[self._k_read_miss] += 1
        yield self._d_start_miss
        fut = Future(name=f"read:{region.rid}@{nid}")
        if nid == region.home:
            self._on_read_req(self.machine.nodes[nid], nid, fut, region.rid)
            yield fut
        else:
            data = yield from self.machine.rpc(
                nid,
                region.home,
                self._h_read_req,
                region.rid,
                payload_words=self.costs.meta_words,
                category=self._cat_read_req,
            )
            np.copyto(copy.data, data)
            copy.state = "shared"
            if self._obs is not None:
                self._trace_state(nid, region.rid, "shared")
            self._send_grant_ack(nid, region)
        meta["read_count"] += 1

    def end_read(self, nid: int, copy: RegionCopy):
        """Generator: release a read; may fire deferred invalidations."""
        meta = copy.meta
        if meta["read_count"] <= 0:
            raise ProtocolError(f"end_read without start_read on region {copy.rid} node {nid}")
        yield self._d_end_op
        meta["read_count"] -= 1
        if copy.state == "home":
            key = self._key
            ent = meta.get(key)
            if ent is None:
                ent = meta[key] = self._ent(copy.region)
            ent.home_readers -= 1
            if ent.home_readers == 0:
                self._drain(copy.region, ent)
        elif meta["read_count"] == 0:
            self._fire_deferred(copy)

    def start_write(self, nid: int, copy: RegionCopy):
        """Generator: acquire an exclusive copy (blocks until granted)."""
        region = copy.region
        yield self._d_start_hit
        meta = copy.meta
        key = self._key
        ent = meta.get(key)
        if ent is None:
            ent = region.meta.get(key)
            if ent is None:
                ent = self._ent(region)
            meta[key] = ent
        state = copy.state
        if state == "excl" or (
            state == "home" and ent.owner is None and not ent.sharers and not ent.busy
        ):
            if state == "home":
                ent.home_writing = True
            meta["write_count"] += 1
            self._counts[self._k_write_hit] += 1
            return
        self._counts[self._k_write_miss] += 1
        yield self._d_start_miss
        fut = Future(name=f"write:{region.rid}@{nid}")
        if nid == region.home:
            self._on_write_req(self.machine.nodes[nid], nid, fut, region.rid)
            yield fut
        else:
            data = yield from self.machine.rpc(
                nid,
                region.home,
                self._h_write_req,
                region.rid,
                payload_words=self.costs.meta_words,
                category=self._cat_write_req,
            )
            if data is not None:
                np.copyto(copy.data, data)
            copy.state = "excl"
            if self._obs is not None:
                self._trace_state(nid, region.rid, "excl")
            self._send_grant_ack(nid, region)
        meta["write_count"] += 1

    def end_write(self, nid: int, copy: RegionCopy):
        """Generator: release a write (copy stays dirty-exclusive; lazy write-back)."""
        meta = copy.meta
        if meta["write_count"] <= 0:
            raise ProtocolError(f"end_write without start_write on region {copy.rid} node {nid}")
        yield self._d_end_op
        meta["write_count"] -= 1
        if copy.state == "home":
            key = self._key
            ent = meta.get(key)
            if ent is None:
                ent = meta[key] = self._ent(copy.region)
            if meta["write_count"] == 0:
                ent.home_writing = False
                self._drain(copy.region, ent)
        elif meta["write_count"] == 0:
            self._fire_deferred(copy)

    def flush(self, nid: int, rid: int):
        """Generator: push/drop the local copy so home data is current.

        Used when a space changes protocol: "changing from the default
        protocol to any other protocol results in all cached regions
        being flushed back to their home processors" (§3.1).
        """
        copy = self._copies[nid].get(rid)
        region = self.regions.get(rid)
        if copy is None or nid == region.home or copy.state == "invalid":
            return
        yield self._d_flush
        dirty = copy.state == "excl"
        payload = region.size if dirty else self.costs.meta_words
        data = copy.data.copy() if dirty else None
        copy.state = "invalid"
        if self._obs is not None:
            self._trace_state(nid, rid, "invalid")
        yield from self.machine.rpc(
            nid,
            region.home,
            self._h_flush,
            rid,
            data,
            payload_words=payload,
            category=self._cat_flush,
        )
        self._count("flush")

    def _on_flush(self, node, src, fut, rid, data):
        region = self.regions.get(rid)
        ent = self._ent(region)
        if data is not None:
            np.copyto(region.home_data, data)
        if ent.owner == src:
            ent.owner = None
        ent.sharers.discard(src)
        self.machine.reply(fut, None, payload_words=1, category=self._cat_flush_ack)

    # ------------------------------------------------------------------
    # home-side admission (atomic handler context)
    # ------------------------------------------------------------------
    def _on_read_req(self, node, src, fut, rid):
        region = self.regions.get(rid)
        ent = self._ent(region)
        if not self._admit("read", src, fut, region, ent):
            ent.queue.append(("read", src, fut))

    def _on_write_req(self, node, src, fut, rid):
        region = self.regions.get(rid)
        ent = self._ent(region)
        if not self._admit("write", src, fut, region, ent):
            ent.queue.append(("write", src, fut))

    def _admit(self, kind: str, src: int, fut: Future, region: Region, ent: DirEntry) -> bool:
        """Try to serve a request; False means 'leave it on the queue'."""
        home = region.home
        if ent.busy:
            return False
        if kind == "read":
            if ent.home_writing and src != home:
                return False
            if ent.owner is not None and ent.owner != src:
                self._begin_recall(region, ent, kind, src, fut, targets=[(ent.owner, "downgrade")])
                return True
            self._serve_read(region, ent, src, fut)
            return True
        # write
        if (ent.home_writing or ent.home_readers > 0) and src != home:
            return False
        targets = []
        if ent.owner is not None and ent.owner != src:
            targets.append((ent.owner, "invalidate"))
        if ent.sharers:
            targets.extend((s, "invalidate") for s in sorted(ent.sharers) if s != src)
        if targets:
            self._begin_recall(region, ent, kind, src, fut, targets=targets)
            return True
        self._serve_write(region, ent, src, fut)
        return True

    def _serve_read(self, region: Region, ent: DirEntry, src: int, fut: Future) -> None:
        if src == region.home:
            ent.home_readers += 1
            fut.resolve(None)
        else:
            ent.sharers.add(src)
            # The entry stays busy until the grantee acknowledges install:
            # otherwise a queued write's invalidation could overtake the
            # grant data in the network (grant-in-flight race).
            ent.busy = True
            self.machine.reply(
                fut,
                region.home_data.copy(),
                payload_words=region.size,
                category=self._cat_read_data,
            )

    def _serve_write(self, region: Region, ent: DirEntry, src: int, fut: Future) -> None:
        if src == region.home:
            ent.home_writing = True
            fut.resolve(None)
            return
        had_copy = src in ent.sharers
        ent.sharers.discard(src)
        ent.owner = src
        ent.busy = True  # until grant-ack; see _serve_read
        if had_copy:  # upgrade: requester's shared data is current
            self.machine.reply(fut, None, payload_words=1, category=self._cat_upgrade_ack)
        else:
            self.machine.reply(
                fut,
                region.home_data.copy(),
                payload_words=region.size,
                category=self._cat_write_data,
            )

    def _on_grant_ack(self, node, src, rid):
        region = self.regions.get(rid)
        ent = self._ent(region)
        ent.busy = False
        self._drain(region, ent)

    def _send_grant_ack(self, nid: int, region: Region) -> None:
        self.machine.post(
            nid,
            region.home,
            self._h_grant_ack,
            region.rid,
            payload_words=1,
            category=self._cat_grant_ack,
        )

    # ------------------------------------------------------------------
    # recall / invalidation fan-out
    # ------------------------------------------------------------------
    def _begin_recall(self, region, ent, kind, src, fut, targets) -> None:
        ent.busy = True
        ent.pending = {"kind": kind, "src": src, "fut": fut, "need": len(targets)}
        self._count("recall")
        for target, mode in targets:
            self.machine.post(
                region.home,
                target,
                self._h_inval_req,
                region.rid,
                mode,
                payload_words=self.costs.meta_words,
                category=self._cat_inval,
            )

    def _on_inval_req(self, node, src_home, rid, mode):
        copy = self._copies[node.nid].get(rid)
        if copy is None:  # pragma: no cover - directory targets only holders
            raise ProtocolError(f"invalidate for uncached region {rid} at node {node.nid}")
        if copy.meta["read_count"] or copy.meta["write_count"]:
            copy.meta["deferred"].append(mode)
            self._count("inval_deferred")
            return
        self._apply_inval(copy, mode)

    def _apply_inval(self, copy: RegionCopy, mode: str) -> None:
        region = copy.region
        dirty = copy.state == "excl"
        data = copy.data.copy() if dirty else None
        if mode == "invalidate":
            copy.state = "invalid"
        else:  # downgrade
            copy.state = "shared" if dirty else copy.state
        if self._obs is not None:
            self._trace_state(copy.node, region.rid, copy.state)
        payload = region.size if dirty else self.costs.meta_words
        # handler work before the ack leaves the node
        self.machine.sim.schedule(
            self.costs.inval_handler,
            lambda: self.machine.post(
                copy.node,
                region.home,
                self._h_inval_ack,
                region.rid,
                copy.node,
                mode,
                data,
                payload_words=payload,
                category=self._cat_inval_ack,
            ),
        )

    def _fire_deferred(self, copy: RegionCopy) -> None:
        deferred = copy.meta["deferred"]
        while deferred:
            self._apply_inval(copy, deferred.pop(0))

    def _on_inval_ack(self, node, src, rid, target, mode, data):
        region = self.regions.get(rid)
        ent = self._ent(region)
        if data is not None:
            np.copyto(region.home_data, data)
        if ent.owner == target:
            ent.owner = None
        ent.sharers.discard(target)
        if mode == "downgrade":
            ent.sharers.add(target)
        pending = ent.pending
        if pending is None:  # pragma: no cover - acks only while pending
            raise ProtocolError(f"stray invalidation ack for region {rid}")
        pending["need"] -= 1
        if pending["need"] > 0:
            return
        ent.busy = False
        ent.pending = None
        if pending["kind"] == "read":
            self._serve_read(region, ent, pending["src"], pending["fut"])
        else:
            self._serve_write(region, ent, pending["src"], pending["fut"])
        self._drain(region, ent)

    def _drain(self, region: Region, ent: DirEntry) -> None:
        while ent.queue and not ent.busy:
            kind, src, fut = ent.queue[0]
            if not self._admit(kind, src, fut, region, ent):
                break
            ent.queue.popleft()
