"""RegionCache: per-node remote-copy state.

The node side of the MSI protocol: which regions each node holds, in
what state (``invalid``/``shared``/``excl``/``home``), with what open
access counts, and the invalidation handler that runs when the home
recalls a copy.  Invalidations arriving while a copy is in use are
deferred until the matching ``end_read``/``end_write`` — required for
sequential consistency.

The copy tables are exposed as :attr:`RegionCache.tables` (a list of
per-node dicts) so the access fast path in
:class:`~repro.dsm.hooks.ProtocolHooks` can probe them directly — the
layer boundary adds no indirection on the hit path.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.dsm.costs import DSMCosts
from repro.dsm.errors import ProtocolError
from repro.dsm.faults import _DEFER
from repro.dsm.msi import MSI_TABLE, engine_view
from repro.dsm.transport import Transport
from repro.machine.stats import intern_key
from repro.memory import Region, RegionCopy, RegionDirectory


class RegionCache:
    """Per-node cached-copy tables and the invalidation receive side."""

    #: writeback log, a dict only on recovery-enabled fabrics (see
    #: _install_reliable) — class default keeps the probe one attr read.
    _wb_log = None

    def __init__(
        self,
        transport: Transport,
        regions: RegionDirectory,
        costs: DSMCosts,
        prefix: str = "dsm",
        obs=None,
        checker=None,
        table=None,
    ):
        self.transport = transport
        self.regions = regions
        self.costs = costs
        self.prefix = prefix
        # The node-side state machine, derived from the protocol table
        # (see repro.dsm.msi): which states are dirty and where each
        # recall mode sends them.  Bound once; the handlers below read
        # these exactly as they used to read string literals.
        view = engine_view(table if table is not None else MSI_TABLE)
        self._home_state = view.home_state
        self._dirty_states = view.dirty_states
        self._inval_next = view.inval_next
        # Observability handle (None when tracing is off): shared with
        # the hooks layer by the composing engine.
        self._obs = obs
        #: per-node cache of copies: node id -> {rid: RegionCopy}
        self.tables: list[dict[int, RegionCopy]] = [dict() for _ in range(transport.n_procs)]
        self._counts = transport.stats.counter_ref()
        self._k_inval_deferred = intern_key(prefix, "inval_deferred")
        self._cat_inval_ack = intern_key(prefix, "inval_ack")
        self._sim = transport.sim
        self._post = transport.post
        self._after = transport.after
        self._defer_post = transport.defer_post
        # Stable bound handler (see DirectoryService).
        self._h_inval_req = self._on_inval_req
        # Home-side invalidation-ack handler; see wire_directory.
        self._h_inval_ack = None
        if not transport.reliable:
            self._install_reliable(transport)
        if checker is not None:
            self._install_checked(checker)

    def _install_checked(self, checker) -> None:
        """Swap in sanitizer-notifying variants of install/invalidate.

        Same pattern as :meth:`_install_reliable`: a checker-less cache
        keeps the original methods, so the dynamic sanitizer is strictly
        zero-cost when off.  Notifications change no simulated state and
        charge no cycles, so even a checked run keeps its clock.
        """
        self._checker = checker
        inner_install = self.install
        inner_apply = self._apply_inval

        def install(nid, region):
            copy = inner_install(nid, region)
            checker.cache_installed(nid, region.rid)
            return copy

        def _apply_inval(copy, mode):
            inner_apply(copy, mode)
            if copy.state == "invalid":
                checker.cache_invalidated(copy.node, copy.region.rid)

        self.install = install
        self._apply_inval = _apply_inval

        inner_apply_r = self._apply_inval_r

        def _apply_inval_r(copy, mode, fut, seq):
            inner_apply_r(copy, mode, fut, seq)
            if copy.state == "invalid":
                checker.cache_invalidated(copy.node, copy.region.rid)

        self._apply_inval_r = _apply_inval_r

    def _install_reliable(self, transport) -> None:
        """Swap in the ack'd invalidation receive side (lossy fabric).

        Reliable invalidations arrive as sequence-numbered RetryKit
        sends carrying a future; the ack is a reply on that future
        (data rides along), and ``_inval_done`` keeps each logical
        invalidation exactly-once: duplicates of an unapplied/deferred
        request are dropped (the original will ack), duplicates of a
        completed one get the recorded ack replayed.
        """
        self._inval_done: dict = {}  # seq -> _DEFER | (data, payload_words)
        self._reply = transport.reply
        self._h_inval_req = self._on_inval_req_r
        self._fire_deferred = self._fire_deferred_r
        if transport.recovery is not None:
            # Crash recovery can re-issue a recall this node already
            # applied (the re-homed successor cannot know which of the
            # old home's invalidations landed) — tolerate instead of
            # treating a missing copy as a protocol bug.
            self._h_inval_req = self._on_inval_req_rt
            # (nid, rid) -> data of this node's last applied dirty
            # writeback: if the ack carrying it dies with the home, the
            # re-homed rebuild adopts it from here instead of losing a
            # surviving node's writes.
            self._wb_log: dict = {}

    def wire_directory(self, directory) -> None:
        """Bind the home-side handler invalidation acks are sent to."""
        self._h_inval_ack = directory._h_inval_ack

    # ------------------------------------------------------------------
    # copy management
    # ------------------------------------------------------------------
    def copy_of(self, nid: int, rid: int) -> RegionCopy | None:
        """The node's cached copy of ``rid``, if any (None otherwise)."""
        return self.tables[nid].get(rid)

    def install(self, nid: int, region: Region) -> RegionCopy:
        """Create and table a fresh copy of ``region`` on ``nid``.

        The home's copy aliases canonical storage; remote copies start
        ``invalid`` until the hooks layer fills them.
        """
        copy = RegionCopy(region, nid)
        if region.home == nid:
            copy.data = region.home_data  # the home's copy aliases canonical storage
            copy.state = self._home_state
        copy.meta["read_count"] = 0
        copy.meta["write_count"] = 0
        copy.meta["map_count"] = 0
        copy.meta["deferred"] = []
        self.tables[nid][region.rid] = copy
        return copy

    def _trace_state(self, nid: int, rid: int, state: str) -> None:
        """Emit a region state transition (callers gate on ``self._obs``)."""
        self._obs.emit(self._sim.now, "region.state", node=nid, data={"rid": rid, "state": state})

    # ------------------------------------------------------------------
    # invalidation receive side (handler context)
    # ------------------------------------------------------------------
    def _on_inval_req(self, node, src_home, rid, mode):
        copy = self.tables[node.nid].get(rid)
        if copy is None:  # pragma: no cover - directory targets only holders
            raise ProtocolError(f"invalidate for uncached region {rid} at node {node.nid}")
        if copy.meta["read_count"] or copy.meta["write_count"]:
            copy.meta["deferred"].append(mode)
            self._counts[self._k_inval_deferred] += 1
            return
        self._apply_inval(copy, mode)

    def _apply_inval(self, copy: RegionCopy, mode: str) -> None:
        region = copy.region
        st = copy.state
        dirty = st in self._dirty_states
        data = copy.data.copy() if dirty else None
        # The table's next-state map for this recall mode; states it
        # does not cover (already invalid, home alias) keep their state.
        copy.state = self._inval_next[mode].get(st, st)
        if copy.node == region.home and copy.state != self._home_state:
            # Only possible after crash recovery: the re-homed successor
            # held a remote-state copy of its own region (it was granted
            # remote-style mid-re-home).  A recall returns it to the home
            # alias — its writeback (captured above) rides the ack and
            # lands in home_data like any owner's, and from here on the
            # hr/hw admission gate keeps the home's accesses coherent.
            copy.data = region.home_data
            copy.state = self._home_state
        if self._obs is not None:
            self._trace_state(copy.node, region.rid, copy.state)
        payload = region.size if dirty else self.costs.meta_words
        # handler work before the ack leaves the node; defer_post keeps
        # the causal link to the inval request across the deferral
        self._defer_post(
            self.costs.inval_handler,
            copy.node,
            region.home,
            self._h_inval_ack,
            region.rid,
            copy.node,
            mode,
            data,
            payload_words=payload,
            category=self._cat_inval_ack,
        )

    def _fire_deferred(self, copy: RegionCopy) -> None:
        deferred = copy.meta["deferred"]
        while deferred:
            self._apply_inval(copy, deferred.pop(0))

    # ------------------------------------------------------------------
    # reliable variants (installed by _install_reliable)
    # ------------------------------------------------------------------
    def _on_inval_req_r(self, node, src_home, fut, rid, mode, seq=None):
        done = self._inval_done.get(seq)
        if done is not None:
            if done is not _DEFER:
                data, payload = done
                self._reply(fut, data, payload_words=payload, category=self._cat_inval_ack)
            return
        copy = self.tables[node.nid].get(rid)
        if copy is None:  # pragma: no cover - directory targets only holders
            raise ProtocolError(f"invalidate for uncached region {rid} at node {node.nid}")
        if copy.meta["read_count"] or copy.meta["write_count"]:
            if seq is not None:
                self._inval_done[seq] = _DEFER
            copy.meta["deferred"].append((mode, fut, seq))
            self._counts[self._k_inval_deferred] += 1
            return
        self._apply_inval_r(copy, mode, fut, seq)

    def _apply_inval_r(self, copy: RegionCopy, mode: str, fut, seq) -> None:
        region = copy.region
        st = copy.state
        dirty = st in self._dirty_states
        data = copy.data.copy() if dirty else None
        if dirty and self._wb_log is not None:
            self._wb_log[(copy.node, region.rid)] = data
        copy.state = self._inval_next[mode].get(st, st)
        if self._obs is not None:
            self._trace_state(copy.node, region.rid, copy.state)
        payload = region.size if dirty else self.costs.meta_words
        if seq is not None:
            self._inval_done[seq] = (data, payload)
        self._after(
            self.costs.inval_handler,
            partial(self._reply, fut, data, payload_words=payload, category=self._cat_inval_ack),
        )

    def _fire_deferred_r(self, copy: RegionCopy) -> None:
        deferred = copy.meta["deferred"]
        while deferred:
            mode, fut, seq = deferred.pop(0)
            self._apply_inval_r(copy, mode, fut, seq)

    def _on_inval_req_rt(self, node, src_home, fut, rid, mode, seq=None):
        """Recovery-tolerant invalidation receive (see _install_reliable):
        an invalidation for a copy this node no longer holds is already
        satisfied — ack it idempotently."""
        if self.tables[node.nid].get(rid) is None and self._inval_done.get(seq) is None:
            payload = self.costs.meta_words
            if seq is not None:
                self._inval_done[seq] = (None, payload)
            self._after(
                self.costs.inval_handler,
                partial(self._reply, fut, None, payload_words=payload, category=self._cat_inval_ack),
            )
            return
        self._on_inval_req_r(node, src_home, fut, rid, mode, seq)
