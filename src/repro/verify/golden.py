"""Golden-trace capture: pin the kernel's observable behavior bit-for-bit.

The simulator promises that a run is a pure function of its inputs:
same program, same ``jitter_seed`` ⇒ same event order, same simulated
cycle counts, same stats.  Performance work on the kernel hot path is
only legal while that promise holds, so this module captures a compact
fingerprint of representative runs — final simulated time, an
order-sensitive hash of the full event trace, and the complete stats
snapshot — which ``tests/verify/test_golden_trace.py`` compares against
the checked-in ``tests/verify/golden_traces.json`` (captured from the
pre-fast-path kernel).

Regenerate (only when an *intentional* semantic change is made)::

    PYTHONPATH=src python -m repro.verify.golden tests/verify/golden_traces.json

Task names are normalized by stripping the ``~<n>`` duplicate-name
suffix :meth:`~repro.sim.kernel.Simulator.spawn` appends, so the
spawn-collision fix does not perturb the fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import re

from repro.facade import run_spmd
from repro.sim import Channel, Delay, Future, Simulator

_DUP_SUFFIX = re.compile(r"~\d+")


def normalize_trace(lines: list[str]) -> list[str]:
    """Strip duplicate-name suffixes so golden traces survive renames."""
    return [_DUP_SUFFIX.sub("", line) for line in lines]


def trace_digest(lines: list[str]) -> str:
    """Order-sensitive sha256 over the normalized trace."""
    h = hashlib.sha256()
    for line in normalize_trace(lines):
        h.update(line.encode())
        h.update(b"\n")
    return h.hexdigest()


# ---------------------------------------------------------------- cases
def _spmd_fingerprint(app: str, backend: str, n_procs: int, seed: int | None) -> dict:
    # Imported lazily: the harness pulls in every app module.
    from repro.harness import experiments as E

    program_fn, sc_plan, _ = E._PROGRAMS[app]
    wl = E.FIG7_WORKLOADS[app]()
    lines: list[str] = []
    res = run_spmd(
        program_fn(wl, sc_plan),
        backend=backend,
        n_procs=n_procs,
        jitter_seed=seed,
        trace=lambda t, msg: lines.append(f"{t} {msg}"),
    )
    return {
        "time": res.time,
        "n_trace": len(lines),
        "trace_sha256": trace_digest(lines),
        "stats": {k: int(v) for k, v in sorted(res.stats.snapshot().items())},
    }


def _kernel_micro(seed: int | None) -> dict:
    """Small pure-kernel scenario whose *full* trace is stored.

    Exercises every scheduling shape the fast path touches: Delay(0)
    bursts, already-resolved futures, blocking futures, channels,
    task joins, ``at``, and a ``run(until=...)`` pause/resume.
    """
    lines: list[str] = []
    sim = Simulator(trace=lambda t, msg: lines.append(f"{t} {msg}"), jitter_seed=seed)
    chan = Channel("c")
    ready = Future(name="ready")
    ready.resolve("early")
    log: list = []

    def producer():
        for i in range(4):
            yield Delay(0)
            chan.put(i)
            yield Delay(3)
        return "produced"

    def consumer():
        total = 0
        for _ in range(4):
            item = yield from chan.get()
            total += item
            yield Delay(0)
        return total

    def joiner(t):
        v = yield ready  # resolved future: resumes this cycle
        log.append(v)
        got = yield t.done
        yield Delay(0)
        yield Delay(2)
        return got

    def ticker():
        for _ in range(5):
            yield Delay(4)
            log.append(sim.now)

    prod = sim.spawn(producer(), name="prod")
    cons = sim.spawn(consumer(), name="cons")
    sim.spawn(joiner(cons), name="join")
    sim.spawn(ticker(), name="tick")
    sim.at(7, lambda: log.append("at7"))
    sim.run(until=5)
    paused_at = sim.now
    sim.run()
    return {
        "time": sim.now,
        "paused_at": paused_at,
        "results": [prod.done.result(), cons.done.result()],
        "log": [str(x) for x in log],
        "trace": normalize_trace(lines),
    }


def _fuzz_corpus(n_procs: int = 4, seeds=range(1, 9)) -> dict:
    """Final simulated times for a seed sweep — pins the jitter schedules."""
    from repro.apps import em3d
    from repro.harness import experiments as E

    times = {}
    for seed in seeds:
        wl = E.FIG7_WORKLOADS["EM3D"]()
        res = run_spmd(
            em3d.em3d_program(wl, em3d.SC_PLAN),
            backend="ace",
            n_procs=n_procs,
            jitter_seed=seed,
        )
        times[str(seed)] = res.time
    return {"times": times}


def _table4_tsp() -> dict:
    """Compiler-driven run (interp layer) cycle counts stay pinned too."""
    from repro.harness import experiments as E

    rows = E.table4_rows(apps=["TSP"], n_procs=4)
    return {"rows": [[r.app, r.variant, r.cycles] for r in rows]}


CASES = {
    "kernel_micro": lambda: _kernel_micro(None),
    "kernel_micro_seed7": lambda: _kernel_micro(7),
    "em3d_ace": lambda: _spmd_fingerprint("EM3D", "ace", 4, None),
    "em3d_ace_seed7": lambda: _spmd_fingerprint("EM3D", "ace", 4, 7),
    "tsp_crl": lambda: _spmd_fingerprint("TSP", "crl", 4, None),
    "water_ace": lambda: _spmd_fingerprint("Water", "ace", 4, None),
    "fuzz_corpus": _fuzz_corpus,
    "table4_tsp": _table4_tsp,
}


def capture_all() -> dict:
    return {name: make() for name, make in CASES.items()}


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    import sys

    path = sys.argv[1] if len(sys.argv) > 1 else "tests/verify/golden_traces.json"
    data = capture_all()
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}: {', '.join(sorted(data))}")
