"""Protocol verification by schedule fuzzing.

§6 of the paper asks for "a theoretical framework of correctness" for
mixed protocols and notes that tools like Teapot ease protocol
development.  This package is the pragmatic complement we can give a
simulated system: every :class:`~repro.sim.kernel.Simulator` schedule
is deterministic *per seed*, so sweeping seeds explores many legal
interleavings of the same program, and an invariant checked after each
run turns the sweep into a lightweight model-checking pass for
protocol implementations.
"""

from repro.verify.fuzz import FuzzReport, Violation, fuzz_schedules

__all__ = ["FuzzReport", "Violation", "fuzz_schedules"]
