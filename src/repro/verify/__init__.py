"""Protocol verification: schedule fuzzing and small-scope model checking.

§6 of the paper asks for "a theoretical framework of correctness" for
mixed protocols and notes that tools like Teapot ease protocol
development.  This package gives a simulated system both pragmatic
answers:

* :mod:`repro.verify.fuzz` — every
  :class:`~repro.sim.kernel.Simulator` schedule is deterministic *per
  seed*, so sweeping seeds explores many legal interleavings of the
  same program, an invariant checked after each run turning the sweep
  into a lightweight checking pass for protocol *implementations*;
* :mod:`repro.verify.modelcheck` — an exhaustive small-scope
  enumeration of every message interleaving of a protocol *table*
  (Teapot's role), producing minimal counterexample traces and
  fingerprint-pinned certificates under ``repro/verify/certs/``.
"""

from repro.verify.fuzz import FuzzReport, Violation, fuzz_schedules
from repro.verify.modelcheck import (
    CheckResult,
    Scope,
    check_table,
    model_for,
    seeded_mutations,
)

__all__ = [
    "CheckResult",
    "FuzzReport",
    "Scope",
    "Violation",
    "check_table",
    "fuzz_schedules",
    "model_for",
    "seeded_mutations",
]
