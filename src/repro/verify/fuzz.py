"""Seed-sweeping schedule fuzzer for protocol implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.facade import RunResult, run_spmd


@dataclass
class Violation:
    """One failed run: the seed to reproduce it and what went wrong."""

    seed: int
    message: str
    exception: BaseException | None = None


@dataclass
class FuzzReport:
    """Outcome of a fuzzing sweep."""

    seeds_run: int = 0
    violations: list = field(default_factory=list)
    times: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def failing_seeds(self) -> list:
        """Every distinct seed that produced a violation, sorted.

        A seed can violate more than once (run crash plus invariant
        message, or repeated sweeps feeding one report); deduping and
        sorting keeps the summary — and the chaos-CI artifacts built
        from it — stable and diffable across runs.
        """
        return sorted(set(v.seed for v in self.violations))

    def summary(self) -> str:
        if self.ok:
            spread = ""
            if self.times:
                spread = f"; simulated times {min(self.times)}..{max(self.times)}"
            return f"{self.seeds_run} schedules, no violations{spread}"
        # Every failing seed goes in the summary (CI logs usually show
        # only this line): each one replays its schedule exactly, so a
        # chaos/fuzz failure is reproducible from the log alone.
        seeds = self.failing_seeds
        shown = ", ".join(str(s) for s in seeds[:20])
        if len(seeds) > 20:
            shown += f", ... ({len(seeds) - 20} more)"
        first = self.violations[0]
        return (
            f"{len(self.violations)}/{self.seeds_run} schedules violated the "
            f"invariant; failing seeds [{shown}]; first at seed {first.seed}: "
            f"{first.message}; reproduce with jitter_seed={first.seed}"
        )


def fuzz_schedules(
    program_factory: Callable[[], Callable],
    invariant: Callable[[RunResult], str | None],
    n_procs: int = 4,
    seeds=range(1, 21),
    backend: str = "ace",
    **run_kwargs,
) -> FuzzReport:
    """Run ``program_factory()`` under many event schedules.

    Parameters
    ----------
    program_factory:
        Zero-argument callable returning a *fresh* SPMD program (fresh
        closure state per run).
    invariant:
        Called with each run's :class:`~repro.facade.context.RunResult`;
        return ``None`` when satisfied or a message describing the
        violation.  Exceptions raised by the run itself (protocol
        crashes, deadlocks) are recorded as violations too.
    seeds:
        Jitter seeds to sweep; each is an independent deterministic
        schedule, so any violation is replayable from its seed.
    """
    report = FuzzReport()
    for seed in seeds:
        report.seeds_run += 1
        try:
            result = run_spmd(
                program_factory(),
                backend=backend,
                n_procs=n_procs,
                jitter_seed=seed,
                **run_kwargs,
            )
        except BaseException as exc:  # noqa: BLE001 - report, don't mask
            report.violations.append(Violation(seed, f"run crashed: {exc!r}", exc))
            continue
        report.times.append(result.time)
        message = invariant(result)
        if message is not None:
            report.violations.append(Violation(seed, message))
    return report
