"""Small-scope model checker for protocol tables.

Exhaustively enumerates every interleaving of application events and
message deliveries that a :class:`~repro.spec.table.ProtocolTable`
admits on a small scope (2–3 nodes, 1–2 regions, a couple of
operations per node), and checks the coherence invariants the paper's
protocol families promise:

``single_writer``
    No region ever has two concurrently open writes, or a reader
    concurrent with a foreign writer (SWMR, invalidation family).
``no_stale_read``
    Every open read observes the freshest value its family's
    visibility contract requires: the latest committed version for
    ``sync_model="access"``, everything acknowledged for
    ``"immediate"``, and everything from before the last barrier for
    ``"barrier"``.
``dir_cache_agreement``
    Whenever a region is quiescent (no messages in flight, no busy
    directory window), the home's owner/sharer records agree with the
    node-side copy states.
``quiescence``
    Every terminal state is clean: no undelivered messages, no stuck
    queues, no node blocked forever (deadlock freedom within scope).

The checker is an *abstract* interpreter: it executes table rows — the
same artifact the runtime interprets and the DSM layers derive their
constants from — against a small vocabulary of abstract actions and
guards (``hit``, ``fetch``, ``recall_*``, ``writeback``, ``ack``, …).
The rows decide everything the table can decide (which states hit,
what a recall does to each state, whether an ack carries data, what
the next state is), so a *semantic* mutation of the table — flip the
invalidate row to keep the copy readable, drop the writeback from the
ack — changes the explored state graph and surfaces as an invariant
violation with a minimal counterexample trace (BFS order guarantees
minimality in steps).

Data is abstracted to monotonically increasing version numbers: each
committed write mints a fresh version, and staleness is a comparison.
State spaces at the scopes used here are a few thousand states; the
hard cap exists only to fail loudly on runaway tables.

Three family models share the search core, selected by the table's
``sync_model``/``writer_model`` metadata:

* :class:`InvalidationModel` — MSI / MOESI-style ownership protocols
  (``writer_model="copy"``), including home-side admission, recall
  fan-out, grant-in-flight busy windows, deferred invalidations, and
  cache-to-cache forwarding for owned-state tables;
* :class:`BarrierModel` — self-invalidation protocols
  (``sync_model="barrier"``): synchronous write-back self-downgrade,
  barrier-triggered self-invalidation, epoch visibility;
* :class:`UpdateModel` — immediate-propagation update protocols
  (``sync_model="immediate"``): write fan-out with acks, visibility
  once acknowledged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.spec.table import KEEP, ProtocolTable, TableError, WILDCARD


class ModelCheckError(Exception):
    """The checker cannot interpret this table (unknown vocabulary)."""


#: message tuples are (type, src, dst, rid, payload, tag) — fixed arity
#: and primitive fields so the network multiset sorts canonically.
_NO_PAYLOAD = -1


@dataclass(frozen=True)
class Scope:
    """How big a world to enumerate."""

    nodes: int = 2
    regions: int = 1
    ops: int = 2      # operations per node (per epoch, for barrier models)
    epochs: int = 2   # barrier rounds (barrier models only)

    def home(self, rid: int) -> int:
        return rid % self.nodes


@dataclass(frozen=True)
class Violation:
    """One invariant failure with its minimal reproducing interleaving."""

    invariant: str
    detail: str
    trace: tuple[str, ...]

    def render(self) -> str:
        lines = [f"invariant {self.invariant!r} violated: {self.detail}", "counterexample:"]
        lines += [f"  {i + 1}. {step}" for i, step in enumerate(self.trace)]
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Outcome of one exhaustive run (the certificate payload)."""

    protocol: str
    family: str
    scope: Scope
    invariants: tuple[str, ...]
    states: int = 0
    transitions: int = 0
    violations: list[Violation] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def certificate(self) -> dict:
        """JSON-friendly record for ``repro/verify/certs/``."""
        return {
            "protocol": self.protocol,
            "family": self.family,
            "table_fingerprint": self.fingerprint,
            "scope": {
                "nodes": self.scope.nodes,
                "regions": self.scope.regions,
                "ops": self.scope.ops,
                "epochs": self.scope.epochs,
            },
            "invariants": list(self.invariants),
            "states": self.states,
            "transitions": self.transitions,
            "violations": [
                {"invariant": v.invariant, "detail": v.detail, "trace": list(v.trace)}
                for v in self.violations
            ],
            "ok": self.ok,
        }


# ----------------------------------------------------------------------
# search core
# ----------------------------------------------------------------------
def _bfs(model, result: CheckResult, max_states: int, stop_at_first: bool) -> CheckResult:
    init = model.initial()
    parent: dict = {init: (None, None)}
    frontier = deque([init])
    seen = 1
    edges = 0
    while frontier:
        state = frontier.popleft()
        bad = model.invariant_violation(state)
        if bad is not None:
            result.violations.append(Violation(bad[0], bad[1], _trace(parent, state)))
            if stop_at_first:
                break
            continue  # don't explore past a broken state
        moves = model.moves(state)
        if not moves:
            bad = model.terminal_violation(state)
            if bad is not None:
                result.violations.append(Violation(bad[0], bad[1], _trace(parent, state)))
                if stop_at_first:
                    break
            continue
        for label, nxt in moves:
            edges += 1
            if nxt not in parent:
                parent[nxt] = (state, label)
                frontier.append(nxt)
                seen += 1
                if seen > max_states:
                    raise ModelCheckError(
                        f"{result.protocol}: state space exceeded {max_states} states "
                        f"at scope {result.scope}"
                    )
    result.states = seen
    result.transitions = edges
    return result


def _trace(parent: dict, state) -> tuple[str, ...]:
    steps: list[str] = []
    while True:
        prev, label = parent[state]
        if prev is None:
            break
        steps.append(label)
        state = prev
    return tuple(reversed(steps))


# ----------------------------------------------------------------------
# shared table derivations
# ----------------------------------------------------------------------
def _hit_states(table: ProtocolTable, event: str) -> frozenset:
    return frozenset(
        t.state for t in table.rows("node", event) if "hit" in t.actions and t.guard is None
    )


def _guarded_hit_states(table: ProtocolTable) -> frozenset:
    return frozenset(
        t.state
        for ev in ("start_read", "start_write")
        for t in table.rows("node", ev)
        if "hit" in t.actions and t.guard is not None
    )


def _is_fetch(row) -> bool:
    """Tables may specialize the fetch action per hook (``fetch_read``)
    or per requester (``fetch_read_home``); any of them is a miss."""
    return any(a == "fetch" or a.startswith("fetch_") for a in row.actions)


def _fetch_row(table: ProtocolTable, event: str):
    rows = [t for t in table.rows("node", event) if _is_fetch(t)]
    for t in rows:
        if t.state == WILDCARD:
            return t  # the wildcard row names the fill state remote misses use
    return rows[0] if rows else None


def _resolve_next(state: str, nxt: str) -> str:
    return state if nxt == KEEP else nxt


# ----------------------------------------------------------------------
# invalidation family (MSI / MOESI ownership)
# ----------------------------------------------------------------------
class InvalidationModel:
    """Abstract machine for ``writer_model="copy"`` tables.

    State layout (all tuples, fully hashable)::

        (copies, open_, ops, dirs, homever, latest, net, nextver)

        copies[n][r] = (state, version, deferred)   deferred: ((event, aux), ...)
        open_[n]     = None | (kind, rid)           kind: r w wr ww  (w*=waiting)
        ops[n]       = operations remaining
        dirs[r]      = (owner, sharers, busy, pending, queue, home_readers, home_writing)
                       pending: None | (kind, src, need)
        latest[r]    = newest committed version, wherever it lives —
                       the freshness oracle a lost writeback cannot fool
        net          = sorted tuple of (type, src, dst, rid, payload, tag)
    """

    family = "invalidation"
    invariants = ("single_writer", "no_stale_read", "dir_cache_agreement", "quiescence")

    #: vocabulary this model interprets; anything else in a table is an error
    NODE_ACTIONS = {
        "hit",
        "fetch",
        "fetch_read",
        "fetch_write",
        "fetch_read_home",
        "fetch_write_home",
        "open_home_read",
        "open_home_write",
        "release",
        "writeback",
        "ack",
        "supply",
    }
    HOME_ACTIONS = {
        "enqueue",
        "recall_invalidate",
        "recall_downgrade",
        "forward_read",
        "grant_shared",
        "grant_excl",
        "collect_ack",
        "serve_pending",
        "drain_queue",
        "record_sharer",
        "accept_flush",
        "send_meta",
    }

    def __init__(self, table: ProtocolTable, scope: Scope):
        self.table = table
        self.scope = scope
        self.read_hit = _hit_states(table, "start_read")
        self.write_hit = _hit_states(table, "start_write")
        homes = _guarded_hit_states(table)
        self.home_state = next(iter(homes)) if len(homes) == 1 else None
        fr = _fetch_row(table, "start_read")
        fw = _fetch_row(table, "start_write")
        if fr is None or fw is None:
            raise ModelCheckError(f"{table.name}: no fetch row for a start hook")
        self.base = table.base_state
        # recall modes: node-side message events whose rows may write back
        self.modes = tuple(
            ev
            for ev in table.events("node")
            if ev not in ("start_read", "end_read", "start_write", "end_write", "barrier")
            and ev not in ("fwd_read",)
        )
        self.dirty = frozenset(
            t.state for ev in self.modes for t in table.rows("node", ev) if "writeback" in t.actions
        )
        # modes whose application leaves the target with a readable copy
        self.sharer_modes = frozenset(
            mode
            for mode in self.modes
            if any(s in self.read_hit for s in self.table.next_map("node", mode).values())
        )
        self._check_vocabulary()

    def _check_vocabulary(self) -> None:
        for t in self.table.rows("node"):
            if t.event in ("end_read", "end_write", "barrier"):
                continue
            for a in t.actions:
                if a not in self.NODE_ACTIONS:
                    raise ModelCheckError(
                        f"{self.table.name}: unknown node action {a!r} for the "
                        f"invalidation model (row {t.state!r}/{t.event!r})"
                    )
        for t in self.table.rows("home"):
            for a in t.actions:
                if a not in self.HOME_ACTIONS:
                    raise ModelCheckError(
                        f"{self.table.name}: unknown home action {a!r} for the "
                        f"invalidation model (row {t.state!r}/{t.event!r})"
                    )

    # -- state construction ---------------------------------------------
    def initial(self):
        sc = self.scope
        copies = tuple(
            tuple(
                (self.home_state, 0, ()) if n == sc.home(r) and self.home_state else (self.base, 0, ())
                for r in range(sc.regions)
            )
            for n in range(sc.nodes)
        )
        open_ = (None,) * sc.nodes
        ops = (sc.ops,) * sc.nodes
        dirs = ((None, (), False, None, (), 0, False),) * sc.regions
        homever = (0,) * sc.regions
        return (copies, open_, ops, dirs, homever, (0,) * sc.regions, (), 1)

    # -- move generation -------------------------------------------------
    def moves(self, s):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        out = []
        for n in range(self.scope.nodes):
            if open_[n] is None and ops[n] > 0:
                for r in range(self.scope.regions):
                    for kind in ("r", "w"):
                        out.append(self._start(s, n, r, kind))
            elif open_[n] is not None and open_[n][0] in ("r", "w"):
                out.append(self._end(s, n))
        for i, msg in enumerate(net):
            out.append(self._deliver(s, i))
        return [m for m in out if m is not None]

    # -- hooks -----------------------------------------------------------
    def _start(self, s, n, r, kind):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        event = "start_read" if kind == "r" else "start_write"
        st, ver, deferred = copies[n][r]
        row = self._match_node(st, event, n, r, dirs[r])
        if row is None:
            return None  # no applicable row: the access cannot start here
        label = f"node{n}: {event} r{r} [{st}]"
        ops2 = _set(ops, n, ops[n] - 1)
        if "hit" in row.actions:
            dirs2 = dirs
            if st == self.home_state:
                d = list(dirs[r])
                if kind == "r":
                    d[5] += 1
                else:
                    d[6] = True
                dirs2 = _set(dirs, r, tuple(d))
            copies2 = _set2(copies, n, r, (_resolve_next(st, row.next), ver, deferred))
            return (label + " hit", (copies2, _set(open_, n, (kind, r)), ops2, dirs2, homever, latest, net, nextver))
        if _is_fetch(row):
            msg = (("read_req" if kind == "r" else "write_req"), n, self.scope.home(r), r, _NO_PAYLOAD, "")
            return (
                label + " miss",
                (copies, _set(open_, n, ("w" + kind, r)), ops2, dirs, homever, latest, _add(net, msg), nextver),
            )
        return None

    def _end(self, s, n):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        kind, r = open_[n]
        st, ver, deferred = copies[n][r]
        label = f"node{n}: end_{'read' if kind == 'r' else 'write'} r{r}"
        if kind == "w":
            ver = nextver
            nextver += 1
            latest = _set(latest, r, ver)
            if st == self.home_state:
                homever = _set(homever, r, ver)
            label += f" (commit v{ver})"
        copies = _set2(copies, n, r, (st, ver, deferred))
        open_ = _set(open_, n, None)
        if st == self.home_state:
            d = list(dirs[r])
            if kind == "r":
                d[5] -= 1
            else:
                d[6] = False
            dirs = _set(dirs, r, tuple(d))
            state = (copies, open_, ops, dirs, homever, latest, net, nextver)
            state = self._drain(state, r)
        else:
            state = (copies, open_, ops, dirs, homever, latest, net, nextver)
            state = self._fire_deferred(state, n, r)
        return (label, state)

    def _fire_deferred(self, s, n, r):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        st, ver, deferred = copies[n][r]
        while deferred:
            (event, aux), deferred = deferred[0], deferred[1:]
            copies = _set2(copies, n, r, (st, ver, deferred))
            s = self._apply_node_msg(
                (copies, open_, ops, dirs, homever, latest, net, nextver), n, r, event, aux
            )
            copies, open_, ops, dirs, homever, latest, net, nextver = s
            st, ver, deferred = copies[n][r]
        return (copies, open_, ops, dirs, homever, latest, net, nextver)

    # -- node-side guards -------------------------------------------------
    def _match_node(self, st, event, n, r, dir_):
        for row in self.table.lookup("node", st, event):
            if row.guard is None or self._node_guard(row.guard, n, r, dir_):
                return row
        return None

    def _node_guard(self, guard, n, r, dir_):
        owner, sharers, busy, pending, queue, hr, hw = dir_
        home = self.scope.home(r)
        if guard == "home_idle":
            return n == home and owner is None and not busy
        if guard == "home_sole":
            return n == home and owner is None and not sharers and not busy
        raise ModelCheckError(f"{self.table.name}: unknown node guard {guard!r}")

    # -- message delivery --------------------------------------------------
    def _deliver(self, s, i):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        msg = net[i]
        net2 = net[:i] + net[i + 1 :]
        s2 = (copies, open_, ops, dirs, homever, latest, net2, nextver)
        mtype, src, dst, r, payload, tag = msg
        label = f"deliver {mtype} {src}->{dst} r{r}"
        if mtype in ("read_req", "write_req"):
            return (label, self._home_request(s2, "r" if mtype == "read_req" else "w", src, r))
        if mtype in self.modes or mtype == "fwd_read":
            cp = s2[0][dst][r]
            if s2[1][dst] is not None and s2[1][dst][0] in ("r", "w") and s2[1][dst][1] == r:
                # copy in use: defer until the closing end hook
                deferred = cp[2] + ((mtype, payload),)
                return (
                    label + " (deferred)",
                    (_set2(s2[0], dst, r, (cp[0], cp[1], deferred)),) + s2[1:],
                )
            return (label, self._apply_node_msg(s2, dst, r, mtype, payload))
        if mtype == "inval_ack":
            return (label, self._home_inval_ack(s2, src, r, payload, tag))
        if mtype in ("read_data", "write_data", "upgrade_ack", "supply"):
            return (label, self._node_fill(s2, dst, r, mtype, payload))
        if mtype == "grant_ack":
            return (label, self._home_unbusy(s2, r))
        if mtype == "home_grant":
            # the home task's own admitted access opens
            return (label, (s2[0], _set(s2[1], dst, (tag, r))) + s2[2:])
        raise ModelCheckError(f"{self.table.name}: unroutable message {mtype!r}")

    # node receives a recall / forward message
    def _apply_node_msg(self, s, n, r, event, aux):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        st, ver, deferred = copies[n][r]
        rows = self.table.lookup("node", st, event)
        if not rows:
            return s  # mutated table: message silently dropped (ack never sent)
        row = rows[0]
        home = self.scope.home(r)
        wb = "writeback" in row.actions
        if "ack" in row.actions:
            net = _add(net, ("inval_ack", n, home, r, ver if wb else _NO_PAYLOAD, event))
        if "supply" in row.actions:
            # cache-to-cache transfer: the owner answers the forwarded
            # reader directly; the home's busy window closes when the
            # reader's grant_ack arrives (like any other grant).
            net = _add(net, ("supply", n, aux, r, ver, ""))
        copies = _set2(copies, n, r, (_resolve_next(st, row.next), ver, deferred))
        return (copies, open_, ops, dirs, homever, latest, net, nextver)

    # home receives a read/write request (or retries one off the queue)
    def _home_request(self, s, kind, src, r, queued=False):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        owner, sharers, busy, pending, queue, hr, hw = dirs[r]
        event = "read_req" if kind == "r" else "write_req"
        home = self.scope.home(r)
        hstate = "busy" if busy else "idle"
        row = None
        for t in self.table.lookup("home", hstate, event):
            if t.guard is None or self._home_guard(t.guard, src, r, dirs[r], s):
                row = t
                break
        if row is None or "enqueue" in row.actions:
            if queued:
                return None  # caller keeps it at the queue head
            queue = queue + ((kind, src),)
            return (copies, open_, ops, _set(dirs, r, (owner, sharers, busy, pending, queue, hr, hw)), homever, latest, net, nextver)
        return self._run_home_row(s, row, kind, src, r)

    def _run_home_row(self, s, row, kind, src, r):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        owner, sharers, busy, pending, queue, hr, hw = dirs[r]
        home = self.scope.home(r)
        busy2 = _resolve_next("busy" if busy else "idle", row.next) == "busy"
        for a in row.actions:
            if a.startswith("recall_"):
                mode = a[len("recall_"):]
                if mode not in self.modes:
                    raise ModelCheckError(f"{self.table.name}: recall mode {mode!r} has no node rows")
                targets = []
                if owner is not None and owner != src:
                    targets.append(owner)
                if kind == "w":
                    targets += [x for x in sharers if x != src and x not in targets]
                pending = (kind, src, len(targets))
                for t in targets:
                    net = _add(net, (mode, home, t, r, _NO_PAYLOAD, ""))
                busy = busy2
            elif a == "forward_read":
                pending = ("f", src, 1)
                net = _add(net, ("fwd_read", home, owner, r, src, ""))
                busy = busy2
            elif a == "grant_shared":
                if src == home:
                    hr += 1
                    net = _add(net, ("home_grant", home, home, r, _NO_PAYLOAD, "r"))
                else:
                    sharers = tuple(sorted(set(sharers) | {src}))
                    busy = busy2
                    net = _add(net, ("read_data", home, src, r, homever[r], ""))
            elif a == "grant_excl":
                if src == home:
                    hw = True
                    net = _add(net, ("home_grant", home, home, r, _NO_PAYLOAD, "w"))
                else:
                    # an upgrading sharer — or an owner self-upgrading
                    # from an owned state — keeps its (current) data;
                    # shipping home data would hand it a stale base.
                    had = src == owner or src in sharers
                    sharers = tuple(x for x in sharers if x != src)
                    owner = src
                    busy = busy2
                    if had:
                        net = _add(net, ("upgrade_ack", home, src, r, _NO_PAYLOAD, ""))
                    else:
                        net = _add(net, ("write_data", home, src, r, homever[r], ""))
        dirs = _set(dirs, r, (owner, sharers, busy, pending, queue, hr, hw))
        out = (copies, open_, ops, dirs, homever, latest, net, nextver)
        if not busy:
            out = self._drain(out, r)
        return out

    def _home_guard(self, guard, src, r, dir_, s):
        owner, sharers, busy, pending, queue, hr, hw = dir_
        home = self.scope.home(r)
        if guard == "home_writing":
            return hw and src != home
        if guard == "home_open":
            return (hw or hr > 0) and src != home
        if guard == "owned_elsewhere":
            return owner is not None and owner != src
        if guard == "copies_elsewhere":
            return (owner is not None and owner != src) or any(x != src for x in sharers)
        if guard == "acks_remaining":
            return pending is not None and pending[2] > 1
        raise ModelCheckError(f"{self.table.name}: unknown home guard {guard!r}")

    def _home_inval_ack(self, s, target, r, payload, mode):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        owner, sharers, busy, pending, queue, hr, hw = dirs[r]
        if payload != _NO_PAYLOAD:
            homever = _set(homever, r, payload)
        if owner == target:
            owner = None
        sharers = tuple(x for x in sharers if x != target)
        if mode in self.sharer_modes:
            sharers = tuple(sorted(set(sharers) | {target}))
        if pending is None:
            return (copies, open_, ops, _set(dirs, r, (owner, sharers, busy, pending, queue, hr, hw)), homever, latest, net, nextver)
        kind, src, need = pending
        need -= 1
        if need > 0:
            pending = (kind, src, need)
            dirs = _set(dirs, r, (owner, sharers, busy, pending, queue, hr, hw))
            return (copies, open_, ops, dirs, homever, latest, net, nextver)
        busy = False
        pending = None
        dirs = _set(dirs, r, (owner, sharers, busy, pending, queue, hr, hw))
        s = (copies, open_, ops, dirs, homever, latest, net, nextver)
        # the stalled request is served with the grant row of its event
        row = self._grant_row("read_req" if kind == "r" else "write_req")
        return self._run_home_row(s, row, kind, src, r)

    def _grant_row(self, event):
        for t in self.table.rows("home", event):
            if any(a.startswith("grant_") for a in t.actions):
                return t
        raise ModelCheckError(f"{self.table.name}: no grant row for {event!r}")

    def _home_unbusy(self, s, r):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        owner, sharers, busy, pending, queue, hr, hw = dirs[r]
        if pending is not None and pending[0] == "f":
            # a forwarded read completed: the requester installed the
            # owner's supplied copy and is now a sharer (record_sharer)
            req = pending[1]
            if req != self.scope.home(r):
                sharers = tuple(sorted(set(sharers) | {req}))
        dirs = _set(dirs, r, (owner, sharers, False, None, queue, hr, hw))
        return self._drain((copies, open_, ops, dirs, homever, latest, net, nextver), r)

    def _drain(self, s, r):
        while True:
            copies, open_, ops, dirs, homever, latest, net, nextver = s
            owner, sharers, busy, pending, queue, hr, hw = dirs[r]
            if busy or not queue:
                return s
            (kind, src), rest = queue[0], queue[1:]
            dirs = _set(dirs, r, (owner, sharers, busy, pending, rest, hr, hw))
            served = self._home_request(
                (copies, open_, ops, dirs, homever, latest, net, nextver), kind, src, r, queued=True
            )
            if served is None:
                return s  # head not admissible yet; leave the queue intact
            s = served

    # node receives grant / supplied data
    def _node_fill(self, s, n, r, mtype, payload):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        st, ver, deferred = copies[n][r]
        home = self.scope.home(r)
        if mtype == "supply" and n == home:
            # supplying the home *is* a write-back: canonical storage
            # takes the owner's version and the home's own read opens
            # against it; the home's alias copy keeps its state.
            d = list(dirs[r])
            d[5] += 1
            dirs2 = _set(dirs, r, tuple(d))
            homever2 = _set(homever, r, payload)
            net2 = _add(net, ("grant_ack", n, home, r, _NO_PAYLOAD, ""))
            return (copies, _set(s[1], n, ("r", r)), ops, dirs2, homever2, latest, net2, nextver)
        if mtype in ("read_data", "supply"):
            st2 = _resolve_next(st, _fetch_row(self.table, "start_read").next)
            kind = "r"
        elif mtype == "write_data":
            st2 = _resolve_next(st, _fetch_row(self.table, "start_write").next)
            kind = "w"
        else:  # upgrade_ack keeps the requester's current data
            st2 = _resolve_next(st, _fetch_row(self.table, "start_write").next)
            kind = "w"
            payload = ver
        ver2 = payload if payload != _NO_PAYLOAD else ver
        copies = _set2(copies, n, r, (st2, ver2, deferred))
        open_ = _set(s[1], n, (kind, r))
        net = _add(net, ("grant_ack", n, self.scope.home(r), r, _NO_PAYLOAD, ""))
        return (copies, open_, ops, dirs, homever, latest, net, nextver)

    # -- invariants --------------------------------------------------------
    def invariant_violation(self, s):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        for r in range(self.scope.regions):
            writers = [n for n in range(self.scope.nodes) if open_[n] == ("w", r)]
            readers = [n for n in range(self.scope.nodes) if open_[n] == ("r", r)]
            if len(writers) > 1:
                return ("single_writer", f"region {r} has concurrent writers {writers}")
            if writers and readers:
                return (
                    "single_writer",
                    f"region {r} has reader(s) {readers} concurrent with writer {writers[0]}",
                )
            # Freshness: an open read must see the newest committed
            # version; an open write is a read-modify-write, so its
            # base data must be just as fresh (this is what catches a
            # grant served from a home that never got the writeback).
            for n in readers + writers:
                st, ver, _d = copies[n][r]
                obs = homever[r] if st == self.home_state else ver
                if obs < latest[r]:
                    verb = "reads" if n in readers else "writes over"
                    return (
                        "no_stale_read",
                        f"node {n} {verb} r{r} at v{obs} while v{latest[r]} is committed",
                    )
            bad = self._agreement(s, r)
            if bad is not None:
                return bad
        return None

    def _agreement(self, s, r):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        owner, sharers, busy, pending, queue, hr, hw = dirs[r]
        if busy or pending is not None or any(m[3] == r for m in net):
            return None  # transient; judged only at rest
        home = self.scope.home(r)
        for n in range(self.scope.nodes):
            st, ver, deferred = copies[n][r]
            if deferred or open_[n] in ((("r", r)), (("w", r))) or (
                open_[n] is not None and open_[n][1] == r
            ):
                return None
        if owner is not None:
            st = copies[owner][r][0]
            if st not in self.write_hit and st not in self.dirty:
                return (
                    "dir_cache_agreement",
                    f"directory owner {owner} of r{r} holds state {st!r}",
                )
        else:
            for n in range(self.scope.nodes):
                st = copies[n][r][0]
                if n != home and st in self.dirty:
                    return (
                        "dir_cache_agreement",
                        f"node {n} holds dirty r{r} ({st!r}) with no directory owner",
                    )
        for n in range(self.scope.nodes):
            st = copies[n][r][0]
            if n != home and st in self.read_hit and n not in sharers and n != owner:
                return (
                    "dir_cache_agreement",
                    f"node {n} holds readable r{r} ({st!r}) unknown to the directory",
                )
        return None

    def terminal_violation(self, s):
        copies, open_, ops, dirs, homever, latest, net, nextver = s
        if net:
            return ("quiescence", f"terminal state with {len(net)} undelivered message(s)")
        for n in range(self.scope.nodes):
            if open_[n] is not None:
                return ("quiescence", f"node {n} stuck in {open_[n]}")
            if ops[n] > 0:
                return ("quiescence", f"node {n} deadlocked with {ops[n]} op(s) left")
        for r in range(self.scope.regions):
            owner, sharers, busy, pending, queue, hr, hw = dirs[r]
            if busy or pending is not None or queue:
                return ("quiescence", f"region {r} directory stuck (busy={busy}, queue={len(queue)})")
        return None


# ----------------------------------------------------------------------
# barrier family (self-invalidation)
# ----------------------------------------------------------------------
class BarrierModel:
    """Abstract machine for ``sync_model="barrier"`` tables.

    Visibility contract: a read observes at least everything committed
    before the most recent global barrier.  The application contract
    (one writer per region per epoch) is enforced by the move
    generator, matching the protocol's stated usage discipline.

    State layout::

        (copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver)

        copies[n][r] = (state, version)
        open_[n]     = None | (kind, rid) | ("bar",)   kind: r w wr ww wb
        ew[r]        = this epoch's writer (or -1)
    """

    family = "barrier"
    invariants = ("single_writer", "no_stale_read", "quiescence")

    def __init__(self, table: ProtocolTable, scope: Scope):
        self.table = table
        self.scope = scope
        self.read_hit = _hit_states(table, "start_read")
        self.write_hit = _hit_states(table, "start_write")
        fr = _fetch_row(table, "start_read")
        fw = _fetch_row(table, "start_write")
        if fr is None or fw is None:
            raise ModelCheckError(f"{table.name}: barrier model needs fetch rows for both hooks")
        self.fill_read = fr.next
        self.fill_write = fw.next
        self.base = table.base_state
        homes = _guarded_hit_states(table) or frozenset({"home"})
        self.home_state = next(iter(homes))
        ew_rows = table.rows("node", "end_write")
        self.sync_writeback = any("writeback_home" in t.actions for t in ew_rows)
        self.end_write_next = ew_rows[0].next if ew_rows else KEEP
        bar_rows = table.rows("node", "barrier")
        self.self_invalidate = any("self_invalidate" in t.actions for t in bar_rows)

    def initial(self):
        sc = self.scope
        copies = tuple(
            tuple(
                (self.home_state, 0) if n == sc.home(r) else (self.base, 0)
                for r in range(sc.regions)
            )
            for n in range(sc.nodes)
        )
        return (
            copies,
            (None,) * sc.nodes,
            (sc.ops,) * sc.nodes,
            0,
            (-1,) * sc.regions,
            (0,) * sc.regions,
            (0,) * sc.regions,
            (0,) * sc.regions,
            (),
            1,
        )

    def moves(self, s):
        copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver = s
        out = []
        for n in range(self.scope.nodes):
            o = open_[n]
            if o is None:
                if ops[n] > 0:
                    for r in range(self.scope.regions):
                        out.append(self._start(s, n, r, "r"))
                        if ew[r] in (-1, n):
                            out.append(self._start(s, n, r, "w"))
                elif epoch < self.scope.epochs:
                    out.append(self._enter_barrier(s, n))
            elif o[0] in ("r", "w"):
                out.append(self._end(s, n))
        for i in range(len(net)):
            out.append(self._deliver(s, i))
        return [m for m in out if m is not None]

    def _start(self, s, n, r, kind):
        copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver = s
        st, ver = copies[n][r]
        event = "start_read" if kind == "r" else "start_write"
        label = f"node{n}: {event} r{r} [{st}] e{epoch}"
        hit = st in (self.read_hit if kind == "r" else self.write_hit) or (
            st == self.home_state and n == self.scope.home(r)
        )
        ops2 = _set(ops, n, ops[n] - 1)
        ew2 = _set(ew, r, n) if kind == "w" else ew
        if hit:
            return (label + " hit", (copies, _set(open_, n, (kind, r)), ops2, epoch, ew2, homever, latest, barver, net, nextver))
        msg = ("fetch", n, self.scope.home(r), r, _NO_PAYLOAD, kind)
        return (
            label + " miss",
            (copies, _set(open_, n, ("w" + kind, r)), ops2, epoch, ew2, homever, latest, barver, _add(net, msg), nextver),
        )

    def _end(self, s, n):
        copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver = s
        kind, r = open_[n]
        st, ver = copies[n][r]
        if kind == "r":
            return (f"node{n}: end_read r{r}", (copies, _set(open_, n, None), ops, epoch, ew, homever, latest, barver, net, nextver))
        ver = nextver
        nextver += 1
        latest = _set(latest, r, ver)
        copies = _set2(copies, n, r, (_resolve_next(st, self.end_write_next), ver))
        label = f"node{n}: end_write r{r} (commit v{ver})"
        if n == self.scope.home(r):
            homever = _set(homever, r, ver)
            return (label, (copies, _set(open_, n, None), ops, epoch, ew, homever, latest, barver, net, nextver))
        if self.sync_writeback:
            net = _add(net, ("wb", n, self.scope.home(r), r, ver, ""))
            open_ = _set(open_, n, ("wb", r))
        else:
            open_ = _set(open_, n, None)  # mutated table: write never reaches home
        return (label, (copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver))

    def _enter_barrier(self, s, n):
        copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver = s
        if self.self_invalidate:
            row = tuple(
                (self.base, 0) if self.scope.home(r) != n else copies[n][r]
                for r in range(self.scope.regions)
            )
            copies = _set(copies, n, row)
        open_ = _set(open_, n, ("bar",))
        label = f"node{n}: barrier e{epoch}"
        if all(o == ("bar",) for o in open_):
            epoch += 1
            barver = latest
            ew = (-1,) * self.scope.regions
            open_ = (None,) * self.scope.nodes
            ops = (self.scope.ops if epoch < self.scope.epochs else 0,) * self.scope.nodes
            label += " (released)"
        return (label, (copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver))

    def _deliver(self, s, i):
        copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver = s
        msg = net[i]
        net = net[:i] + net[i + 1 :]
        mtype, src, dst, r, payload, tag = msg
        label = f"deliver {mtype} {src}->{dst} r{r}"
        if mtype == "fetch":
            net = _add(net, ("data", dst, src, r, homever[r], tag))
            return (label, (copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver))
        if mtype == "data":
            kind = tag
            st2 = self.fill_read if kind == "r" else self.fill_write
            copies = _set2(copies, dst, r, (st2, payload))
            open_ = _set(open_, dst, (kind, r))
            return (label, (copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver))
        if mtype == "wb":
            homever = _set(homever, r, payload)
            net = _add(net, ("wb_ack", dst, src, r, _NO_PAYLOAD, ""))
            return (label, (copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver))
        if mtype == "wb_ack":
            open_ = _set(open_, dst, None)
            return (label, (copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver))
        raise ModelCheckError(f"{self.table.name}: unroutable message {mtype!r}")

    def invariant_violation(self, s):
        copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver = s
        for r in range(self.scope.regions):
            writers = [n for n in range(self.scope.nodes) if open_[n] == ("w", r)]
            if len(writers) > 1:
                return ("single_writer", f"region {r} has concurrent epoch writers {writers}")
            for n in range(self.scope.nodes):
                if open_[n] != ("r", r):
                    continue
                st, ver = copies[n][r]
                obs = homever[r] if st == self.home_state and n == self.scope.home(r) else ver
                if obs < barver[r]:
                    return (
                        "no_stale_read",
                        f"node {n} reads r{r} at v{obs} after a barrier that published v{barver[r]}",
                    )
        return None

    def terminal_violation(self, s):
        copies, open_, ops, epoch, ew, homever, latest, barver, net, nextver = s
        if net:
            return ("quiescence", f"terminal state with {len(net)} undelivered message(s)")
        for n in range(self.scope.nodes):
            if open_[n] is not None:
                return ("quiescence", f"node {n} stuck in {open_[n]}")
        return None


# ----------------------------------------------------------------------
# update family (immediate propagation)
# ----------------------------------------------------------------------
class UpdateModel:
    """Abstract machine for ``sync_model="immediate"`` tables.

    Every node holds a copy of every region (the worst case for an
    update protocol); writes are serialized per region by the
    application, matching the protocol's usage discipline.  Visibility
    contract: once a write's propagation fan-out is fully acknowledged,
    every copy reflects it.

    State layout::

        (copies, open_, ops, homever, acked, pend, net, nextver)

        copies[n][r] = version
        pend[r]      = None | (writer, version, need)
    """

    family = "update"
    invariants = ("single_writer", "no_stale_read", "quiescence")

    def __init__(self, table: ProtocolTable, scope: Scope):
        self.table = table
        self.scope = scope
        ew = table.rows("node", "end_write")
        self.propagates = any(
            "propagate_write" in t.actions or t.msg == "update" for t in ew
        )

    def initial(self):
        sc = self.scope
        return (
            ((0,) * sc.regions,) * sc.nodes,
            (None,) * sc.nodes,
            (sc.ops,) * sc.nodes,
            (0,) * sc.regions,
            (0,) * sc.regions,
            (None,) * sc.regions,
            (),
            1,
        )

    def moves(self, s):
        copies, open_, ops, homever, acked, pend, net, nextver = s
        out = []
        for n in range(self.scope.nodes):
            o = open_[n]
            if o is None and ops[n] > 0:
                for r in range(self.scope.regions):
                    out.append(self._start(s, n, r, "r"))
                    if self._write_free(s, n, r):
                        out.append(self._start(s, n, r, "w"))
            elif o is not None and o[0] in ("r", "w"):
                out.append(self._end(s, n))
        for i in range(len(net)):
            out.append(self._deliver(s, i))
        return [m for m in out if m is not None]

    def _write_free(self, s, n, r):
        copies, open_, ops, homever, acked, pend, net, nextver = s
        if pend[r] is not None:
            return False
        for m in range(self.scope.nodes):
            if m != n and open_[m] is not None and open_[m][1] == r and open_[m][0] in ("w", "wu"):
                return False
        return not any(msg[3] == r and msg[0] in ("upd", "apply", "apply_ack", "upd_done") for msg in net)

    def _start(self, s, n, r, kind):
        copies, open_, ops, homever, acked, pend, net, nextver = s
        label = f"node{n}: start_{'read' if kind == 'r' else 'write'} r{r}"
        return (label, (copies, _set(open_, n, (kind, r)), _set(ops, n, ops[n] - 1), homever, acked, pend, net, nextver))

    def _end(self, s, n):
        copies, open_, ops, homever, acked, pend, net, nextver = s
        kind, r = open_[n]
        if kind == "r":
            return (f"node{n}: end_read r{r}", (copies, _set(open_, n, None), ops, homever, acked, pend, net, nextver))
        ver = nextver
        nextver += 1
        copies = _set2(copies, n, r, ver)
        label = f"node{n}: end_write r{r} (commit v{ver})"
        if self.propagates:
            net = _add(net, ("upd", n, self.scope.home(r), r, ver, ""))
            open_ = _set(open_, n, ("wu", r))
        else:
            open_ = _set(open_, n, None)
            acked = _set(acked, r, ver)  # mutated table: claimed visible, never sent
        return (label, (copies, open_, ops, homever, acked, pend, net, nextver))

    def _deliver(self, s, i):
        copies, open_, ops, homever, acked, pend, net, nextver = s
        msg = net[i]
        net = net[:i] + net[i + 1 :]
        mtype, src, dst, r, payload, tag = msg
        label = f"deliver {mtype} {src}->{dst} r{r}"
        if mtype == "upd":
            homever = _set(homever, r, payload)
            if dst != src:
                copies = _set2(copies, dst, r, payload)
            targets = [n for n in range(self.scope.nodes) if n not in (src, dst)]
            if not targets:
                net = _add(net, ("upd_done", dst, src, r, payload, ""))
            else:
                pend = _set(pend, r, (src, payload, len(targets)))
                for t in targets:
                    net = _add(net, ("apply", dst, t, r, payload, ""))
            return (label, (copies, open_, ops, homever, acked, pend, net, nextver))
        if mtype == "apply":
            copies = _set2(copies, dst, r, payload)
            net = _add(net, ("apply_ack", dst, src, r, payload, ""))
            return (label, (copies, open_, ops, homever, acked, pend, net, nextver))
        if mtype == "apply_ack":
            writer, ver, need = pend[r]
            need -= 1
            if need > 0:
                pend = _set(pend, r, (writer, ver, need))
            else:
                pend = _set(pend, r, None)
                net = _add(net, ("upd_done", dst, writer, r, ver, ""))
            return (label, (copies, open_, ops, homever, acked, pend, net, nextver))
        if mtype == "upd_done":
            open_ = _set(open_, dst, None)
            acked = _set(acked, r, payload)
            return (label, (copies, open_, ops, homever, acked, pend, net, nextver))
        raise ModelCheckError(f"{self.table.name}: unroutable message {mtype!r}")

    def invariant_violation(self, s):
        copies, open_, ops, homever, acked, pend, net, nextver = s
        for r in range(self.scope.regions):
            writers = [
                n for n in range(self.scope.nodes) if open_[n] is not None
                and open_[n][1] == r and open_[n][0] in ("w", "wu")
            ]
            if len(writers) > 1:
                return ("single_writer", f"region {r} has concurrent writers {writers}")
            for n in range(self.scope.nodes):
                if copies[n][r] < acked[r]:
                    return (
                        "no_stale_read",
                        f"node {n} holds r{r} at v{copies[n][r]} after v{acked[r]} fully acked",
                    )
        return None

    def terminal_violation(self, s):
        copies, open_, ops, homever, acked, pend, net, nextver = s
        if net:
            return ("quiescence", f"terminal state with {len(net)} undelivered message(s)")
        for n in range(self.scope.nodes):
            if open_[n] is not None:
                return ("quiescence", f"node {n} stuck in {open_[n]}")
        return None


# ----------------------------------------------------------------------
# tuple helpers (states are immutable; these rebuild one slot)
# ----------------------------------------------------------------------
def _set(tup, i, value):
    return tup[:i] + (value,) + tup[i + 1 :]


def _set2(tup, i, j, value):
    return _set(tup, i, _set(tup[i], j, value))


def _add(net, msg):
    return tuple(sorted(net + (msg,)))


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def model_for(table: ProtocolTable, scope: Scope):
    """Pick the family model the table's metadata declares."""
    if table.writer_model == "copy" and table.sync_model == "access":
        return InvalidationModel(table, scope)
    if table.sync_model == "barrier" and table.writer_model == "epoch":
        return BarrierModel(table, scope)
    if table.sync_model == "immediate":
        return UpdateModel(table, scope)
    raise ModelCheckError(
        f"{table.name}: no model for sync_model={table.sync_model!r} "
        f"writer_model={table.writer_model!r}"
    )


def check_table(
    table: ProtocolTable,
    scope: Scope | None = None,
    max_states: int = 400_000,
    stop_at_first: bool = True,
) -> CheckResult:
    """Exhaustively check ``table`` at ``scope``; returns the result
    (violations carry minimal counterexample traces)."""
    scope = scope or Scope()
    model = model_for(table, scope)
    result = CheckResult(
        protocol=table.name,
        family=model.family,
        scope=scope,
        invariants=model.invariants,
        fingerprint=table.fingerprint(),
    )
    return _bfs(model, result, max_states, stop_at_first)


def seeded_mutations(table: ProtocolTable) -> list[tuple[str, ProtocolTable]]:
    """Deliberately broken variants of an invalidation table.

    Used by ``tools/modelcheck.py --seeded`` and the test suite to
    prove the checker has teeth: each mutation is type-well-formed
    (tables re-validate on construction) but semantically wrong, and
    the checker must refute every one of them.
    """
    out = []
    try:
        i = table.find_row("node", "excl", "invalidate")
    except TableError:
        i = None
    if i is not None:
        row = table.transitions[i]
        # 1. flipped invalidate ack: ack without the dirty writeback —
        #    the home serves the next request from stale canonical data.
        out.append(
            (
                "invalidate-ack-drops-writeback",
                table.mutate(i, actions=tuple(a for a in row.actions if a != "writeback")),
            )
        )
        # 2. invalidate leaves the copy readable: the old sharer keeps
        #    hitting locally after ownership moved.
        out.append(("invalidate-keeps-copy-readable", table.mutate(i, next="shared")))
    try:
        j = table.find_row("home", "idle", "write_req", guard="copies_elsewhere")
        out.append(("write-grant-skips-recall", table.mutate(j, guard="owned_elsewhere")))
    except TableError:
        pass
    # Barrier family: drop the synchronous write-back (home never learns
    # about the write) or the barrier self-invalidation (stale copies
    # survive the epoch boundary).
    for k, t in enumerate(table.transitions):
        if t.role != "node":
            continue
        if t.event == "end_write" and "writeback_home" in t.actions:
            out.append(
                (
                    "write-back-dropped",
                    table.mutate(
                        k, actions=tuple(a for a in t.actions if a != "writeback_home"), msg=None
                    ),
                )
            )
        if t.event == "barrier" and "self_invalidate" in t.actions:
            out.append(
                (
                    "self-invalidate-dropped",
                    table.mutate(k, actions=tuple(a for a in t.actions if a != "self_invalidate")),
                )
            )
        # Update family: the write commits locally but is never pushed.
        if t.event == "end_write" and "propagate_write" in t.actions:
            out.append(
                (
                    "update-propagation-dropped",
                    table.mutate(
                        k, actions=tuple(a for a in t.actions if a != "propagate_write"), msg=None
                    ),
                )
            )
    return out
