"""Per-node programming context and SPMD launcher."""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Generator

from repro.core import AceRuntime
from repro.crl import CRLRuntime
from repro.dsm import as_transport
from repro.machine import Machine, MachineConfig
from repro.sim import Delay, Simulator

#: An SPMD program: called once per node with its context, returns a generator.
SPMDProgram = Callable[["NodeContext"], Generator]


class AceBackend:
    """Facade backend running the Ace runtime (spaces + protocols).

    Calls whose signature matches the runtime exactly are bound
    straight to the runtime generator in ``__init__`` — the facade
    adds zero generator frames on the per-access path.  Only
    ``barrier`` (which multiplexes on ``sid``) needs an adapter.
    """

    name = "ace"

    def __init__(self, fabric, **runtime_kwargs):
        transport = self.transport = as_transport(fabric)
        self.machine = transport.machine
        rt = self.runtime = AceRuntime(transport, **runtime_kwargs)
        self.new_space = rt.new_space
        self.gmalloc = rt.gmalloc
        self.change_protocol = rt.change_protocol
        self.map = rt.map
        self.unmap = rt.unmap
        self.start_read = rt.start_read
        self.end_read = rt.end_read
        self.start_write = rt.start_write
        self.end_write = rt.end_write
        self.lock = rt.lock
        self.unlock = rt.unlock

    def barrier(self, nid, sid=None):
        if sid is None:
            yield from self.runtime.rendezvous(nid)
        else:
            yield from self.runtime.barrier(nid, sid)


class CRLBackend:
    """Facade backend running the fixed-protocol CRL baseline.

    Accepts the space-flavoured calls so the same program text runs,
    but spaces are inert tokens and any attempt to leave the SC
    protocol raises — CRL has no customizable protocols.
    """

    name = "crl"

    def __init__(self, fabric, **runtime_kwargs):
        transport = self.transport = as_transport(fabric)
        self.machine = transport.machine
        rt = self.runtime = CRLRuntime(transport, **runtime_kwargs)
        self._space_ctr = [0] * transport.n_procs
        # Per-access calls bind straight to the CRL runtime (see
        # AceBackend): the facade frame disappears from the hot path.
        self.map = rt.rgn_map
        self.unmap = rt.rgn_unmap
        self.start_read = rt.rgn_start_read
        self.end_read = rt.rgn_end_read
        self.start_write = rt.rgn_start_write
        self.end_write = rt.rgn_end_write
        self.lock = rt.lock
        self.unlock = rt.unlock

    def new_space(self, nid, protocol):
        self._require_sc(protocol)
        sid = self._space_ctr[nid]
        self._space_ctr[nid] += 1
        yield Delay(1)
        return sid

    def gmalloc(self, nid, sid, size):
        rid = yield from self.runtime.rgn_create(nid, size)
        return rid

    def change_protocol(self, nid, sid, protocol):
        self._require_sc(protocol)
        return
        yield  # pragma: no cover - makes this a generator

    def _require_sc(self, protocol: str) -> None:
        if protocol != "SC":
            raise NotImplementedError(
                f"CRL has a single fixed protocol; cannot use {protocol!r}"
            )

    def barrier(self, nid, sid=None):
        yield from self.runtime.barrier(nid)


class NodeContext:
    """One node's view of the DSM: what a benchmark program codes against.

    The per-access calls (``map``/``unmap``/``start_*``/``end_*``,
    ``gmalloc``, ``change_protocol``, ``lock``/``unlock``) are bound in
    ``__init__`` as partials of the backend generators with this node's
    id pre-applied.  ``handle = yield from ctx.map(rid)`` therefore
    drives the runtime generator *directly* — the context adds no
    generator frame and no allocation beyond the one the runtime makes.
    Signatures and return values are exactly those of the class-level
    wrappers they replace (the backend generator's ``return`` value
    propagates through ``yield from`` unchanged).
    """

    def __init__(self, backend, nid: int):
        self.backend = backend
        self.nid = nid
        self.gmalloc = partial(backend.gmalloc, nid)  # (sid, size) -> rid
        self.change_protocol = partial(backend.change_protocol, nid)  # (sid, protocol)
        self.map = partial(backend.map, nid)  # (rid) -> handle
        self.unmap = partial(backend.unmap, nid)  # (handle)
        self.start_read = partial(backend.start_read, nid)  # (handle)
        self.end_read = partial(backend.end_read, nid)  # (handle)
        self.start_write = partial(backend.start_write, nid)  # (handle)
        self.end_write = partial(backend.end_write, nid)  # (handle)
        self.lock = partial(backend.lock, nid)  # (rid)
        self.unlock = partial(backend.unlock, nid)  # (rid)

    @property
    def n_procs(self) -> int:
        return self.backend.machine.n_procs

    @property
    def machine(self) -> Machine:
        return self.backend.machine

    def compute(self, cycles: int):
        """Generator: charge local computation time."""
        yield Delay(cycles)

    # -- phase scoping (observability; DESIGN.md §7) --------------------
    # Phases are machine-global, so in an SPMD program only node 0's
    # calls take effect — every node can call these unconditionally at
    # the same program points (typically around barriers).  Both calls
    # are host-side only: they charge no cycles, bump no counters, and
    # are no-ops in the stats when nothing is counted inside them, so
    # adding them to an app never moves simulated time.
    def push_phase(self, name: str) -> None:
        """Begin a named stats/trace phase (node 0 only; others no-op)."""
        if self.nid != 0:
            return
        machine = self.backend.machine
        machine.stats.push_phase(name)
        tracer = machine.tracer
        if tracer is not None:
            tracer.emit(machine.sim.now, "phase", "phase.begin", data=name)

    def pop_phase(self) -> None:
        """End the innermost phase (node 0 only; others no-op)."""
        if self.nid != 0:
            return
        machine = self.backend.machine
        name = machine.stats.current_phase
        machine.stats.pop_phase()
        tracer = machine.tracer
        if tracer is not None:
            tracer.emit(machine.sim.now, "phase", "phase.end", data=name)

    # The remaining forwards keep an adapter frame: ``new_space`` and
    # ``barrier`` supply defaults the backend signature does not have.
    def new_space(self, protocol: str = "SC"):
        sid = yield from self.backend.new_space(self.nid, protocol)
        return sid

    def barrier(self, sid: int | None = None):
        yield from self.backend.barrier(self.nid, sid)

    # -- conveniences used all over the benchmarks ----------------------
    def read_region(self, handle):
        """Generator: start_read → snapshot → end_read; returns the snapshot."""
        yield from self.start_read(handle)
        data = handle.data.copy()
        yield from self.end_read(handle)
        return data

    def write_region(self, handle, values):
        """Generator: start_write → assign → end_write."""
        yield from self.start_write(handle)
        handle.data[:] = values
        yield from self.end_write(handle)


@dataclass
class RunResult:
    """Outcome of one SPMD run: simulated cycles, per-node returns, stats."""

    time: int
    results: list
    machine: Machine
    backend: object = None

    @property
    def stats(self):
        return self.machine.stats

    @property
    def checker(self):
        """The run's :class:`~repro.sanitize.dynamic.DynamicChecker`
        (None unless ``run_spmd(..., check=True)``)."""
        return getattr(getattr(self.backend, "runtime", None), "checker", None)

    @property
    def tracer(self):
        """The run's :class:`~repro.obs.TraceBuffer` (None when tracing off)."""
        return self.machine.tracer


def run_spmd(
    program: SPMDProgram,
    backend: str = "ace",
    n_procs: int = 8,
    machine_config: MachineConfig | None = None,
    jitter_seed: int | None = None,
    trace: Callable[[int, str], None] | None = None,
    tracer=None,
    fault_plan=None,
    retry_policy=None,
    on_crash: str | None = None,
    check: bool = False,
    **backend_kwargs,
) -> RunResult:
    """Run an SPMD program on a fresh simulated machine; returns :class:`RunResult`.

    ``backend`` is ``"ace"`` or ``"crl"``.  ``jitter_seed`` enables
    schedule fuzzing (see :mod:`repro.verify`).  ``trace`` is forwarded
    to the :class:`~repro.sim.Simulator` event trace hook.  ``tracer``
    is an optional :class:`repro.obs.TraceBuffer` wired through the
    kernel, machine, and every DSM layer; simulated cycles are
    bit-identical with and without it (see DESIGN.md §7).

    ``fault_plan`` (a :class:`~repro.dsm.faults.FaultPlan`) wraps the
    machine in a :class:`~repro.dsm.faults.FaultTransport`: the plan's
    seeded faults are injected and every protocol layer runs its
    retry/dedup variants (DESIGN.md §9).  ``retry_policy`` tunes the
    timeout/backoff schedule.  With ``fault_plan=None`` no fault
    machinery is constructed and cycles are bit-identical to earlier
    releases.

    ``on_crash`` (``"recover"`` or ``"abort"``; requires a
    ``fault_plan``) arms crash recovery (DESIGN.md §15): a
    :class:`~repro.dsm.recovery.RecoveryManager` heartbeats the nodes,
    and a crash-stop fault is *handled* — under ``"recover"`` the dead
    node's task retires with a :class:`~repro.dsm.recovery.Crashed`
    result marker, its regions re-home, and the survivors continue;
    under ``"abort"`` the run raises a prompt, suspect-attributed
    :class:`~repro.dsm.faults.StallError` at detection instead of
    stalling to retry exhaustion.

    ``check=True`` runs the dynamic sanitizer (Ace backend only): a
    :class:`~repro.sanitize.dynamic.DynamicChecker` observes every
    annotation call and reports races / use-after-unmap on
    ``result.checker``.  The checker charges no cycles, so
    ``result.time`` is identical with and without it; with
    ``check=False`` no checker code runs at all.
    """
    factories = {"ace": AceBackend, "crl": CRLBackend}
    try:
        factory = factories[backend]
    except KeyError:
        raise ValueError(f"unknown backend {backend!r}; choose from {sorted(factories)}") from None
    if check:
        if backend != "ace":
            raise ValueError("check=True requires the 'ace' backend (dynamic sanitizer)")
        backend_kwargs["check"] = True
    sim = Simulator(trace=trace, jitter_seed=jitter_seed, tracer=tracer)
    cfg = machine_config or MachineConfig(n_procs=n_procs)
    if cfg.n_procs != n_procs:
        cfg = cfg.with_(n_procs=n_procs)
    machine = Machine(sim, cfg, tracer=tracer)
    fabric = machine
    if on_crash is not None and fault_plan is None:
        raise ValueError("on_crash requires a fault_plan (crashes are plan faults)")
    if fault_plan is not None:
        from repro.dsm.faults import FaultTransport

        fabric = FaultTransport(machine, fault_plan, retry_policy=retry_policy, on_crash=on_crash)
    be = factory(fabric, **backend_kwargs)
    ctxs = [NodeContext(be, i) for i in range(n_procs)]
    if on_crash is None:
        results = sim.run_all((program(ctx) for ctx in ctxs), prefix="proc")
    else:
        # The recovery manager needs the task handles (to retire a dead
        # node's task with a Crashed result), so spawn explicitly.
        tasks = [sim.spawn(program(ctx), name=f"proc{i}") for i, ctx in enumerate(ctxs)]
        fabric.recovery.start(tasks)
        sim.run()
        results = [t.done.result() for t in tasks]
    # A leftover push_phase would misattribute everything counted after
    # it; surface the imbalance at the run boundary with the open stack
    # (machine.stats.PhaseScopeError) instead of silently mis-scoping.
    # A crashed node 0 dies mid-phase by design — skip the check then.
    if on_crash is None or not fabric.recovery.dead:
        machine.stats.require_balanced()
    return RunResult(time=sim.now, results=results, machine=machine, backend=be)
