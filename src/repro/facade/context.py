"""Per-node programming context and SPMD launcher."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.core import AceRuntime
from repro.crl import CRLRuntime
from repro.machine import Machine, MachineConfig
from repro.sim import Delay, Simulator

#: An SPMD program: called once per node with its context, returns a generator.
SPMDProgram = Callable[["NodeContext"], Generator]


class AceBackend:
    """Facade backend running the Ace runtime (spaces + protocols)."""

    name = "ace"

    def __init__(self, machine: Machine, **runtime_kwargs):
        self.machine = machine
        self.runtime = AceRuntime(machine, **runtime_kwargs)

    def new_space(self, nid, protocol):
        sid = yield from self.runtime.new_space(nid, protocol)
        return sid

    def gmalloc(self, nid, sid, size):
        rid = yield from self.runtime.gmalloc(nid, sid, size)
        return rid

    def change_protocol(self, nid, sid, protocol):
        yield from self.runtime.change_protocol(nid, sid, protocol)

    def map(self, nid, rid):
        handle = yield from self.runtime.map(nid, rid)
        return handle

    def unmap(self, nid, handle):
        yield from self.runtime.unmap(nid, handle)

    def start_read(self, nid, handle):
        yield from self.runtime.start_read(nid, handle)

    def end_read(self, nid, handle):
        yield from self.runtime.end_read(nid, handle)

    def start_write(self, nid, handle):
        yield from self.runtime.start_write(nid, handle)

    def end_write(self, nid, handle):
        yield from self.runtime.end_write(nid, handle)

    def barrier(self, nid, sid=None):
        if sid is None:
            yield from self.runtime.rendezvous(nid)
        else:
            yield from self.runtime.barrier(nid, sid)

    def lock(self, nid, rid):
        yield from self.runtime.lock(nid, rid)

    def unlock(self, nid, rid):
        yield from self.runtime.unlock(nid, rid)


class CRLBackend:
    """Facade backend running the fixed-protocol CRL baseline.

    Accepts the space-flavoured calls so the same program text runs,
    but spaces are inert tokens and any attempt to leave the SC
    protocol raises — CRL has no customizable protocols.
    """

    name = "crl"

    def __init__(self, machine: Machine, **runtime_kwargs):
        self.machine = machine
        self.runtime = CRLRuntime(machine, **runtime_kwargs)
        self._space_ctr = [0] * machine.n_procs

    def new_space(self, nid, protocol):
        self._require_sc(protocol)
        sid = self._space_ctr[nid]
        self._space_ctr[nid] += 1
        yield Delay(1)
        return sid

    def gmalloc(self, nid, sid, size):
        rid = yield from self.runtime.rgn_create(nid, size)
        return rid

    def change_protocol(self, nid, sid, protocol):
        self._require_sc(protocol)
        return
        yield  # pragma: no cover - makes this a generator

    def _require_sc(self, protocol: str) -> None:
        if protocol != "SC":
            raise NotImplementedError(
                f"CRL has a single fixed protocol; cannot use {protocol!r}"
            )

    def map(self, nid, rid):
        handle = yield from self.runtime.rgn_map(nid, rid)
        return handle

    def unmap(self, nid, handle):
        yield from self.runtime.rgn_unmap(nid, handle)

    def start_read(self, nid, handle):
        yield from self.runtime.rgn_start_read(nid, handle)

    def end_read(self, nid, handle):
        yield from self.runtime.rgn_end_read(nid, handle)

    def start_write(self, nid, handle):
        yield from self.runtime.rgn_start_write(nid, handle)

    def end_write(self, nid, handle):
        yield from self.runtime.rgn_end_write(nid, handle)

    def barrier(self, nid, sid=None):
        yield from self.runtime.barrier(nid)

    def lock(self, nid, rid):
        yield from self.runtime.lock(nid, rid)

    def unlock(self, nid, rid):
        yield from self.runtime.unlock(nid, rid)


class NodeContext:
    """One node's view of the DSM: what a benchmark program codes against."""

    def __init__(self, backend, nid: int):
        self.backend = backend
        self.nid = nid

    @property
    def n_procs(self) -> int:
        return self.backend.machine.n_procs

    @property
    def machine(self) -> Machine:
        return self.backend.machine

    def compute(self, cycles: int):
        """Generator: charge local computation time."""
        yield Delay(cycles)

    # All remaining methods simply forward to the backend with this
    # node's id; each is a generator to drive with ``yield from``.
    def new_space(self, protocol: str = "SC"):
        sid = yield from self.backend.new_space(self.nid, protocol)
        return sid

    def gmalloc(self, sid: int, size: int):
        rid = yield from self.backend.gmalloc(self.nid, sid, size)
        return rid

    def change_protocol(self, sid: int, protocol: str):
        yield from self.backend.change_protocol(self.nid, sid, protocol)

    def map(self, rid: int):
        handle = yield from self.backend.map(self.nid, rid)
        return handle

    def unmap(self, handle):
        yield from self.backend.unmap(self.nid, handle)

    def start_read(self, handle):
        yield from self.backend.start_read(self.nid, handle)

    def end_read(self, handle):
        yield from self.backend.end_read(self.nid, handle)

    def start_write(self, handle):
        yield from self.backend.start_write(self.nid, handle)

    def end_write(self, handle):
        yield from self.backend.end_write(self.nid, handle)

    def barrier(self, sid: int | None = None):
        yield from self.backend.barrier(self.nid, sid)

    def lock(self, rid: int):
        yield from self.backend.lock(self.nid, rid)

    def unlock(self, rid: int):
        yield from self.backend.unlock(self.nid, rid)

    # -- conveniences used all over the benchmarks ----------------------
    def read_region(self, handle):
        """Generator: start_read → snapshot → end_read; returns the snapshot."""
        yield from self.start_read(handle)
        data = handle.data.copy()
        yield from self.end_read(handle)
        return data

    def write_region(self, handle, values):
        """Generator: start_write → assign → end_write."""
        yield from self.start_write(handle)
        handle.data[:] = values
        yield from self.end_write(handle)


@dataclass
class RunResult:
    """Outcome of one SPMD run: simulated cycles, per-node returns, stats."""

    time: int
    results: list
    machine: Machine
    backend: object = None

    @property
    def stats(self):
        return self.machine.stats


def run_spmd(
    program: SPMDProgram,
    backend: str = "ace",
    n_procs: int = 8,
    machine_config: MachineConfig | None = None,
    jitter_seed: int | None = None,
    **backend_kwargs,
) -> RunResult:
    """Run an SPMD program on a fresh simulated machine; returns :class:`RunResult`.

    ``backend`` is ``"ace"`` or ``"crl"``.  ``jitter_seed`` enables
    schedule fuzzing (see :mod:`repro.verify`).
    """
    factories = {"ace": AceBackend, "crl": CRLBackend}
    try:
        factory = factories[backend]
    except KeyError:
        raise ValueError(f"unknown backend {backend!r}; choose from {sorted(factories)}") from None
    sim = Simulator(jitter_seed=jitter_seed)
    cfg = machine_config or MachineConfig(n_procs=n_procs)
    if cfg.n_procs != n_procs:
        cfg = cfg.with_(n_procs=n_procs)
    machine = Machine(sim, cfg)
    be = factory(machine, **backend_kwargs)
    ctxs = [NodeContext(be, i) for i in range(n_procs)]
    results = sim.run_all((program(ctx) for ctx in ctxs), prefix="proc")
    return RunResult(time=sim.now, results=results, machine=machine, backend=be)
