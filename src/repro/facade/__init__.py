"""Backend-neutral DSM programming interface for the benchmarks.

§5.1 of the paper: "to perform a fair comparison of the Ace and CRL
runtime systems, we use the same source files for Ace and CRL ...
ported by replacing CRL primitives with the corresponding Ace calls".
This package is that port made mechanical: every benchmark is written
once against :class:`~repro.facade.context.NodeContext` and runs on
either backend.  The Ace backend additionally understands spaces and
protocol changes; the CRL backend accepts the same calls but pins
everything to its single fixed protocol (and refuses a real protocol
change, because CRL cannot do that).
"""

from repro.facade.context import (
    AceBackend,
    CRLBackend,
    NodeContext,
    RunResult,
    SPMDProgram,
    run_spmd,
)

__all__ = ["AceBackend", "CRLBackend", "NodeContext", "RunResult", "SPMDProgram", "run_spmd"]
