"""Declarative protocol specifications (tables) shared by every layer.

This package is deliberately dependency-light: it imports nothing from
the simulator, the machine, or the protocol runtime, so the DSM layers
(:mod:`repro.dsm`), the protocol library (:mod:`repro.protocols`), the
model checker (:mod:`repro.verify.modelcheck`), and the doc generator
(``tools/protocol_docs.py``) can all consume the same
:class:`~repro.spec.table.ProtocolTable` artifacts without import
cycles.
"""

from repro.spec.table import ProtocolTable, TableError, Transition

__all__ = ["ProtocolTable", "TableError", "Transition"]
