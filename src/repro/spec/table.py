"""``ProtocolTable``: states × events → guard / actions / next state.

The paper's position is that a coherence protocol is *interchangeable,
user-definable policy*.  Policy should therefore be **data**: this
module defines the declarative transition-table artifact every other
layer consumes —

* :class:`~repro.protocols.base.TableProtocol` interprets a table at
  runtime (hook dispatch is compiled from the rows at construction);
* the DSM layers (:mod:`repro.dsm.directory`,
  :mod:`repro.dsm.regioncache`, :mod:`repro.dsm.hooks`) derive their
  state names, next-state maps, and recall modes from the MSI table in
  :mod:`repro.dsm.msi`, so home-side and node-side state machines come
  from one artifact;
* the small-scope model checker (:mod:`repro.verify.modelcheck`)
  enumerates all message interleavings directly over the rows;
* ``tools/protocol_docs.py`` renders the protocol reference in
  DESIGN.md/README from the same fields, so the docs cannot drift.

A :class:`Transition` row reads::

    Transition(role, state, event, next, guard, actions, cost, msg, effects)

``role``
    ``"node"`` (requester-side copy machine) or ``"home"`` (directory
    side).  One table describes both machines.
``state``
    Source state, or ``"*"`` for any state (wildcard rows match after
    every explicit row — definition order is match order otherwise).
``event``
    What fires the row: an access hook (``start_read`` …), a
    synchronization hook (``barrier``), or a message arrival.
``next``
    Destination state; ``"="`` keeps the current state.
``guard``
    Optional predicate name (resolved to a ``g_<name>`` method by the
    runtime interpreter, and to an abstract predicate by the checker).
``actions``
    Ordered action-primitive names (``act_<name>`` methods at runtime;
    abstract transformers in the checker) — the SLICC-style "code
    fragments" the table sequences.
``cost``
    Cycles charged after the row matches (the table's cost
    annotation); per-event *entry* costs charged before matching live
    in :attr:`ProtocolTable.entry_costs`.
``msg``
    Message category the row emits, if any (documentation and
    model-checker channel bookkeeping).
``effects``
    Declarative abstract-state effects for the model checker (small
    vocabulary interpreted by :mod:`repro.verify.modelcheck`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Mapping


class TableError(ValueError):
    """A protocol table is internally inconsistent."""


ROLES = ("node", "home")

#: Events the runtime interpreter may compile into hook dispatchers.
HOOK_EVENTS = ("start_read", "end_read", "start_write", "end_write", "barrier")

WILDCARD = "*"
KEEP = "="


@dataclass(frozen=True)
class Transition:
    """One row of a protocol table (see module docstring)."""

    role: str
    state: str
    event: str
    next: str = KEEP
    guard: str | None = None
    actions: tuple[str, ...] = ()
    cost: int = 0
    msg: str | None = None
    effects: tuple[str, ...] = ()
    note: str = ""

    def __post_init__(self):
        if self.role not in ROLES:
            raise TableError(f"transition role must be one of {ROLES}, got {self.role!r}")
        if self.cost < 0:
            raise TableError(f"transition cost must be >= 0, got {self.cost}")
        # Tuples, not lists: tables are frozen artifacts.
        if not isinstance(self.actions, tuple):
            object.__setattr__(self, "actions", tuple(self.actions))
        if not isinstance(self.effects, tuple):
            object.__setattr__(self, "effects", tuple(self.effects))

    @property
    def key(self) -> tuple:
        return (self.role, self.state, self.event, self.guard)


def _freeze_map(m: Mapping | None) -> Mapping:
    return MappingProxyType(dict(m or {}))


@dataclass(frozen=True)
class ProtocolTable:
    """The declarative core of one protocol.

    Beyond the transition rows, the table carries the registration
    metadata the registry used to keep per-protocol special cases for:
    ``optimizable``, ``null_hooks``, ``home_writer``, ``hardware``, and
    the ``base_state`` a flush returns every non-home copy to.  The
    :class:`~repro.protocols.base.ProtocolSpec` of a table-driven
    protocol is *derived* from these fields — one artifact, no drift.

    ``sync_model`` and ``writer_model`` tell the model checker which
    visibility/exclusivity contract to verify:

    * ``sync_model``: ``"access"`` (writes visible at the access that
      completes them — SC family), ``"immediate"`` (update family:
      visible once propagation acks), or ``"barrier"`` (visible after
      the next barrier — self-invalidation family);
    * ``writer_model``: ``"copy"`` (exclusivity via copy states: SWMR),
      ``"home"`` (only the home writes), ``"epoch"`` (one writer per
      barrier epoch), or ``"serialized"`` (home-serialized RMW).
    """

    name: str
    description: str = ""
    node_states: tuple[str, ...] = ()
    home_states: tuple[str, ...] = ()
    base_state: str = "invalid"
    transitions: tuple[Transition, ...] = ()
    costs: Mapping[str, int] = field(default_factory=dict)
    entry_costs: Mapping[str, int] = field(default_factory=dict)
    optimizable: bool = False
    null_hooks: frozenset = frozenset()
    home_writer: bool = False
    hardware: bool = False
    sync_model: str = "access"
    writer_model: str = "copy"

    def __post_init__(self):
        if not isinstance(self.transitions, tuple):
            object.__setattr__(self, "transitions", tuple(self.transitions))
        object.__setattr__(self, "node_states", tuple(self.node_states))
        object.__setattr__(self, "home_states", tuple(self.home_states))
        object.__setattr__(self, "null_hooks", frozenset(self.null_hooks))
        object.__setattr__(self, "costs", _freeze_map(self.costs))
        object.__setattr__(self, "entry_costs", _freeze_map(self.entry_costs))
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        name = self.name
        states = {"node": set(self.node_states), "home": set(self.home_states)}
        if self.base_state not in states["node"]:
            raise TableError(
                f"{name}: base_state {self.base_state!r} not in node_states {self.node_states}"
            )
        if self.sync_model not in ("access", "immediate", "barrier"):
            raise TableError(f"{name}: unknown sync_model {self.sync_model!r}")
        if self.writer_model not in ("copy", "home", "epoch", "serialized", "none"):
            raise TableError(f"{name}: unknown writer_model {self.writer_model!r}")
        seen: set[tuple] = set()
        for t in self.transitions:
            where = f"{name}: ({t.role}, {t.state!r}, {t.event!r})"
            if t.state != WILDCARD and t.state not in states[t.role]:
                raise TableError(f"{where}: unknown source state")
            if t.next != KEEP and t.next not in states[t.role]:
                raise TableError(f"{where}: unknown next state {t.next!r}")
            if t.key in seen:
                raise TableError(f"{where}: duplicate row (same state/event/guard)")
            seen.add(t.key)
        # A hook the registry advertises as null must really be null in
        # the table: no row may charge cycles, act, emit, or move state.
        for hook in self.null_hooks:
            for t in self.rows("node", hook):
                if t.actions or t.cost or t.msg or t.next != KEEP:
                    raise TableError(
                        f"{name}: hook {hook!r} is declared null but row "
                        f"({t.state!r}, {t.event!r}) does work"
                    )
            if self.entry_costs.get(hook):
                raise TableError(f"{name}: null hook {hook!r} has a nonzero entry cost")

    # ------------------------------------------------------------------
    # queries (used by the interpreter, the DSM layers, the checker,
    # and the doc generator)
    # ------------------------------------------------------------------
    def rows(self, role: str | None = None, event: str | None = None) -> tuple[Transition, ...]:
        """Rows filtered by role and/or event, in definition order."""
        return tuple(
            t
            for t in self.transitions
            if (role is None or t.role == role) and (event is None or t.event == event)
        )

    def events(self, role: str | None = None) -> tuple[str, ...]:
        """Distinct events for ``role``, in first-appearance order."""
        out: list[str] = []
        for t in self.transitions:
            if (role is None or t.role == role) and t.event not in out:
                out.append(t.event)
        return tuple(out)

    def lookup(self, role: str, state: str, event: str) -> tuple[Transition, ...]:
        """Rows matching ``(role, state, event)``; explicit before wildcard."""
        exact = [t for t in self.rows(role, event) if t.state == state]
        wild = [t for t in self.rows(role, event) if t.state == WILDCARD]
        return tuple(exact + wild)

    def next_map(self, role: str, event: str) -> dict[str, str]:
        """``{state: next_state}`` for an event; wildcard rows fan out
        to every state they cover, ``"="`` resolves to identity."""
        states = self.node_states if role == "node" else self.home_states
        out: dict[str, str] = {}
        for t in self.rows(role, event):
            targets = states if t.state == WILDCARD else (t.state,)
            for s in targets:
                if s in out:
                    continue  # explicit rows were added first for s
                out[s] = s if t.next == KEEP else t.next
        return out

    def states_with(self, event: str, action: str, role: str = "node") -> frozenset:
        """States whose row for ``event`` runs ``action`` (e.g. the MSI
        hit states: ``states_with("start_read", "hit")``)."""
        return frozenset(
            t.state for t in self.rows(role, event) if action in t.actions and t.state != WILDCARD
        )

    def next_of(self, role: str, state: str, event: str) -> str:
        """The destination state of the first matching row."""
        rows = self.lookup(role, state, event)
        if not rows:
            raise TableError(f"{self.name}: no row for ({role}, {state!r}, {event!r})")
        nxt = rows[0].next
        return state if nxt == KEEP else nxt

    def cost(self, key: str) -> int:
        """A named cost annotation (raises on unknown keys)."""
        try:
            return self.costs[key]
        except KeyError:
            raise TableError(f"{self.name}: unknown cost annotation {key!r}") from None

    def action_names(self) -> tuple[str, ...]:
        """Every action primitive the table references (sorted, unique)."""
        names: set[str] = set()
        for t in self.transitions:
            names.update(t.actions)
        return tuple(sorted(names))

    def guard_names(self) -> tuple[str, ...]:
        """Every guard predicate the table references (sorted, unique)."""
        return tuple(sorted({t.guard for t in self.transitions if t.guard is not None}))

    def with_(self, **kw) -> "ProtocolTable":
        """A copy with fields replaced (e.g. the HwSC variant of MSI)."""
        return replace(self, **kw)

    def fingerprint(self) -> str:
        """Stable content hash of the table (rows + metadata).

        Model-checker certificates record this so a certificate is
        verifiably *about* the table as it exists today — editing any
        row invalidates every committed certificate for the protocol.
        """
        import hashlib

        parts = [
            self.name,
            self.base_state,
            self.sync_model,
            self.writer_model,
            repr(self.node_states),
            repr(self.home_states),
            repr(sorted(self.costs.items())),
            repr(sorted(self.entry_costs.items())),
            repr((self.optimizable, self.home_writer, self.hardware)),
            repr(sorted(self.null_hooks)),
        ]
        for t in self.transitions:
            parts.append(
                repr((t.role, t.state, t.event, t.next, t.guard, t.actions, t.cost, t.msg, t.effects))
            )
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # mutation helper (model-checker seeded-mutation mode, tests)
    # ------------------------------------------------------------------
    def mutate(self, index: int, **kw) -> "ProtocolTable":
        """A copy with transition ``index`` replaced — deliberately
        *skipping* validation-breaking checks is not possible (the new
        table re-validates), so mutations must stay type-well-formed;
        the point is that they are *semantically* broken and the model
        checker must find them."""
        rows = list(self.transitions)
        rows[index] = replace(rows[index], **kw)
        return replace(self, transitions=tuple(rows))

    def find_row(self, role: str, state: str, event: str, guard: str | None = None) -> int:
        """Index of the unique row with this key (for :meth:`mutate`)."""
        for i, t in enumerate(self.transitions):
            if t.key == (role, state, event, guard):
                return i
        raise TableError(f"{self.name}: no row ({role}, {state!r}, {event!r}, guard={guard!r})")
