"""EM3D: electromagnetic wave propagation on a bipartite graph (§3.3).

The data structure is a bipartite graph with E nodes and H nodes; each
iteration computes new E values as weighted sums of neighboring H
values, then new H values from neighboring E values.  Every graph node
is its own region (one word) — the fine-grained sharing pattern that
makes EM3D the paper's showcase for update protocols: values are
produced by their owner and consumed by a *static* set of remote
readers.

Protocol plans:

* ``SC_PLAN`` — the default invalidation protocol (Figure 7a/7b base);
* ``DYNAMIC_PLAN`` — dynamic update (§3.3 reports ~3.5x over SC);
* ``STATIC_PLAN`` — static update, Falsafi-style (~5x over SC).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EM3DWorkload:
    """Inputs matching Table 3's EM3D row (scaled by default)."""

    n_e: int = 64
    n_h: int = 64
    degree: int = 4
    pct_remote: float = 0.20
    n_iters: int = 5
    seed: int = 12345

    @classmethod
    def paper(cls) -> "EM3DWorkload":
        """Table 3: 1000 E and 1000 H vertices, 20% remote, degree 10, 100 steps."""
        return cls(n_e=1000, n_h=1000, degree=10, pct_remote=0.20, n_iters=100)


SC_PLAN = {"protocol": "SC"}
DYNAMIC_PLAN = {"protocol": "DynamicUpdate"}
STATIC_PLAN = {"protocol": "StaticUpdate"}

#: cycles charged per weighted-sum term (one multiply-add + pointer chase)
COST_PER_EDGE = 8
#: cycles charged per node update (loop control + final store)
COST_PER_NODE = 12


def make_graph(workload: EM3DWorkload, n_procs: int):
    """Deterministic bipartite graph, partitioned by owner.

    Returns ``(e_owner, h_owner, e_nbrs, h_nbrs, e_w, h_w, e0, h0)``:
    owner arrays, per-node neighbor index lists (into the other side),
    per-edge weights, and initial values.
    """
    rng = np.random.default_rng(workload.seed)
    e_owner = np.arange(workload.n_e) % n_procs
    h_owner = np.arange(workload.n_h) % n_procs

    def pick_neighbors(n_from, from_owner, n_to, to_owner):
        # The local/remote pools depend only on the owner id, so they
        # are computed once per owner instead of once per node.  The
        # rng call sequence is untouched, so the graph is identical.
        pools = {
            own: (np.flatnonzero(to_owner == own), np.flatnonzero(to_owner != own))
            for own in range(n_procs)
        }
        nbrs = []
        for i in range(n_from):
            local_pool, remote_pool = pools[from_owner[i]]
            chosen = []
            for _ in range(workload.degree):
                use_remote = remote_pool.size and rng.random() < workload.pct_remote
                pool = remote_pool if use_remote else local_pool
                if pool.size == 0:
                    pool = np.arange(n_to)
                chosen.append(int(pool[rng.integers(pool.size)]))
            nbrs.append(np.array(chosen, dtype=np.int64))
        return nbrs

    e_nbrs = pick_neighbors(workload.n_e, e_owner, workload.n_h, h_owner)
    h_nbrs = pick_neighbors(workload.n_h, h_owner, workload.n_e, e_owner)
    e_w = [rng.uniform(-0.1, 0.1, size=workload.degree) for _ in range(workload.n_e)]
    h_w = [rng.uniform(-0.1, 0.1, size=workload.degree) for _ in range(workload.n_h)]
    e0 = rng.uniform(-1.0, 1.0, size=workload.n_e)
    h0 = rng.uniform(-1.0, 1.0, size=workload.n_h)
    return e_owner, h_owner, e_nbrs, h_nbrs, e_w, h_w, e0, h0


def reference(workload: EM3DWorkload, n_procs: int):
    """Sequential NumPy reference: final (e, h) values after n_iters."""
    _, _, e_nbrs, h_nbrs, e_w, h_w, e, h = make_graph(workload, n_procs)
    e = e.copy()
    h = h.copy()
    for _ in range(workload.n_iters):
        e = np.array([w @ h[nbr] for nbr, w in zip(e_nbrs, e_w)])
        h = np.array([w @ e[nbr] for nbr, w in zip(h_nbrs, h_w)])
    return e, h


def em3d_program(workload: EM3DWorkload, plan: dict):
    """Build the SPMD program.  Each node returns its owned final values
    as ``({e_idx: val}, {h_idx: val})`` for cross-checking."""
    graph = {}

    def program(ctx):
        nid, n_procs = ctx.nid, ctx.n_procs
        # Phase marks are host-side observability only (node 0 drives;
        # zero cycles, zero counters) — see NodeContext.push_phase.
        ctx.push_phase("setup")
        if nid == 0:
            graph.update(zip(
                ("e_owner", "h_owner", "e_nbrs", "h_nbrs", "e_w", "h_w", "e0", "h0"),
                make_graph(workload, n_procs),
            ))
            graph["e_rid"] = {}
            graph["h_rid"] = {}
        yield from ctx.barrier()

        # Two spaces, one per node family (Figure 2 lines 2-3).
        e_space = yield from ctx.new_space("SC")
        h_space = yield from ctx.new_space("SC")

        # MakeGraph(): every proc allocates its own nodes from the spaces.
        my_e = [i for i in range(workload.n_e) if graph["e_owner"][i] == nid]
        my_h = [i for i in range(workload.n_h) if graph["h_owner"][i] == nid]
        for i in my_e:
            rid = yield from ctx.gmalloc(e_space, 1)
            graph["e_rid"][i] = rid
        for i in my_h:
            rid = yield from ctx.gmalloc(h_space, 1)
            graph["h_rid"][i] = rid
        yield from ctx.barrier()

        # Plug in the plan's protocol (Figure 2 lines 8-9).
        proto = plan["protocol"]
        yield from ctx.change_protocol(e_space, proto)
        yield from ctx.change_protocol(h_space, proto)

        # Map own nodes and neighbor nodes once (hand-hoisted, as an
        # experienced runtime-system programmer would — §5.3).
        e_h = {}
        h_h = {}
        for i in my_e:
            e_h[i] = yield from ctx.map(graph["e_rid"][i])
            for j in graph["e_nbrs"][i]:
                if j not in h_h:
                    h_h[j] = yield from ctx.map(graph["h_rid"][j])
        for i in my_h:
            if i not in h_h:
                h_h[i] = yield from ctx.map(graph["h_rid"][i])
            for j in graph["h_nbrs"][i]:
                if j not in e_h:
                    e_h[j] = yield from ctx.map(graph["e_rid"][j])

        # Initial values, written by owners.
        for i in my_e:
            yield from ctx.write_region(e_h[i], [graph["e0"][i]])
        for i in my_h:
            yield from ctx.write_region(h_h[i], [graph["h0"][i]])
        yield from ctx.barrier(e_space)
        yield from ctx.barrier(h_space)

        # The access calls are hoisted to locals: this loop is the
        # hottest application code in the repository, and each lookup
        # shaved here is paid once per edge per iteration.
        start_read = ctx.start_read
        end_read = ctx.end_read
        start_write = ctx.start_write
        end_write = ctx.end_write
        compute = ctx.compute

        # Per-node edge lists are flattened once into (handle, weight)
        # pairs with plain-float weights, and the per-node compute
        # charge is precomputed.  Python floats multiply bit-identically
        # to the numpy scalars they came from, so neither the computed
        # values nor any cycle charge moves.
        def edge_pairs(my_nodes, nbrs, weights, in_handles):
            pairs = {}
            costs = {}
            for i in my_nodes:
                nbr = nbrs[i]
                pairs[i] = list(zip([in_handles[j] for j in nbr], weights[i].tolist()))
                costs[i] = COST_PER_EDGE * len(nbr) + COST_PER_NODE
            return pairs, costs

        e_pairs, e_cost = edge_pairs(my_e, graph["e_nbrs"], graph["e_w"], h_h)
        h_pairs, h_cost = edge_pairs(my_h, graph["h_nbrs"], graph["h_w"], e_h)

        def compute_side(my_nodes, pairs, costs, out_handles):
            """One half-iteration: new values from the other side."""
            new_vals = {}
            for i in my_nodes:
                acc = 0.0
                for h, w in pairs[i]:
                    yield from start_read(h)
                    acc += w * h.data[0]
                    yield from end_read(h)
                yield from compute(costs[i])
                new_vals[i] = acc
            for i, v in new_vals.items():
                h = out_handles[i]
                yield from start_write(h)
                h.data[0] = v
                yield from end_write(h)

        ctx.pop_phase()

        # Main loop (Figure 2 lines 12-17).
        ctx.push_phase("iterate")
        for _ in range(workload.n_iters):
            yield from compute_side(my_e, e_pairs, e_cost, e_h)
            yield from ctx.barrier(e_space)
            yield from compute_side(my_h, h_pairs, h_cost, h_h)
            yield from ctx.barrier(h_space)
        ctx.pop_phase()

        ctx.push_phase("collect")
        e_final = {}
        h_final = {}
        for i in my_e:
            data = yield from ctx.read_region(e_h[i])
            e_final[i] = data[0]
        for i in my_h:
            data = yield from ctx.read_region(h_h[i])
            h_final[i] = data[0]
        ctx.pop_phase()
        return e_final, h_final

    return program


def collect_results(run_result, workload: EM3DWorkload):
    """Merge per-node returns into full (e, h) arrays."""
    e = np.zeros(workload.n_e)
    h = np.zeros(workload.n_h)
    for e_final, h_final in run_result.results:
        for i, v in e_final.items():
            e[i] = v
        for i, v in h_final.items():
            h[i] = v
    return e, h
