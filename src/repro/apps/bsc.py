"""BSC: blocked sparse Cholesky factorization (Table 3: matrix Tk15.O).

A left-looking, owner-computes blocked Cholesky over a banded SPD
matrix (the synthetic stand-in for the paper's Tk15 — the band plays
the role of the sparsity structure: blocks outside it are zero and
never allocated).  Each *block* is one region of B×B words, giving the
coarse-grained, bulk-transfer-heavy sharing the paper highlights:
"in BSC, the most important optimization is the use of bulk transfer
... since the Ace runtime system supports user-specified granularity,
the default protocol uses bulk transfer automatically" (§5.2).

Column dependencies are enforced with region locks: every owner holds
the lock of each of its columns' flag regions from startup and
releases it when the column is fully factored; a consumer
acquires/releases the flag before reading (FIFO home locks make this
deadlock-free because dependencies only point to smaller columns).

Custom plan: blocks are written only by the processor that created
them and are immutable once their column's lock is released, so the
custom protocol needs **no coherence actions at all** beyond the
fetch-on-map — the ``Null`` protocol (the degenerate, and optimal,
form of the paper's "data are written only by the processors that
created them" protocol).  As in the paper, the improvement over SC is
marginal: both plans move the same blocks in bulk; only per-access
software overhead differs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BSCWorkload:
    """Banded SPD factorization problem (scaled stand-in for Tk15.O)."""

    n_block_cols: int = 8
    block: int = 4
    band: int = 3  # block bandwidth: L[i][j] exists iff 0 <= i-j <= band
    seed: int = 31

    @classmethod
    def paper(cls) -> "BSCWorkload":
        """Paper-shaped: larger blocked system (Tk15.O itself is proprietary
        to the original study; see DESIGN.md substitutions)."""
        return cls(n_block_cols=24, block=8, band=6)

    @property
    def n(self) -> int:
        return self.n_block_cols * self.block


SC_PLAN = {"blocks": "SC"}
CUSTOM_PLAN = {"blocks": "Null"}

FLOP_COST = 2  # cycles per floating-point multiply-add in block kernels


def make_matrix(workload: BSCWorkload) -> np.ndarray:
    """Deterministic banded SPD matrix (diagonally dominant)."""
    rng = np.random.default_rng(workload.seed)
    n = workload.n
    half_band = workload.band * workload.block
    a = np.zeros((n, n))
    for i in range(n):
        lo = max(0, i - half_band)
        a[i, lo : i + 1] = rng.uniform(-1.0, 1.0, size=i - lo + 1)
    a = a + a.T
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    return a


def reference(workload: BSCWorkload) -> np.ndarray:
    """Dense lower-triangular Cholesky factor of the banded matrix."""
    return np.linalg.cholesky(make_matrix(workload))


def _blocks_in_column(workload: BSCWorkload, j: int):
    """Row-block indices i with an allocated block in column j."""
    return range(j, min(workload.n_block_cols, j + workload.band + 1))


def bsc_program(workload: BSCWorkload, plan: dict):
    """Build the SPMD program.  Each node returns {(i, j): block_array}."""
    shared = {"blk": {}, "flag": {}}
    a = make_matrix(workload)
    B = workload.block
    nb = workload.n_block_cols

    def block_of(i, j):
        return a[i * B : (i + 1) * B, j * B : (j + 1) * B]

    def program(ctx):
        nid, n_procs = ctx.nid, ctx.n_procs
        blk_space = yield from ctx.new_space("SC")
        flag_space = yield from ctx.new_space("SC")
        my_cols = [j for j in range(nb) if j % n_procs == nid]

        # Allocate own blocks + flag, seed blocks with A's values.
        for j in my_cols:
            shared["flag"][j] = yield from ctx.gmalloc(flag_space, 1)
            for i in _blocks_in_column(workload, j):
                rid = yield from ctx.gmalloc(blk_space, B * B)
                shared["blk"][(i, j)] = rid
        # Owners hold their column locks until the column is factored.
        for j in my_cols:
            yield from ctx.lock(shared["flag"][j])
        yield from ctx.barrier()
        yield from ctx.change_protocol(blk_space, plan["blocks"])

        handles = {}

        def get_handle(i, j):
            if (i, j) not in handles:
                handles[(i, j)] = yield from ctx.map(shared["blk"][(i, j)])
            return handles[(i, j)]

        # Seed own blocks.
        for j in my_cols:
            for i in _blocks_in_column(workload, j):
                h = yield from get_handle(i, j)
                yield from ctx.write_region(h, block_of(i, j).ravel())
        yield from ctx.barrier()

        out = {}
        for j in my_cols:
            # Accumulate the column in local scratch.
            col = {i: None for i in _blocks_in_column(workload, j)}
            for i in col:
                h = yield from get_handle(i, j)
                yield from ctx.start_read(h)
                col[i] = h.data.reshape(B, B).copy()
                yield from ctx.end_read(h)

            # Left-looking updates from finished columns k < j.
            for k in range(max(0, j - workload.band), j):
                yield from ctx.lock(shared["flag"][k])    # wait: column k done
                yield from ctx.unlock(shared["flag"][k])
                hjk = yield from get_handle(j, k)
                yield from ctx.start_read(hjk)
                ljk = hjk.data.reshape(B, B).copy()
                yield from ctx.end_read(hjk)
                for i in col:
                    if i - k > workload.band:
                        continue
                    hik = yield from get_handle(i, k)
                    yield from ctx.start_read(hik)
                    lik = hik.data.reshape(B, B).copy()
                    yield from ctx.end_read(hik)
                    col[i] -= lik @ ljk.T
                    yield from ctx.compute(FLOP_COST * 2 * B * B * B)

            # Factor the diagonal block, solve the sub-diagonal blocks.
            ljj = np.linalg.cholesky(col[j])
            yield from ctx.compute(FLOP_COST * B * B * B // 3)
            col[j] = ljj
            inv_t = np.linalg.inv(ljj).T
            for i in col:
                if i == j:
                    continue
                col[i] = col[i] @ inv_t
                yield from ctx.compute(FLOP_COST * B * B * B)

            # Publish the factored column, then release its lock.
            for i in col:
                h = yield from get_handle(i, j)
                yield from ctx.start_write(h)
                h.data[:] = col[i].ravel()
                yield from ctx.end_write(h)
                out[(i, j)] = col[i]
            yield from ctx.unlock(shared["flag"][j])

        yield from ctx.barrier()
        return out

    return program


def collect_results(run_result, workload: BSCWorkload) -> np.ndarray:
    """Assemble the distributed factor into a dense lower-triangular L."""
    B = workload.block
    n = workload.n
    L = np.zeros((n, n))
    for part in run_result.results:
        for (i, j), blk in part.items():
            L[i * B : (i + 1) * B, j * B : (j + 1) * B] = blk
    return np.tril(L)
