"""AceC sources for the five Table 4 kernels, in two styles each.

* ``*_source(wl)`` — source-level AceC: programs dereference ``shared``
  pointers directly; the compiler inserts and optimizes annotations
  (the paper's Figure 2/5 style).  Compiled at the four Table 4
  optimization levels.
* ``*_hand_source(wl)`` — runtime-level AceC: the Figure 4 style an
  experienced programmer writes — region handles mapped once into
  local tables before the computation loops, and only the protocol
  hooks that are *not* null for the chosen protocol invoked (the
  programmer knows the protocol; that is the entire point of
  application-specific protocols).

The kernels keep the paper's access patterns at reduced scale (see
DESIGN.md's substitution table):

=============  ================  =====================================
kernel         protocol          dominant compiler effect (Table 4)
EM3D           StaticUpdate      DC deletes null read hooks in the kernel
BSC            Null              LI hoists MAP/START/END from block loops
Water          PipelinedWrite    MC merges per-coordinate writes
Barnes-Hut     DynamicUpdate     MC merges per-field body reads/writes
TSP            Counter + Null    LI/MC on the read-only distance table
=============  ================  =====================================

Barnes-Hut's tree walk is distilled into per-body interaction lists
precomputed by the host from the real octree of the initial
configuration (``repro.apps.barnes_hut.build_tree``) — the shared-
memory traffic of the force phase is preserved while keeping the
kernel expressible in a few dozen lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from string import Template

import numpy as np

from repro.apps import barnes_hut as bh_mod
from repro.apps import em3d as em3d_mod


def _render(template: str, **subs) -> str:
    return Template(template).substitute({k: str(v) for k, v in subs.items()})


# =====================================================================
# EM3D
# =====================================================================
@dataclass(frozen=True)
class EM3DKernelWL:
    n: int = 24        # nodes per side
    degree: int = 3
    iters: int = 4
    seed: int = 7


def em3d_host_data(wl: EM3DKernelWL, n_procs: int) -> dict:
    emwl = em3d_mod.EM3DWorkload(
        n_e=wl.n, n_h=wl.n, degree=wl.degree, pct_remote=0.3, n_iters=wl.iters, seed=wl.seed
    )
    _, _, e_nbrs, h_nbrs, e_w, h_w, e0, h0 = em3d_mod.make_graph(emwl, n_procs)
    return {
        "e_nbr": np.concatenate(e_nbrs).astype(float),
        "h_nbr": np.concatenate(h_nbrs).astype(float),
        "e_w": np.concatenate(e_w),
        "h_w": np.concatenate(h_w),
        "e0": e0,
        "h0": h0,
    }


def em3d_reference(wl: EM3DKernelWL, n_procs: int):
    emwl = em3d_mod.EM3DWorkload(
        n_e=wl.n, n_h=wl.n, degree=wl.degree, pct_remote=0.3, n_iters=wl.iters, seed=wl.seed
    )
    return em3d_mod.reference(emwl, n_procs)


_EM3D_SETUP = """
    int P = num_procs();
    int me = my_proc();
    int se = ace_new_space("SC");
    int sh = ace_new_space("SC");
    shared double *p;
    for (int i = me; i < $N; i += P) { p = ace_gmalloc(se, 1); bb_put("e", i, p); }
    for (int i = me; i < $N; i += P) { p = ace_gmalloc(sh, 1); bb_put("h", i, p); }
    ace_barrier(se);
    ace_change_protocol(se, "StaticUpdate");
    ace_change_protocol(sh, "StaticUpdate");
"""


def em3d_source(wl: EM3DKernelWL) -> str:
    return _render(
        """
void main() {
"""
        + _EM3D_SETUP
        + """
    for (int i = me; i < $N; i += P) { p = bb_get("e", i); p[0] = host_data("e0", i); }
    for (int i = me; i < $N; i += P) { p = bb_get("h", i); p[0] = host_data("h0", i); }
    ace_barrier(se);
    ace_barrier(sh);
    for (int t = 0; t < $ITERS; t++) {
        for (int i = me; i < $N; i += P) {
            double acc = 0;
            for (int d = 0; d < $DEG; d++) {
                int j = host_data("e_nbr", i * $DEG + d);
                shared double *q;
                q = bb_get("h", j);
                acc += host_data("e_w", i * $DEG + d) * q[0];
            }
            work(20);
            p = bb_get("e", i);
            p[0] = acc;
        }
        ace_barrier(se);
        for (int i = me; i < $N; i += P) {
            double acc = 0;
            for (int d = 0; d < $DEG; d++) {
                int j = host_data("h_nbr", i * $DEG + d);
                shared double *q;
                q = bb_get("e", j);
                acc += host_data("h_w", i * $DEG + d) * q[0];
            }
            work(20);
            p = bb_get("h", i);
            p[0] = acc;
        }
        ace_barrier(sh);
    }
    for (int i = me; i < $N; i += P) {
        p = bb_get("e", i);
        bb_put("e_out", i, p[0]);
        p = bb_get("h", i);
        bb_put("h_out", i, p[0]);
    }
}
""",
        N=wl.n,
        DEG=wl.degree,
        ITERS=wl.iters,
    )


def em3d_hand_source(wl: EM3DKernelWL) -> str:
    """Runtime-level EM3D: handles mapped once before the main loop
    (§5.3's description of the hand version), null hooks omitted, and
    the StaticUpdate dirty-marking end_write kept."""
    return _render(
        """
void main() {
"""
        + _EM3D_SETUP
        + """
    // map exactly what this processor touches: its own nodes, and one
    // handle per incoming edge slot ("performs ACE_MAP calls on each
    // processor's data before entering the main computation loop", §5.3)
    mapped double *eh[$N];
    mapped double *hh[$N];
    mapped double *enb[$NDEG];
    mapped double *hnb[$NDEG];
    for (int i = me; i < $N; i += P) {
        eh[i] = ace_map(bb_get("e", i));
        hh[i] = ace_map(bb_get("h", i));
        for (int d = 0; d < $DEG; d++) {
            enb[i * $DEG + d] = ace_map(bb_get("h", host_data("e_nbr", i * $DEG + d)));
            hnb[i * $DEG + d] = ace_map(bb_get("e", host_data("h_nbr", i * $DEG + d)));
        }
    }
    mapped double *m;
    for (int i = me; i < $N; i += P) {
        m = eh[i]; m[0] = host_data("e0", i); ace_end_write(m);
        m = hh[i]; m[0] = host_data("h0", i); ace_end_write(m);
    }
    ace_barrier(se);
    ace_barrier(sh);
    for (int t = 0; t < $ITERS; t++) {
        for (int i = me; i < $N; i += P) {
            double acc = 0;
            for (int d = 0; d < $DEG; d++) {
                m = enb[i * $DEG + d];
                acc += host_data("e_w", i * $DEG + d) * m[0];
            }
            work(20);
            m = eh[i];
            m[0] = acc;
            ace_end_write(m);
        }
        ace_barrier(se);
        for (int i = me; i < $N; i += P) {
            double acc = 0;
            for (int d = 0; d < $DEG; d++) {
                m = hnb[i * $DEG + d];
                acc += host_data("h_w", i * $DEG + d) * m[0];
            }
            work(20);
            m = hh[i];
            m[0] = acc;
            ace_end_write(m);
        }
        ace_barrier(sh);
    }
    for (int i = me; i < $N; i += P) {
        m = eh[i];
        bb_put("e_out", i, m[0]);
        m = hh[i];
        bb_put("h_out", i, m[0]);
    }
}
""",
        N=wl.n,
        DEG=wl.degree,
        ITERS=wl.iters,
        NDEG=wl.n * wl.degree,
    )


# =====================================================================
# BSC (right-looking blocked Cholesky with a barrier per column)
# =====================================================================
@dataclass(frozen=True)
class BSCKernelWL:
    nb: int = 5      # block columns
    block: int = 3   # block size B
    band: int = 2    # block bandwidth
    seed: int = 31


def bsc_host_data(wl: BSCKernelWL) -> dict:
    from repro.apps import bsc as bsc_mod

    a = bsc_mod.make_matrix(
        bsc_mod.BSCWorkload(n_block_cols=wl.nb, block=wl.block, band=wl.band, seed=wl.seed)
    )
    return {"A": a.ravel()}


def bsc_reference(wl: BSCKernelWL) -> np.ndarray:
    from repro.apps import bsc as bsc_mod

    return bsc_mod.reference(
        bsc_mod.BSCWorkload(n_block_cols=wl.nb, block=wl.block, band=wl.band, seed=wl.seed)
    )


_BSC_SETUP = """
    int P = num_procs();
    int me = my_proc();
    int s = ace_new_space("SC");
    shared double *blk;
    for (int j = me; j < $NB; j += P) {
        int last = min($NB - 1, j + $BAND);
        for (int i = j; i <= last; i++) {
            blk = ace_gmalloc(s, $B * $B);
            bb_put("blk", i * $NB + j, blk);
        }
    }
    ace_barrier(s);
    ace_change_protocol(s, "Null");
"""


def bsc_source(wl: BSCKernelWL) -> str:
    n = wl.nb * wl.block
    return _render(
        """
void main() {
"""
        + _BSC_SETUP
        + """
    // seed own blocks from the host matrix (row-major $NTOT x $NTOT)
    for (int j = me; j < $NB; j += P) {
        int last = min($NB - 1, j + $BAND);
        for (int i = j; i <= last; i++) {
            blk = bb_get("blk", i * $NB + j);
            for (int a = 0; a < $B; a++) {
                for (int b = 0; b < $B; b++) {
                    blk[a * $B + b] = host_data("A", (i * $B + a) * $NTOT + (j * $B + b));
                }
            }
        }
    }
    ace_barrier(s);
    for (int k = 0; k < $NB; k++) {
        if (imod(k, P) == me) {
            // factor diagonal block (Cholesky-Crout)
            shared double *d;
            d = bb_get("blk", k * $NB + k);
            for (int a = 0; a < $B; a++) {
                double diag = d[a * $B + a];
                for (int c = 0; c < a; c++) { diag -= d[a * $B + c] * d[a * $B + c]; }
                diag = sqrt(diag);
                d[a * $B + a] = diag;
                for (int b = a + 1; b < $B; b++) {
                    double v = d[b * $B + a];
                    for (int c = 0; c < a; c++) { v -= d[b * $B + c] * d[a * $B + c]; }
                    d[b * $B + a] = v / diag;
                }
                for (int b = 0; b < a; b++) { d[b * $B + a] = 0; }
            }
            // triangular solve for sub-diagonal blocks: X * Ld^T = A
            int last = min($NB - 1, k + $BAND);
            for (int i = k + 1; i <= last; i++) {
                shared double *x;
                x = bb_get("blk", i * $NB + k);
                for (int a = 0; a < $B; a++) {
                    for (int b = 0; b < $B; b++) {
                        double v = x[a * $B + b];
                        for (int c = 0; c < b; c++) { v -= x[a * $B + c] * d[b * $B + c]; }
                        x[a * $B + b] = v / d[b * $B + b];
                    }
                }
            }
        }
        ace_barrier(s);
        // update own later columns with column k's blocks
        int lastj = min($NB - 1, k + $BAND);
        for (int j = k + 1; j <= lastj; j++) {
            if (imod(j, P) == me) {
                shared double *ljk;
                ljk = bb_get("blk", j * $NB + k);
                int lasti = min($NB - 1, k + $BAND);
                for (int i = j; i <= lasti; i++) {
                    shared double *lik;
                    lik = bb_get("blk", i * $NB + k);
                    shared double *aij;
                    aij = bb_get("blk", i * $NB + j);
                    for (int a = 0; a < $B; a++) {
                        for (int b = 0; b < $B; b++) {
                            double sum = 0;
                            for (int c = 0; c < $B; c++) {
                                sum += lik[a * $B + c] * ljk[b * $B + c];
                            }
                            work(4);
                            aij[a * $B + b] = aij[a * $B + b] - sum;
                        }
                    }
                }
            }
        }
        ace_barrier(s);
    }
}
""",
        NB=wl.nb,
        B=wl.block,
        BAND=wl.band,
        NTOT=n,
    )


def bsc_hand_source(wl: BSCKernelWL) -> str:
    """Runtime-level BSC: every block mapped once into a handle table;
    the Null protocol needs no hook calls at all."""
    n = wl.nb * wl.block
    return _render(
        """
void main() {
"""
        + _BSC_SETUP
        + """
    mapped double *hb[$NBSQ];
    mapped double *d;
    mapped double *x;
    mapped double *ljk;
    mapped double *lik;
    mapped double *aij;
    // own blocks mapped up front; cross-column blocks are mapped lazily
    // after the producing column's barrier (Null fetches at map time)
    for (int j = me; j < $NB; j += P) {
        int last = min($NB - 1, j + $BAND);
        for (int i = j; i <= last; i++) {
            hb[i * $NB + j] = ace_map(bb_get("blk", i * $NB + j));
        }
    }
    for (int j = me; j < $NB; j += P) {
        int last = min($NB - 1, j + $BAND);
        for (int i = j; i <= last; i++) {
            d = hb[i * $NB + j];
            for (int a = 0; a < $B; a++) {
                for (int b = 0; b < $B; b++) {
                    d[a * $B + b] = host_data("A", (i * $B + a) * $NTOT + (j * $B + b));
                }
            }
        }
    }
    ace_barrier(s);
    for (int k = 0; k < $NB; k++) {
        if (imod(k, P) == me) {
            d = hb[k * $NB + k];
            for (int a = 0; a < $B; a++) {
                double diag = d[a * $B + a];
                for (int c = 0; c < a; c++) { diag -= d[a * $B + c] * d[a * $B + c]; }
                diag = sqrt(diag);
                d[a * $B + a] = diag;
                for (int b = a + 1; b < $B; b++) {
                    double v = d[b * $B + a];
                    for (int c = 0; c < a; c++) { v -= d[b * $B + c] * d[a * $B + c]; }
                    d[b * $B + a] = v / diag;
                }
                for (int b = 0; b < a; b++) { d[b * $B + a] = 0; }
            }
            int last = min($NB - 1, k + $BAND);
            for (int i = k + 1; i <= last; i++) {
                x = hb[i * $NB + k];
                for (int a = 0; a < $B; a++) {
                    for (int b = 0; b < $B; b++) {
                        double v = x[a * $B + b];
                        for (int c = 0; c < b; c++) { v -= x[a * $B + c] * d[b * $B + c]; }
                        x[a * $B + b] = v / d[b * $B + b];
                    }
                }
            }
        }
        ace_barrier(s);
        int lastj = min($NB - 1, k + $BAND);
        for (int j = k + 1; j <= lastj; j++) {
            if (imod(j, P) == me) {
                ljk = ace_map(bb_get("blk", j * $NB + k));
                int lasti = min($NB - 1, k + $BAND);
                for (int i = j; i <= lasti; i++) {
                    lik = ace_map(bb_get("blk", i * $NB + k));
                    aij = hb[i * $NB + j];
                    for (int a = 0; a < $B; a++) {
                        for (int b = 0; b < $B; b++) {
                            double sum = 0;
                            for (int c = 0; c < $B; c++) {
                                sum += lik[a * $B + c] * ljk[b * $B + c];
                            }
                            work(4);
                            aij[a * $B + b] = aij[a * $B + b] - sum;
                        }
                    }
                }
            }
        }
        ace_barrier(s);
    }
}
""",
        NB=wl.nb,
        B=wl.block,
        BAND=wl.band,
        NTOT=n,
        NBSQ=wl.nb * wl.nb,
    )


def bsc_collect(run, wl: BSCKernelWL) -> np.ndarray:
    """Assemble L from the run's regions (lower triangle, within band)."""
    B = wl.block
    L = np.zeros((wl.nb * B, wl.nb * B))
    for j in range(wl.nb):
        for i in range(j, min(wl.nb, j + wl.band + 1)):
            rid = run.bb[("blk", i * wl.nb + j)]
            L[i * B : (i + 1) * B, j * B : (j + 1) * B] = run.region_data(rid).reshape(B, B)
    return np.tril(L)


# =====================================================================
# Water (inter-molecular force accumulation under PipelinedWrite)
# =====================================================================
@dataclass(frozen=True)
class WaterKernelWL:
    n: int = 10
    steps: int = 2
    seed: int = 12


def water_host_data(wl: WaterKernelWL) -> dict:
    rng = np.random.default_rng(wl.seed)
    pos = rng.uniform(0.0, 4.0, size=(wl.n, 3))
    return {"px": pos[:, 0], "py": pos[:, 1], "pz": pos[:, 2]}


def water_reference(wl: WaterKernelWL) -> np.ndarray:
    """Final [x,y,z,fx,fy,fz] per molecule (forces of the last step)."""
    data = water_host_data(wl)
    state = np.zeros((wl.n, 6))
    state[:, 0], state[:, 1], state[:, 2] = data["px"], data["py"], data["pz"]
    dt = 0.01
    for _ in range(wl.steps):
        state[:, 3:] = 0.0
        for i in range(wl.n):
            for j in range(i + 1, wl.n):
                d = state[i, :3] - state[j, :3]
                r2 = d @ d
                f = d / (r2 * r2 + 0.1)
                state[i, 3:] += f
                state[j, 3:] -= f
        state[:, :3] += dt * state[:, 3:]
    return state


_WATER_TEMPLATE = """
void main() {
    int P = num_procs();
    int me = my_proc();
    int s = ace_new_space("SC");
    shared double *p;
    for (int i = me; i < $N; i += P) {
        p = ace_gmalloc(s, 6);
        bb_put("mol", i, p);
    }
    ace_barrier(s);
    ace_change_protocol(s, "PipelinedWrite");
    $BODY
}
"""

_WATER_SRC_BODY = """
    for (int i = me; i < $N; i += P) {
        p = bb_get("mol", i);
        p[0] = host_data("px", i);
        p[1] = host_data("py", i);
        p[2] = host_data("pz", i);
    }
    ace_barrier(s);
    for (int t = 0; t < $STEPS; t++) {
        for (int i = me; i < $N; i += P) {
            p = bb_get("mol", i);
            p[3] = 0; p[4] = 0; p[5] = 0;
        }
        ace_barrier(s);
        for (int i = me; i < $N; i += P) {
            p = bb_get("mol", i);
            double xi = p[0]; double yi = p[1]; double zi = p[2];
            for (int j = i + 1; j < $N; j++) {
                shared double *q;
                q = bb_get("mol", j);
                double dx = xi - q[0];
                double dy = yi - q[1];
                double dz = zi - q[2];
                double r2 = dx * dx + dy * dy + dz * dz;
                double k = 1 / (r2 * r2 + 0.1);
                work(40);
                p[3] += dx * k; p[4] += dy * k; p[5] += dz * k;
                q[3] -= dx * k; q[4] -= dy * k; q[5] -= dz * k;
            }
        }
        ace_barrier(s);
        for (int i = me; i < $N; i += P) {
            p = bb_get("mol", i);
            p[0] += 0.01 * p[3];
            p[1] += 0.01 * p[4];
            p[2] += 0.01 * p[5];
        }
        ace_barrier(s);
    }
"""

_WATER_HAND_BODY = """
    mapped double *mh[$N];
    for (int i = 0; i < $N; i++) { mh[i] = ace_map(bb_get("mol", i)); }
    mapped double *m;
    mapped double *q;
    for (int i = me; i < $N; i += P) {
        m = mh[i];
        ace_start_write(m);
        m[0] = host_data("px", i);
        m[1] = host_data("py", i);
        m[2] = host_data("pz", i);
        ace_end_write(m);
    }
    ace_barrier(s);
    for (int t = 0; t < $STEPS; t++) {
        for (int i = me; i < $N; i += P) {
            m = mh[i];
            ace_start_write(m);
            m[3] = 0; m[4] = 0; m[5] = 0;
            ace_end_write(m);
        }
        ace_barrier(s);
        for (int i = me; i < $N; i += P) {
            m = mh[i];
            ace_start_read(m);
            double xi = m[0]; double yi = m[1]; double zi = m[2];
            ace_start_write(m);
            for (int j = i + 1; j < $N; j++) {
                q = mh[j];
                ace_start_read(q);
                double dx = xi - q[0];
                double dy = yi - q[1];
                double dz = zi - q[2];
                double r2 = dx * dx + dy * dy + dz * dz;
                double k = 1 / (r2 * r2 + 0.1);
                work(40);
                m[3] += dx * k; m[4] += dy * k; m[5] += dz * k;
                ace_start_write(q);
                q[3] -= dx * k; q[4] -= dy * k; q[5] -= dz * k;
                ace_end_write(q);
            }
            ace_end_write(m);
        }
        ace_barrier(s);
        for (int i = me; i < $N; i += P) {
            m = mh[i];
            ace_start_write(m);
            m[0] += 0.01 * m[3];
            m[1] += 0.01 * m[4];
            m[2] += 0.01 * m[5];
            ace_end_write(m);
        }
        ace_barrier(s);
    }
"""


def water_source(wl: WaterKernelWL) -> str:
    body = _render(_WATER_SRC_BODY, N=wl.n, STEPS=wl.steps)
    return _render(_WATER_TEMPLATE, N=wl.n, BODY=body)


def water_hand_source(wl: WaterKernelWL) -> str:
    body = _render(_WATER_HAND_BODY, N=wl.n, STEPS=wl.steps)
    return _render(_WATER_TEMPLATE, N=wl.n, BODY=body)


def water_collect(run, wl: WaterKernelWL) -> np.ndarray:
    state = np.zeros((wl.n, 6))
    for i in range(wl.n):
        state[i] = run.region_data(run.bb[("mol", i)])
    return state


# =====================================================================
# Barnes-Hut (interaction-list force kernel under DynamicUpdate)
# =====================================================================
@dataclass(frozen=True)
class BHKernelWL:
    n: int = 16
    steps: int = 2
    theta: float = 1.0
    eps: float = 0.5
    seed: int = 99


def bh_interactions(wl: BHKernelWL):
    """Per-body interaction partners from the real octree of step 0.

    Cell interactions are summarized as pseudo-bodies appended after
    the real ones: entry j < n is a body, j >= n indexes the pseudo
    list (mass + com from the tree walk).
    """
    bodies = bh_mod.init_bodies(
        bh_mod.BHWorkload(n_bodies=wl.n, theta=wl.theta, eps=wl.eps, seed=wl.seed)
    )
    pos = bodies[:, bh_mod.POS].copy()
    mass = bodies[:, bh_mod.MASS].copy()
    root = bh_mod.build_tree(pos, mass)
    lists = []
    pseudo = []  # (x, y, z, m)
    for i in range(wl.n):
        partners = []
        stack = [root]
        while stack:
            cell = stack.pop()
            if cell.mass == 0.0 or cell.body == i:
                continue
            d = cell.com - pos[i]
            r2 = float(d @ d) + wl.eps**2
            if cell.body is not None:
                partners.append(cell.body)
            elif (2.0 * cell.half) ** 2 < wl.theta**2 * r2:
                partners.append(wl.n + len(pseudo))
                pseudo.append((*cell.com, cell.mass))
            else:
                stack.extend(c for c in cell.children if c is not None)
        lists.append(partners)
    return bodies, lists, pseudo


def bh_host_data(wl: BHKernelWL) -> dict:
    bodies, lists, pseudo = bh_interactions(wl)
    flat = []
    offsets = [0]
    for partners in lists:
        flat.extend(partners)
        offsets.append(len(flat))
    pseudo_arr = np.array(pseudo, dtype=float).reshape(-1, 4)
    return {
        "x0": bodies[:, 0],
        "y0": bodies[:, 1],
        "z0": bodies[:, 2],
        "m0": bodies[:, bh_mod.MASS],
        "ilist": np.array(flat, dtype=float),
        "ioff": np.array(offsets, dtype=float),
        "qx": pseudo_arr[:, 0] if len(pseudo) else np.zeros(1),
        "qy": pseudo_arr[:, 1] if len(pseudo) else np.zeros(1),
        "qz": pseudo_arr[:, 2] if len(pseudo) else np.zeros(1),
        "qm": pseudo_arr[:, 3] if len(pseudo) else np.zeros(1),
    }


def bh_reference(wl: BHKernelWL) -> np.ndarray:
    """Final [x, y, z, m] per body with the frozen interaction lists."""
    bodies, lists, pseudo = bh_interactions(wl)
    state = bodies[:, [0, 1, 2, 6]].copy()  # x, y, z, m
    vel = np.zeros((wl.n, 3))
    dt = 0.05
    for _ in range(wl.steps):
        pos = state[:, :3].copy()
        forces = np.zeros((wl.n, 3))
        for i in range(wl.n):
            for j in lists[i]:
                if j < wl.n:
                    pj = pos[j]
                    mj = state[j, 3]
                else:
                    px, py, pz, mj = pseudo[j - wl.n]
                    pj = np.array([px, py, pz])
                d = pj - pos[i]
                r2 = d @ d + wl.eps**2
                forces[i] += mj * d / (r2 * np.sqrt(r2))
        vel += dt * forces
        state[:, :3] += dt * vel
    return state


_BH_TEMPLATE = """
void main() {
    int P = num_procs();
    int me = my_proc();
    int s = ace_new_space("SC");
    shared double *p;
    for (int i = me; i < $N; i += P) {
        p = ace_gmalloc(s, 4);
        bb_put("body", i, p);
    }
    ace_barrier(s);
    ace_change_protocol(s, "DynamicUpdate");
    $BODY
}
"""

_BH_SRC_BODY = """
    double vx[$N]; double vy[$N]; double vz[$N];
    for (int i = me; i < $N; i += P) {
        p = bb_get("body", i);
        p[0] = host_data("x0", i);
        p[1] = host_data("y0", i);
        p[2] = host_data("z0", i);
        p[3] = host_data("m0", i);
    }
    ace_barrier(s);
    for (int t = 0; t < $STEPS; t++) {
        for (int i = me; i < $N; i += P) {
            p = bb_get("body", i);
            double xi = p[0]; double yi = p[1]; double zi = p[2];
            double fx = 0; double fy = 0; double fz = 0;
            int lo = host_data("ioff", i);
            int hi = host_data("ioff", i + 1);
            for (int e = lo; e < hi; e++) {
                int j = host_data("ilist", e);
                double pxj = 0; double pyj = 0; double pzj = 0; double mj = 0;
                if (j < $N) {
                    shared double *q;
                    q = bb_get("body", j);
                    pxj = q[0]; pyj = q[1]; pzj = q[2]; mj = q[3];
                } else {
                    pxj = host_data("qx", j - $N);
                    pyj = host_data("qy", j - $N);
                    pzj = host_data("qz", j - $N);
                    mj = host_data("qm", j - $N);
                }
                double dx = pxj - xi; double dy = pyj - yi; double dz = pzj - zi;
                double r2 = dx * dx + dy * dy + dz * dz + $EPS2;
                double k = mj / (r2 * sqrt(r2));
                work(30);
                fx += dx * k; fy += dy * k; fz += dz * k;
            }
            vx[i] += $DT * fx; vy[i] += $DT * fy; vz[i] += $DT * fz;
        }
        ace_barrier(s);
        for (int i = me; i < $N; i += P) {
            p = bb_get("body", i);
            p[0] += $DT * vx[i];
            p[1] += $DT * vy[i];
            p[2] += $DT * vz[i];
        }
        ace_barrier(s);
    }
"""

_BH_HAND_BODY = """
    double vx[$N]; double vy[$N]; double vz[$N];
    mapped double *hb[$N];
    for (int i = 0; i < $N; i++) { hb[i] = ace_map(bb_get("body", i)); }
    mapped double *m;
    mapped double *q;
    for (int i = me; i < $N; i += P) {
        m = hb[i];
        m[0] = host_data("x0", i);
        m[1] = host_data("y0", i);
        m[2] = host_data("z0", i);
        m[3] = host_data("m0", i);
        ace_end_write(m);
    }
    ace_barrier(s);
    for (int t = 0; t < $STEPS; t++) {
        for (int i = me; i < $N; i += P) {
            m = hb[i];
            double xi = m[0]; double yi = m[1]; double zi = m[2];
            double fx = 0; double fy = 0; double fz = 0;
            int lo = host_data("ioff", i);
            int hi = host_data("ioff", i + 1);
            for (int e = lo; e < hi; e++) {
                int j = host_data("ilist", e);
                double pxj = 0; double pyj = 0; double pzj = 0; double mj = 0;
                if (j < $N) {
                    q = hb[j];
                    pxj = q[0]; pyj = q[1]; pzj = q[2]; mj = q[3];
                } else {
                    pxj = host_data("qx", j - $N);
                    pyj = host_data("qy", j - $N);
                    pzj = host_data("qz", j - $N);
                    mj = host_data("qm", j - $N);
                }
                double dx = pxj - xi; double dy = pyj - yi; double dz = pzj - zi;
                double r2 = dx * dx + dy * dy + dz * dz + $EPS2;
                double k = mj / (r2 * sqrt(r2));
                work(30);
                fx += dx * k; fy += dy * k; fz += dz * k;
            }
            vx[i] += $DT * fx; vy[i] += $DT * fy; vz[i] += $DT * fz;
        }
        ace_barrier(s);
        for (int i = me; i < $N; i += P) {
            m = hb[i];
            m[0] += $DT * vx[i];
            m[1] += $DT * vy[i];
            m[2] += $DT * vz[i];
            ace_end_write(m);
        }
        ace_barrier(s);
    }
"""


def bh_source(wl: BHKernelWL) -> str:
    body = _render(_BH_SRC_BODY, N=wl.n, STEPS=wl.steps, DT=0.05, EPS2=wl.eps**2)
    return _render(_BH_TEMPLATE, N=wl.n, BODY=body)


def bh_hand_source(wl: BHKernelWL) -> str:
    body = _render(_BH_HAND_BODY, N=wl.n, STEPS=wl.steps, DT=0.05, EPS2=wl.eps**2)
    return _render(_BH_TEMPLATE, N=wl.n, BODY=body)


def bh_collect(run, wl: BHKernelWL) -> np.ndarray:
    state = np.zeros((wl.n, 4))
    for i in range(wl.n):
        state[i] = run.region_data(run.bb[("body", i)])
    return state


# =====================================================================
# TSP (branch and bound with a Counter-protocol job counter)
# =====================================================================
@dataclass(frozen=True)
class TSPKernelWL:
    n_cities: int = 6
    seed: int = 5

    @property
    def n_jobs(self) -> int:
        return self.n_cities - 1  # one job per first-hop city


def tsp_host_data(wl: TSPKernelWL) -> dict:
    from repro.apps import tsp as tsp_mod

    d = tsp_mod.make_distances(tsp_mod.TSPWorkload(n_cities=wl.n_cities, seed=wl.seed))
    return {"D": d.ravel()}


def tsp_reference(wl: TSPKernelWL) -> float:
    from repro.apps import tsp as tsp_mod

    return tsp_mod.reference(tsp_mod.TSPWorkload(n_cities=wl.n_cities, seed=wl.seed))


_TSP_TEMPLATE = """
double solve(shared double *dist, int first, double bound) {
    // iterative DFS over permutations with 'first' fixed after city 0
    int path[$NC];
    int used[$NC];
    double cost[$NC];
    int next[$NC];
    int depth = 1;
    double best = bound;
    for (int i = 0; i < $NC; i++) { used[i] = 0; path[i] = 0; next[i] = 0; }
    used[0] = 1;
    used[first] = 1;
    path[1] = first;
    cost[1] = $DREF0;
    while (depth >= 1) {
        work(40);
        if (depth == $NC - 1) {
            double total = cost[depth] + $DREFBACK;
            if (total < best) { best = total; }
            used[path[depth]] = 0;
            depth -= 1;
            continue;
        }
        int c = next[depth];
        if (c >= $NC) {
            if (depth > 1) { used[path[depth]] = 0; }
            depth -= 1;
            continue;
        }
        next[depth] = c + 1;
        if (used[c] == 0) {
            double ncost = cost[depth] + $DREFSTEP;
            if (ncost < best) {
                depth += 1;
                path[depth] = c;
                cost[depth] = ncost;
                used[c] = 1;
                next[depth] = 0;
            }
        }
    }
    return best;
}
"""


def tsp_source(wl: TSPKernelWL, hand: bool = False) -> str:
    """TSP kernel.  ``hand=True`` hoists the distance-table handle.

    The DFS is shared between the two variants; only how the distance
    table is accessed differs (shared derefs vs one hoisted mapped
    handle), plus the counter/best access sequences.
    """
    nc = wl.n_cities
    if hand:
        dref0 = "dh[0 * $NC + first]"
        drefstep = "dh[path[depth] * $NC + c]"
        drefback = "dh[path[depth] * $NC + 0]"
        solve_sig = "double solve(mapped double *dh, int first, double bound) {"
    else:
        dref0 = "dist[0 * $NC + first]"
        drefstep = "dist[path[depth] * $NC + c]"
        drefback = "dist[path[depth] * $NC + 0]"
        solve_sig = "double solve(shared double *dist, int first, double bound) {"
    solve = _TSP_TEMPLATE.replace(
        "double solve(shared double *dist, int first, double bound) {", solve_sig
    )
    solve = (
        solve.replace("$DREF0", dref0)
        .replace("$DREFSTEP", drefstep)
        .replace("$DREFBACK", drefback)
    )
    # fix the 'used' bookkeeping line: restore on pop
    solve = solve.replace(
        "used[path[depth]] = 0 + used[path[depth]]; // keep used; fixed below",
        "if (depth > 1) { used[path[depth]] = 0; }",
    )

    main_common = """
void main() {
    int P = num_procs();
    int me = my_proc();
    int sd = ace_new_space("SC");
    int sc = ace_new_space("SC");
    int sb = ace_new_space("SC");
    shared double *dist;
    shared double *counter;
    shared double *best;
    if (me == 0) {
        dist = ace_gmalloc(sd, $NC2);
        for (int i = 0; i < $NC2; i++) { dist[i] = host_data("D", i); }
        counter = ace_gmalloc(sc, 1);
        best = ace_gmalloc(sb, 1);
        best[0] = inf();
        bb_put("dist", 0, dist);
        bb_put("counter", 0, counter);
        bb_put("best", 0, best);
    }
    ace_barrier(sd);
    ace_change_protocol(sd, "Null");
    ace_change_protocol(sc, "Counter");
    dist = bb_get("dist", 0);
    counter = bb_get("counter", 0);
    best = bb_get("best", 0);
"""
    if hand:
        main_common += """
    mapped double *dh;
    dh = ace_map(dist);
    mapped double *ch;
    ch = ace_map(counter);
    mapped double *bh;
    bh = ace_map(best);
    while (1) {
        ace_start_write(ch);
        int job = ch[0];
        ch[0] = job + 1;
        ace_end_write(ch);
        if (job >= $NJOBS) { break; }
        ace_start_read(bh);
        double incumbent = bh[0];
        ace_end_read(bh);
        double found = solve(dh, job + 1, incumbent);
        if (found < incumbent) {
            ace_start_write(bh);
            if (found < bh[0]) { bh[0] = found; }
            ace_end_write(bh);
        }
    }
    ace_barrier(sb);
    if (me == 0) {
        ace_start_read(bh);
        bb_put("result", 0, bh[0]);
        ace_end_read(bh);
    }
}
"""
    else:
        # Portable source-level code: the compiler cannot assume the
        # Counter protocol's start_write RMW semantics, so the job grab
        # uses the lock idiom; the hand version drops it because the
        # programmer knows the protocol — exactly §5.2's TSP story.
        main_common += """
    while (1) {
        ace_lock(counter);
        int job = counter[0];
        counter[0] = job + 1;
        ace_unlock(counter);
        if (job >= $NJOBS) { break; }
        double incumbent = best[0];
        double found = solve(dist, job + 1, incumbent);
        if (found < incumbent) {
            ace_lock(best);
            if (found < best[0]) { best[0] = found; }
            ace_unlock(best);
        }
    }
    ace_barrier(sb);
    if (me == 0) { bb_put("result", 0, best[0]); }
}
"""
    src = solve + main_common
    return _render(src, NC=nc, NC2=nc * nc, NJOBS=wl.n_jobs)
