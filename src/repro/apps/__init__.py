"""The paper's five benchmarks (Table 3), written once against the facade.

Every application follows the same pattern:

* a ``*Workload`` dataclass with the paper's canonical inputs available
  as a classmethod (``.paper()``) and scaled-down defaults for tests
  and benches (the substrate is a pure-Python simulator; DESIGN.md
  documents the scaling substitution);
* a deterministic workload generator (NumPy, seeded);
* ``<app>_program(workload, plan)`` returning an SPMD program for
  :func:`repro.facade.run_spmd`, where ``plan`` selects the protocol(s)
  — ``SC_PLAN`` reproduces the baseline rows, ``CUSTOM_PLAN`` the
  application-specific-protocol rows of Figure 7b;
* a NumPy reference implementation used by the tests to check that
  every backend × plan combination computes the same answer.
"""

from repro.apps import barnes_hut, bsc, em3d, tsp, water

__all__ = ["barnes_hut", "bsc", "em3d", "tsp", "water"]
