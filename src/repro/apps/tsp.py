"""TSP: branch-and-bound traveling salesman (Table 3: 12 cities).

Work distribution follows the classic CRL/SPLASH shape: tours start at
city 0; a *job* fixes the next ``prefix_depth`` cities; a shared
counter assigns job indices to processors; a shared ``best`` region
holds the incumbent tour length used for pruning.

Figure 7b's TSP row comes from "better management of accesses to a
counter that is used to assign jobs" (§5.2): the custom plan puts the
counter's space under the :class:`~repro.protocols.counter.CounterProtocol`
(one round trip per fetch-and-increment, no ownership migration),
while the SC plan pays a full exclusive-ownership transfer per job
grab.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import permutations

import numpy as np

INF = 1e18


@dataclass(frozen=True)
class TSPWorkload:
    """Inputs matching Table 3's TSP row (scaled by default)."""

    n_cities: int = 8
    prefix_depth: int = 2
    seed: int = 42
    bound_refresh: int = 16  # expansions between incumbent refreshes

    @classmethod
    def paper(cls) -> "TSPWorkload":
        """Table 3: 12 cities."""
        return cls(n_cities=12, prefix_depth=3)

    @property
    def n_jobs(self) -> int:
        n = self.n_cities - 1
        return math.perm(n, self.prefix_depth)


SC_PLAN = {"counter": "SC", "best": "SC"}
CUSTOM_PLAN = {"counter": "Counter", "best": "SC"}

#: cycles charged per search-tree node expansion
COST_PER_EXPANSION = 40


def make_distances(workload: TSPWorkload) -> np.ndarray:
    """Deterministic symmetric distance matrix with zero diagonal."""
    rng = np.random.default_rng(workload.seed)
    n = workload.n_cities
    d = rng.integers(1, 100, size=(n, n)).astype(np.float64)
    d = (d + d.T) / 2.0
    np.fill_diagonal(d, 0.0)
    return d


def decode_job(workload: TSPWorkload, job: int) -> list[int]:
    """Unrank job index → the cities visited after city 0 (prefix)."""
    avail = list(range(1, workload.n_cities))
    prefix = []
    for level in range(workload.prefix_depth):
        block = math.perm(len(avail) - 1, workload.prefix_depth - level - 1)
        idx, job = divmod(job, block)
        prefix.append(avail.pop(idx))
    return prefix


def reference(workload: TSPWorkload) -> float:
    """Exact optimum by brute force (feasible for the scaled inputs)."""
    d = make_distances(workload)
    n = workload.n_cities
    best = INF
    for perm in permutations(range(1, n)):
        tour = (0, *perm, 0)
        length = sum(d[tour[i], tour[i + 1]] for i in range(n))
        best = min(best, length)
    return best


def _solve_job(d: np.ndarray, prefix: list[int], bound: float):
    """Sequential DFS under ``bound``; returns (best_len, best_tour, expansions)."""
    n = d.shape[0]
    # Work on plain nested lists: ``d[i, j]`` materializes a numpy
    # scalar per probe, which dominates the search loop.  ``tolist``
    # preserves the exact float values, so the search (and therefore
    # the expansion count the cycle costs are charged from) is
    # unchanged.
    dl = d.tolist()
    best_len = bound
    best_tour = None
    expansions = 0
    row0 = dl[0]
    prefix_cost = row0[prefix[0]] + sum(
        dl[prefix[i]][prefix[i + 1]] for i in range(len(prefix) - 1)
    )
    remaining0 = [c for c in range(1, n) if c not in prefix]

    stack = [(prefix[-1], prefix_cost, list(prefix), remaining0)]
    while stack:
        city, cost, path, remaining = stack.pop()
        expansions += 1
        if cost >= best_len:
            continue
        row = dl[city]
        if not remaining:
            total = cost + row[0]
            if total < best_len:
                best_len = total
                best_tour = [0, *path]
            continue
        # visit nearest-first so good tours are found early
        order = sorted(remaining, key=row.__getitem__, reverse=True)
        for nxt in order:
            nxt_cost = cost + row[nxt]
            if nxt_cost < best_len:
                stack.append((nxt, nxt_cost, path + [nxt], [c for c in remaining if c != nxt]))
    return best_len, best_tour, expansions


def tsp_program(workload: TSPWorkload, plan: dict):
    """Build the SPMD program.  Each node returns (best_seen, jobs_done)."""
    shared = {}
    d = make_distances(workload)

    def program(ctx):
        nid = ctx.nid
        counter_space = yield from ctx.new_space("SC")
        best_space = yield from ctx.new_space("SC")
        if nid == 0:
            shared["counter"] = yield from ctx.gmalloc(counter_space, 1)
            shared["best"] = yield from ctx.gmalloc(best_space, 1)
            h = yield from ctx.map(shared["best"])
            yield from ctx.write_region(h, [INF])
        yield from ctx.barrier()
        yield from ctx.change_protocol(counter_space, plan["counter"])
        yield from ctx.change_protocol(best_space, plan["best"])

        counter_h = yield from ctx.map(shared["counter"])
        best_h = yield from ctx.map(shared["best"])
        jobs_done = 0
        local_best = INF

        while True:
            # fetch-and-increment the job counter
            yield from ctx.start_write(counter_h)
            job = int(counter_h.data[0])
            counter_h.data[0] = job + 1
            yield from ctx.end_write(counter_h)
            if job >= workload.n_jobs:
                break
            jobs_done += 1

            # refresh the incumbent
            yield from ctx.start_read(best_h)
            incumbent = best_h.data[0]
            yield from ctx.end_read(best_h)

            prefix = decode_job(workload, job)
            best_len, tour, expansions = _solve_job(d, prefix, incumbent)
            yield from ctx.compute(COST_PER_EXPANSION * expansions)

            if tour is not None and best_len < incumbent:
                # publish the improvement (double-check under exclusivity)
                yield from ctx.start_write(best_h)
                if best_len < best_h.data[0]:
                    best_h.data[0] = best_len
                yield from ctx.end_write(best_h)
                local_best = min(local_best, best_len)

        yield from ctx.barrier()
        data = yield from ctx.read_region(best_h)
        return (data[0], jobs_done)

    return program
