"""Barnes-Hut: hierarchical O(N log N) N-body (Table 3: 16,384 bodies).

The sharing pattern that matters for the paper: every body is a region
owned (homed) by one processor; each step every processor needs *all*
body positions (to build its octree replica) and writes only its own
bodies.  Under the SC default each remote body read is a blocking miss
after the owner's write invalidated it — N×(P−1) round trips per step.
The custom plan (Figure 7b) runs bodies under ``DynamicUpdate``:
owners' writes are pushed to all sharers, so the read sweep is
entirely local.

Tree build is replicated (each processor builds a local octree from
the shared positions — local memory, charged as compute), the standard
structure for DSM N-body codes with update protocols.

Each body is one region: ``[x, y, z, vx, vy, vz, mass]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

BODY_WORDS = 7
POS, VEL, MASS = slice(0, 3), slice(3, 6), 6


@dataclass(frozen=True)
class BHWorkload:
    """Inputs matching Table 3's Barnes-Hut row (scaled by default)."""

    n_bodies: int = 64
    n_steps: int = 2
    theta: float = 1.0  # opening angle (paper: tolerance = 1.0)
    dt: float = 0.05
    eps: float = 0.5    # softening (paper: eps = 0.5)
    seed: int = 99

    @classmethod
    def paper(cls) -> "BHWorkload":
        """Table 3: 16,384 bodies, 4 time-steps, tol=1.0, eps=0.5."""
        return cls(n_bodies=16384, n_steps=4)


SC_PLAN = {"bodies": "SC"}
CUSTOM_PLAN = {"bodies": "DynamicUpdate"}

COST_PER_INTERACTION = 30   # one body-cell or body-body force evaluation
COST_TREE_PER_BODY = 50     # tree insertion per body (replicated build)


def init_bodies(workload: BHWorkload) -> np.ndarray:
    """Deterministic Plummer-ish cluster, shape (n, BODY_WORDS)."""
    rng = np.random.default_rng(workload.seed)
    n = workload.n_bodies
    bodies = np.zeros((n, BODY_WORDS))
    bodies[:, POS] = rng.normal(0.0, 1.0, size=(n, 3))
    bodies[:, VEL] = rng.normal(0.0, 0.05, size=(n, 3))
    bodies[:, MASS] = rng.uniform(0.5, 1.5, size=n)
    return bodies


# ----------------------------------------------------------------- octree
class _Cell:
    """Internal octree cell: center of mass, total mass, children."""

    __slots__ = ("center", "half", "com", "mass", "children", "body")

    def __init__(self, center, half):
        self.center = center
        self.half = half
        self.com = np.zeros(3)
        self.mass = 0.0
        self.children: list | None = None
        self.body: int | None = None  # leaf body index


def build_tree(pos: np.ndarray, mass: np.ndarray) -> _Cell:
    """Build an octree over all bodies (positions (n,3), masses (n,))."""
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    center = (lo + hi) / 2.0
    half = float(max((hi - lo).max() / 2.0, 1e-9)) * 1.0001
    root = _Cell(center, half)
    for i in range(pos.shape[0]):
        _insert(root, i, pos, mass)
    _summarize(root, pos, mass)
    return root


def _child_index(cell: _Cell, p) -> int:
    return int(p[0] > cell.center[0]) | (int(p[1] > cell.center[1]) << 1) | (
        int(p[2] > cell.center[2]) << 2
    )


def _insert(cell: _Cell, i: int, pos, mass, depth: int = 0) -> None:
    if cell.children is None and cell.body is None:
        cell.body = i
        return
    if cell.children is None:
        old = cell.body
        cell.body = None
        cell.children = [None] * 8
        _insert_into_child(cell, old, pos, mass, depth)
    _insert_into_child(cell, i, pos, mass, depth)


def _insert_into_child(cell: _Cell, i: int, pos, mass, depth: int) -> None:
    if depth > 64:  # coincident points: merge into this leaf chain
        idx = 0
    else:
        idx = _child_index(cell, pos[i])
    child = cell.children[idx]
    if child is None:
        q = cell.half / 2.0
        offs = np.array([q if (idx >> b) & 1 else -q for b in range(3)])
        child = _Cell(cell.center + offs, q)
        cell.children[idx] = child
    _insert(child, i, pos, mass, depth + 1)


def _summarize(cell: _Cell, pos, mass) -> None:
    if cell.body is not None:
        cell.mass = float(mass[cell.body])
        cell.com = pos[cell.body].copy()
        return
    total = 0.0
    com = np.zeros(3)
    for child in cell.children or ():
        if child is None:
            continue
        _summarize(child, pos, mass)
        total += child.mass
        com += child.mass * child.com
    cell.mass = total
    cell.com = com / total if total > 0 else cell.center.copy()


def compute_force(root: _Cell, i: int, pos, theta: float, eps: float):
    """Barnes-Hut force on body i; returns (force_vec, n_interactions)."""
    p = pos[i]
    force = np.zeros(3)
    count = 0
    stack = [root]
    while stack:
        cell = stack.pop()
        if cell.mass == 0.0:
            continue
        if cell.body == i:
            continue
        d = cell.com - p
        r2 = float(d @ d) + eps * eps
        if cell.body is not None or (2.0 * cell.half) ** 2 < theta * theta * r2:
            count += 1
            force += cell.mass * d / (r2 * np.sqrt(r2))
        else:
            stack.extend(c for c in cell.children if c is not None)
    return force, count


def reference(workload: BHWorkload) -> np.ndarray:
    """Sequential reference: final body states after n_steps."""
    bodies = init_bodies(workload)
    n = workload.n_bodies
    for _ in range(workload.n_steps):
        pos = bodies[:, POS].copy()
        mass = bodies[:, MASS].copy()
        root = build_tree(pos, mass)
        forces = np.zeros((n, 3))
        for i in range(n):
            forces[i], _ = compute_force(root, i, pos, workload.theta, workload.eps)
        bodies[:, VEL] += workload.dt * forces
        bodies[:, POS] += workload.dt * bodies[:, VEL]
    return bodies


def bh_program(workload: BHWorkload, plan: dict):
    """Build the SPMD program.  Each node returns {body_index: state_row}."""
    shared = {"rids": {}}
    init = init_bodies(workload)
    n = workload.n_bodies

    def program(ctx):
        nid, n_procs = ctx.nid, ctx.n_procs
        body_space = yield from ctx.new_space("SC")
        my_bodies = [i for i in range(n) if i % n_procs == nid]
        for i in my_bodies:
            rid = yield from ctx.gmalloc(body_space, BODY_WORDS)
            shared["rids"][i] = rid
        yield from ctx.barrier()
        yield from ctx.change_protocol(body_space, plan["bodies"])

        handles = {}
        for i in range(n):
            handles[i] = yield from ctx.map(shared["rids"][i])
        for i in my_bodies:
            yield from ctx.write_region(handles[i], init[i])
        yield from ctx.barrier(body_space)

        for _ in range(workload.n_steps):
            # read the entire body set (tree build input)
            pos = np.zeros((n, 3))
            mass = np.zeros(n)
            for i in range(n):
                h = handles[i]
                yield from ctx.start_read(h)
                pos[i] = h.data[POS]
                mass[i] = h.data[MASS]
                yield from ctx.end_read(h)
            # replicated local tree build
            yield from ctx.compute(COST_TREE_PER_BODY * n)
            root = build_tree(pos, mass)
            # forces + integration for own bodies
            for i in my_bodies:
                force, cnt = compute_force(root, i, pos, workload.theta, workload.eps)
                yield from ctx.compute(COST_PER_INTERACTION * cnt)
                h = handles[i]
                yield from ctx.start_write(h)
                h.data[VEL] += workload.dt * force
                h.data[POS] += workload.dt * h.data[VEL]
                yield from ctx.end_write(h)
            yield from ctx.barrier(body_space)

        out = {}
        for i in my_bodies:
            data = yield from ctx.read_region(handles[i])
            out[i] = np.array(data)
        return out

    return program


def collect_results(run_result, workload: BHWorkload) -> np.ndarray:
    """Merge per-node returns into the (n, BODY_WORDS) state array."""
    state = np.zeros((workload.n_bodies, BODY_WORDS))
    for part in run_result.results:
        for i, row in part.items():
            state[i] = row
    return state
