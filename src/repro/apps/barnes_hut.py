"""Barnes-Hut: hierarchical O(N log N) N-body (Table 3: 16,384 bodies).

The sharing pattern that matters for the paper: every body is a region
owned (homed) by one processor; each step every processor needs *all*
body positions (to build its octree replica) and writes only its own
bodies.  Under the SC default each remote body read is a blocking miss
after the owner's write invalidated it — N×(P−1) round trips per step.
The custom plan (Figure 7b) runs bodies under ``DynamicUpdate``:
owners' writes are pushed to all sharers, so the read sweep is
entirely local.

Tree build is replicated (each processor builds a local octree from
the shared positions — local memory, charged as compute), the standard
structure for DSM N-body codes with update protocols.

Each body is one region: ``[x, y, z, vx, vy, vz, mass]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

BODY_WORDS = 7
POS, VEL, MASS = slice(0, 3), slice(3, 6), 6


@dataclass(frozen=True)
class BHWorkload:
    """Inputs matching Table 3's Barnes-Hut row (scaled by default)."""

    n_bodies: int = 64
    n_steps: int = 2
    theta: float = 1.0  # opening angle (paper: tolerance = 1.0)
    dt: float = 0.05
    eps: float = 0.5    # softening (paper: eps = 0.5)
    seed: int = 99

    @classmethod
    def paper(cls) -> "BHWorkload":
        """Table 3: 16,384 bodies, 4 time-steps, tol=1.0, eps=0.5."""
        return cls(n_bodies=16384, n_steps=4)


SC_PLAN = {"bodies": "SC"}
CUSTOM_PLAN = {"bodies": "DynamicUpdate"}

COST_PER_INTERACTION = 30   # one body-cell or body-body force evaluation
COST_TREE_PER_BODY = 50     # tree insertion per body (replicated build)


def init_bodies(workload: BHWorkload) -> np.ndarray:
    """Deterministic Plummer-ish cluster, shape (n, BODY_WORDS)."""
    rng = np.random.default_rng(workload.seed)
    n = workload.n_bodies
    bodies = np.zeros((n, BODY_WORDS))
    bodies[:, POS] = rng.normal(0.0, 1.0, size=(n, 3))
    bodies[:, VEL] = rng.normal(0.0, 0.05, size=(n, 3))
    bodies[:, MASS] = rng.uniform(0.5, 1.5, size=n)
    return bodies


# ----------------------------------------------------------------- octree
class _Cell:
    """Internal octree cell: center of mass, total mass, children.

    ``center`` is a plain ``(x, y, z)`` float tuple — it is only used
    for insertion comparisons and child placement, where scalar floats
    compare and add exactly like the numpy vectors they replaced.
    ``com`` stays a numpy array: :func:`compute_force` needs vector
    arithmetic (and its BLAS dot product) on it.
    """

    __slots__ = ("center", "half", "com", "mass", "children", "body")

    def __init__(self, center, half):
        self.center = center
        self.half = half
        self.com = None
        self.mass = 0.0
        self.children: list | None = None
        self.body: int | None = None  # leaf body index


def build_tree(pos: np.ndarray, mass: np.ndarray) -> _Cell:
    """Build an octree over all bodies (positions (n,3), masses (n,))."""
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    center = tuple(((lo + hi) / 2.0).tolist())
    half = float(max((hi - lo).max() / 2.0, 1e-9)) * 1.0001
    root = _Cell(center, half)
    # Insertion runs on a plain nested list: per-element indexing of a
    # numpy row materializes a numpy scalar per comparison, which
    # dominates the build.  ``tolist`` keeps the exact float values,
    # so every comparison (and therefore the tree shape) is unchanged.
    pts = pos.tolist()
    for i in range(pos.shape[0]):
        _insert(root, i, pts)
    _summarize(root, pts, mass.tolist())
    return root


def _insert(cell: _Cell, i: int, pts, depth: int = 0) -> None:
    if cell.children is None and cell.body is None:
        cell.body = i
        return
    if cell.children is None:
        old = cell.body
        cell.body = None
        cell.children = [None] * 8
        _insert_into_child(cell, old, pts, depth)
    _insert_into_child(cell, i, pts, depth)


def _insert_into_child(cell: _Cell, i: int, pts, depth: int) -> None:
    if depth > 64:  # coincident points: merge into this leaf chain
        idx = 0
    else:
        p = pts[i]
        cx, cy, cz = cell.center
        idx = (p[0] > cx) | ((p[1] > cy) << 1) | ((p[2] > cz) << 2)
    child = cell.children[idx]
    if child is None:
        q = cell.half / 2.0
        cx, cy, cz = cell.center
        child = _Cell(
            (
                cx + (q if idx & 1 else -q),
                cy + (q if idx & 2 else -q),
                cz + (q if idx & 4 else -q),
            ),
            q,
        )
        cell.children[idx] = child
    _insert(child, i, pts, depth + 1)


def _summarize(cell: _Cell, pts, masses) -> None:
    if cell.body is not None:
        cell.mass = masses[cell.body]
        cell.com = np.array(pts[cell.body])
        return
    total = 0.0
    comx = comy = comz = 0.0
    for child in cell.children or ():
        if child is None:
            continue
        _summarize(child, pts, masses)
        m = child.mass
        total += m
        ccx, ccy, ccz = child.com.tolist()
        comx += m * ccx
        comy += m * ccy
        comz += m * ccz
    cell.mass = total
    if total > 0:
        cell.com = np.array([comx / total, comy / total, comz / total])
    else:
        cell.com = np.array(cell.center)


def compute_force(root: _Cell, i: int, pos, theta: float, eps: float):
    """Barnes-Hut force on body i; returns (force_vec, n_interactions)."""
    # The force accumulation is scalar component math instead of
    # 3-vector numpy ops: each numpy call costs far more than the
    # arithmetic at this size, and per-component operations are
    # IEEE-identical to their element-wise counterparts.  The opening
    # criterion keeps the numpy dot product — BLAS may contract it
    # with FMA, which plain Python arithmetic cannot reproduce
    # bit-for-bit, and the interaction count (hence the simulated
    # cycle charges) must not move.
    p = pos[i]
    fx = fy = fz = 0.0
    ee = eps * eps
    tt = theta * theta
    count = 0
    stack = [root]
    sqrt = math.sqrt
    while stack:
        cell = stack.pop()
        mass = float(cell.mass)
        if mass == 0.0:
            continue
        if cell.body == i:
            continue
        d = cell.com - p
        r2 = float(d @ d) + ee
        if cell.body is not None or (2.0 * cell.half) ** 2 < tt * r2:
            count += 1
            dx, dy, dz = d.tolist()
            denom = r2 * sqrt(r2)
            fx += (mass * dx) / denom
            fy += (mass * dy) / denom
            fz += (mass * dz) / denom
        else:
            stack.extend(c for c in cell.children if c is not None)
    return np.array([fx, fy, fz]), count


def reference(workload: BHWorkload) -> np.ndarray:
    """Sequential reference: final body states after n_steps."""
    bodies = init_bodies(workload)
    n = workload.n_bodies
    for _ in range(workload.n_steps):
        pos = bodies[:, POS].copy()
        mass = bodies[:, MASS].copy()
        root = build_tree(pos, mass)
        forces = np.zeros((n, 3))
        for i in range(n):
            forces[i], _ = compute_force(root, i, pos, workload.theta, workload.eps)
        bodies[:, VEL] += workload.dt * forces
        bodies[:, POS] += workload.dt * bodies[:, VEL]
    return bodies


def bh_program(workload: BHWorkload, plan: dict):
    """Build the SPMD program.  Each node returns {body_index: state_row}."""
    shared = {"rids": {}}
    init = init_bodies(workload)
    n = workload.n_bodies

    def program(ctx):
        nid, n_procs = ctx.nid, ctx.n_procs
        body_space = yield from ctx.new_space("SC")
        my_bodies = [i for i in range(n) if i % n_procs == nid]
        for i in my_bodies:
            rid = yield from ctx.gmalloc(body_space, BODY_WORDS)
            shared["rids"][i] = rid
        yield from ctx.barrier()
        yield from ctx.change_protocol(body_space, plan["bodies"])

        handles = {}
        for i in range(n):
            handles[i] = yield from ctx.map(shared["rids"][i])
        for i in my_bodies:
            yield from ctx.write_region(handles[i], init[i])
        yield from ctx.barrier(body_space)

        # Hoisted access calls: the read sweep touches every body each
        # step, so each attribute lookup shaved here is paid n times.
        start_read = ctx.start_read
        end_read = ctx.end_read
        start_write = ctx.start_write
        end_write = ctx.end_write
        compute = ctx.compute

        for _ in range(workload.n_steps):
            # read the entire body set (tree build input)
            pos = np.zeros((n, 3))
            mass = np.zeros(n)
            for i in range(n):
                h = handles[i]
                yield from start_read(h)
                pos[i] = h.data[POS]
                mass[i] = h.data[MASS]
                yield from end_read(h)
            # replicated local tree build
            yield from compute(COST_TREE_PER_BODY * n)
            root = build_tree(pos, mass)
            # forces + integration for own bodies
            for i in my_bodies:
                force, cnt = compute_force(root, i, pos, workload.theta, workload.eps)
                yield from compute(COST_PER_INTERACTION * cnt)
                h = handles[i]
                yield from start_write(h)
                h.data[VEL] += workload.dt * force
                h.data[POS] += workload.dt * h.data[VEL]
                yield from end_write(h)
            yield from ctx.barrier(body_space)

        out = {}
        for i in my_bodies:
            data = yield from ctx.read_region(handles[i])
            out[i] = np.array(data)
        return out

    return program


def collect_results(run_result, workload: BHWorkload) -> np.ndarray:
    """Merge per-node returns into the (n, BODY_WORDS) state array."""
    state = np.zeros((workload.n_bodies, BODY_WORDS))
    for part in run_result.results:
        for i, row in part.items():
            state[i] = row
    return state
