"""Water: two-phase molecular dynamics (Table 3: 512 molecules, 3 steps).

A simplified SPLASH Water with the access pattern that matters to the
paper: every time step alternates between

* an **intra-molecular** phase where each processor updates only the
  molecules it owns (integrating velocities/positions), and
* an **inter-molecular** phase where pairwise forces are *accumulated*
  into both molecules of each interacting pair — including remote ones.

§2.2/§5.2: the custom plan switches the molecule space to the
``Null`` protocol for the intra phase (no coherence actions at all)
and to ``PipelinedWrite`` for the inter phase (delta writes pipelined
to each molecule's home, drained at the phase barrier) — the paper
reports ~2x over running SC for everything, and notes that *neither*
protocol could be used alone for the whole application.

Each molecule is one region: ``[x, y, z, vx, vy, vz, fx, fy, fz]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

MOL_WORDS = 9  # pos(3) + vel(3) + force(3)
POS, VEL, FRC = slice(0, 3), slice(3, 6), slice(6, 9)


@dataclass(frozen=True)
class WaterWorkload:
    """Inputs matching Table 3's Water row (scaled by default)."""

    n_molecules: int = 16
    n_steps: int = 2
    cutoff: float = 0.75  # fraction of box size
    dt: float = 0.01
    box: float = 4.0
    seed: int = 2026

    @classmethod
    def paper(cls) -> "WaterWorkload":
        """Table 3: 512 molecules, 3 steps."""
        return cls(n_molecules=512, n_steps=3)


SC_PLAN = {"intra": "SC", "inter": "SC"}
CUSTOM_PLAN = {"intra": "Null", "inter": "PipelinedWrite"}

COST_PER_PAIR = 60      # force evaluation for one molecule pair
COST_PER_INTRA = 90     # per-molecule intra-molecular work


def init_molecules(workload: WaterWorkload) -> np.ndarray:
    """Deterministic initial state, shape (n, MOL_WORDS)."""
    rng = np.random.default_rng(workload.seed)
    state = np.zeros((workload.n_molecules, MOL_WORDS))
    state[:, POS] = rng.uniform(0.0, workload.box, size=(workload.n_molecules, 3))
    state[:, VEL] = rng.normal(0.0, 0.1, size=(workload.n_molecules, 3))
    return state


def _pair_force(pi: np.ndarray, pj: np.ndarray, cutoff: float) -> np.ndarray | None:
    """Soft repulsive pair force on molecule i from j (None beyond cutoff)."""
    dvec = pi - pj
    r2 = float(dvec @ dvec)
    if r2 >= cutoff * cutoff or r2 == 0.0:
        return None
    return dvec / (r2 * r2 + 0.1)


def reference(workload: WaterWorkload) -> np.ndarray:
    """Sequential NumPy reference: final molecule states."""
    state = init_molecules(workload)
    cutoff = workload.cutoff * workload.box
    n = workload.n_molecules
    for _ in range(workload.n_steps):
        # intra: half-kick + drift using current forces
        state[:, VEL] += 0.5 * workload.dt * state[:, FRC]
        state[:, POS] += workload.dt * state[:, VEL]
        state[:, FRC] = 0.0
        # inter: accumulate pair forces
        for i in range(n):
            for j in range(i + 1, n):
                f = _pair_force(state[i, POS], state[j, POS], cutoff)
                if f is not None:
                    state[i, FRC] += f
                    state[j, FRC] -= f
        # second half-kick
        state[:, VEL] += 0.5 * workload.dt * state[:, FRC]
    return state


def water_program(workload: WaterWorkload, plan: dict):
    """Build the SPMD program.  Each node returns {mol_index: state_row}."""
    shared = {"rids": {}}
    init = init_molecules(workload)
    cutoff = workload.cutoff * workload.box
    n = workload.n_molecules

    def program(ctx):
        nid, n_procs = ctx.nid, ctx.n_procs
        mol_space = yield from ctx.new_space("SC")
        my_mols = [i for i in range(n) if i % n_procs == nid]
        for i in my_mols:
            rid = yield from ctx.gmalloc(mol_space, MOL_WORDS)
            shared["rids"][i] = rid
        yield from ctx.barrier()

        # write initial states (owners)
        handles = {}
        for i in my_mols:
            handles[i] = yield from ctx.map(shared["rids"][i])
            yield from ctx.write_region(handles[i], init[i])
        yield from ctx.barrier()

        def remap_all():
            """(Re)map every molecule after a protocol change."""
            for i in range(n):
                handles[i] = yield from ctx.map(shared["rids"][i])

        # The access calls are hoisted to locals: the inter phase
        # touches every (i, j) pair, so each attribute lookup shaved
        # here is paid O(n^2) times per step.
        start_read = ctx.start_read
        end_read = ctx.end_read
        start_write = ctx.start_write
        end_write = ctx.end_write
        compute = ctx.compute

        # pair ownership: proc owning i handles pairs (i, j>i)
        for step in range(workload.n_steps):
            # ---- intra phase: own molecules only --------------------
            yield from ctx.change_protocol(mol_space, plan["intra"])
            yield from remap_all()
            for i in my_mols:
                h = handles[i]
                yield from start_write(h)
                h.data[VEL] += 0.5 * workload.dt * h.data[FRC]
                h.data[POS] += workload.dt * h.data[VEL]
                h.data[FRC] = 0.0
                yield from end_write(h)
                yield from compute(COST_PER_INTRA)
            yield from ctx.barrier(mol_space)

            # ---- inter phase: accumulate pair forces ----------------
            yield from ctx.change_protocol(mol_space, plan["inter"])
            yield from remap_all()
            for i in my_mols:
                hi = handles[i]
                yield from start_read(hi)
                pi = hi.data[POS].copy()
                yield from end_read(hi)
                for j in range(i + 1, n):
                    hj = handles[j]
                    yield from start_read(hj)
                    pj = hj.data[POS].copy()
                    yield from end_read(hj)
                    f = _pair_force(pi, pj, cutoff)
                    yield from compute(COST_PER_PAIR)
                    if f is None:
                        continue
                    yield from start_write(hi)
                    hi.data[FRC] += f
                    yield from end_write(hi)
                    yield from start_write(hj)
                    hj.data[FRC] -= f
                    yield from end_write(hj)
            yield from ctx.barrier(mol_space)

            # ---- second half-kick on own molecules ------------------
            yield from ctx.change_protocol(mol_space, plan["intra"])
            yield from remap_all()
            for i in my_mols:
                h = handles[i]
                yield from start_write(h)
                h.data[VEL] += 0.5 * workload.dt * h.data[FRC]
                yield from end_write(h)
            yield from ctx.barrier(mol_space)

        # collect own final states (fresh from home)
        yield from ctx.change_protocol(mol_space, "SC")
        out = {}
        for i in my_mols:
            h = yield from ctx.map(shared["rids"][i])
            data = yield from ctx.read_region(h)
            out[i] = np.array(data)
        return out

    return program


def collect_results(run_result, workload: WaterWorkload) -> np.ndarray:
    """Merge per-node returns into the (n, MOL_WORDS) state array."""
    state = np.zeros((workload.n_molecules, MOL_WORDS))
    for part in run_result.results:
        for i, row in part.items():
            state[i] = row
    return state
