"""The CRL-like runtime: rgn_* API over the shared directory engine."""

from __future__ import annotations

from repro.dsm import BarrierService, CRL_COSTS, DirectoryEngine, LockService
from repro.machine import Machine
from repro.memory import RegionDirectory


class CRLRuntime:
    """Fixed-protocol region DSM (the paper's baseline system).

    The API mirrors CRL's: ``rgn_create``, ``rgn_map``, ``rgn_unmap``,
    ``rgn_start_read``/``rgn_end_read``, ``rgn_start_write``/
    ``rgn_end_write``, plus global barriers (CM-5 control network, as
    in CRL) and region locks so ported Ace programs keep their
    synchronization structure (§5.1's porting methodology).
    """

    def __init__(self, machine: Machine, barrier_algorithm: str = "hw"):
        self.machine = machine
        self.regions = RegionDirectory()
        self.engine = DirectoryEngine(machine, self.regions, CRL_COSTS, stats_prefix="crl")
        self.locks = LockService(machine, self.regions, stats_prefix="crl.lock")
        self._barrier = BarrierService(machine, algorithm=barrier_algorithm)
        # The rgn_* methods below are pure delegations; bind the engine
        # generators directly so every CRL access costs one generator
        # frame fewer (``yield from`` passthroughs propagate returns).
        eng = self.engine
        self.rgn_create = eng.create
        self.rgn_map = eng.map
        self.rgn_unmap = eng.unmap
        self.rgn_start_read = eng.start_read
        self.rgn_end_read = eng.end_read
        self.rgn_start_write = eng.start_write
        self.rgn_end_write = eng.end_write
        self.rgn_flush = eng.flush
        self.barrier = self._barrier.wait
        self.lock = self.locks.acquire
        self.unlock = self.locks.release

    def rgn_create(self, nid: int, size: int):
        """Generator: allocate a region homed at ``nid``; returns rid."""
        rid = yield from self.engine.create(nid, size)
        return rid

    def rgn_map(self, nid: int, rid: int):
        """Generator: map a region into the node's local address space."""
        handle = yield from self.engine.map(nid, rid)
        return handle

    def rgn_unmap(self, nid: int, handle):
        yield from self.engine.unmap(nid, handle)

    def rgn_start_read(self, nid: int, handle):
        yield from self.engine.start_read(nid, handle)

    def rgn_end_read(self, nid: int, handle):
        yield from self.engine.end_read(nid, handle)

    def rgn_start_write(self, nid: int, handle):
        yield from self.engine.start_write(nid, handle)

    def rgn_end_write(self, nid: int, handle):
        yield from self.engine.end_write(nid, handle)

    def rgn_flush(self, nid: int, rid: int):
        yield from self.engine.flush(nid, rid)

    def barrier(self, nid: int):
        yield from self._barrier.wait(nid)

    def lock(self, nid: int, rid: int):
        yield from self.locks.acquire(nid, rid)

    def unlock(self, nid: int, rid: int):
        yield from self.locks.release(nid, rid)
