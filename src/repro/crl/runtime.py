"""The CRL-like runtime: rgn_* API over the shared coherence core."""

from __future__ import annotations

from repro.dsm import BarrierService, CRL_COSTS, CoherenceEngine, LockService, as_transport
from repro.memory import RegionDirectory


class CRLRuntime:
    """Fixed-protocol region DSM (the paper's baseline system).

    The API mirrors CRL's: ``rgn_create``, ``rgn_map``, ``rgn_unmap``,
    ``rgn_start_read``/``rgn_end_read``, ``rgn_start_write``/
    ``rgn_end_write``, plus global barriers (CM-5 control network, as
    in CRL) and region locks so ported Ace programs keep their
    synchronization structure (§5.1's porting methodology).

    There is no CRL-specific coherence code: the runtime is the shared
    :class:`~repro.dsm.coherence.CoherenceEngine` configured with the
    CRL cost table, with its hook generators bound directly as the
    ``rgn_*`` methods — every CRL access drives the core's generator
    frame with no delegation frame in between (``yield from``
    passthroughs propagate returns).
    """

    def __init__(self, fabric, barrier_algorithm: str = "hw"):
        transport = as_transport(fabric)
        self.transport = transport
        self.machine = transport.machine
        self.regions = RegionDirectory()
        self.engine = CoherenceEngine(transport, self.regions, CRL_COSTS, stats_prefix="crl")
        self.locks = LockService(transport, self.regions, stats_prefix="crl.lock")
        self._barrier = BarrierService(transport, algorithm=barrier_algorithm)
        eng = self.engine
        self.rgn_create = eng.create
        self.rgn_map = eng.map
        self.rgn_unmap = eng.unmap
        self.rgn_start_read = eng.start_read
        self.rgn_end_read = eng.end_read
        self.rgn_start_write = eng.start_write
        self.rgn_end_write = eng.end_write
        self.rgn_flush = eng.flush
        self.barrier = self._barrier.wait
        self.lock = self.locks.acquire
        self.unlock = self.locks.release
