"""CRL baseline: an efficient all-software region-based DSM.

A from-scratch stand-in for CRL 1.0 (Johnson, Kaashoek & Wallach,
SOSP '95), the system the paper benchmarks Ace against in §5.1.  It
runs the shared :class:`~repro.dsm.coherence.CoherenceEngine` with the
CRL cost table — a fixed, sequentially consistent invalidation
protocol with *no* protocol customization, no spaces, and the
CRL-style mapping path (cold maps of remote regions need a metadata
round trip).
"""

from repro.crl.runtime import CRLRuntime

__all__ = ["CRLRuntime"]
