"""Annotation sanitizer: static IR discipline checker + dynamic DSM
access validator (DESIGN.md §11).

* :mod:`repro.sanitize.static_check` — dataflow verification that every
  shared access in compiled (or hand-annotated) AceC obeys the Figure 3
  annotation discipline on every CFG path; run post-lowering and again
  post-optimization so pass bugs are caught where they happen.
* :mod:`repro.sanitize.dynamic` — opt-in vector-clock race and mapping
  checker threaded through the runtime (``run_spmd(..., check=True)``);
  strictly zero-cost when off.
"""

from repro.sanitize.dynamic import AccessViolation, DynamicChecker, RaceRecord
from repro.sanitize.static_check import (
    Violation,
    check_or_raise,
    check_program,
    may_elide,
)

__all__ = [
    "AccessViolation",
    "DynamicChecker",
    "RaceRecord",
    "Violation",
    "check_or_raise",
    "check_program",
    "may_elide",
]
