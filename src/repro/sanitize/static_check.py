"""Static annotation-discipline checker: the sanitizer's compile-time side.

The compiler (§4.2) is only sound if the MAP/START/END/UNMAP
annotations obey a strict discipline and the optimization passes
preserve it.  This module verifies that discipline per region handle
along every CFG path, with the same dataflow machinery style as
:mod:`repro.compiler.analysis`: a worklist over basic blocks, a
per-block transfer function, and a merge at joins.

Checked rules (rule id → meaning; DESIGN.md §11 renders this table):

=========================  ==================================================
``deref-outside-start``    shared deref with no START of any mode open
``write-under-read``       ``deref_store`` while only reads are open
``double-start``           START on a handle with an access already open
``end-without-start``      END with no matching (and non-elided) START
``end-mode-mismatch``      END whose mode matches no open access
``open-access-at-exit``    function returns with an access still open
``use-without-map``        access on a handle whose mapping was released
``unmap-without-map``      UNMAP of a handle that is not mapped
``unmap-under-open``       UNMAP while a START is still open
``map-leak``               fn unmaps some handles but leaks this mapping
``path-imbalance``         access open on some paths into a join, not others
``lock-reacquire``         ``ace_lock`` on a lock already held
``unlock-without-lock``    ``ace_unlock`` with no matching ``ace_lock``
``lock-imbalance``         lock held on some paths into a join, not others
``lock-leak``              function returns while still holding a lock
=========================  ==================================================

Pass-output awareness (``strict=False``)
----------------------------------------
The front end brackets every access individually, so post-lowering IR
is checked **strict**: any overlap or omission is a bug.  The
optimization passes legally relax two things, so post-optimization IR
is checked **lenient**:

* *Elision* — direct dispatch deletes calls that are null hooks of an
  optimizable singleton protocol.  :func:`may_elide` mirrors that
  pass's legality test exactly, so a bare deref or an asymmetric
  START/END remnant is accepted only where the deletion was legal.
* *Nesting* — call merging rewrites duplicate ``map``\\ s into ``mov``
  aliases, which can fold two independently-annotated accesses onto
  one handle; the result is a nested same-handle START (harmless at
  run time precisely because merging only fires where every possible
  protocol is optimizable).  Lenient mode allows an inner START only
  when both it and every access it nests inside are fully
  optimizable; overlap involving a non-optimizable protocol — where
  nesting genuinely corrupts runtime state — is still reported.

A START whose matching END is itself elidable (e.g. ``start_read``
under a protocol with a null ``end_read``, post-DC) opens an access
that legally *never closes*: the checker records it as a per-mode
**license** on the handle — it satisfies the deref rules and is
exempt from balance rules — rather than a stack entry that would
demand an END on every path.

Handles the function did not map itself (parameters, array loads,
values escaping through calls) are tracked as *unknown-origin*: their
START/END pairing is still checked once a START is seen, but rules
that need the mapping history (use-without-map, map-leak,
end-without-start) stay silent — local analysis never guesses about
state it cannot see, so hand-annotated runtime-level AceC does not
produce spurious reports.

Map/unmap balance is checked only in functions that contain at least
one ``unmap``: compiler-inserted annotation never unmaps (the runtime
keeps an unmapped-region cache, so leaving regions mapped at exit is
the *normal* compiled idiom), but a function that manages unmaps
explicitly and releases only some of its mappings has leaked the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.errors import AnnotationError
from repro.compiler.ir import Const, FuncIR, ProgramIR

#: max block visits per function, same safety-valve idea as analysis.py
_VISIT_BUDGET = 20_000

_START_OF = {"end_read": "start_read", "end_write": "start_write"}
_MODE_OF = {"start_read": "read", "start_write": "write",
            "end_read": "read", "end_write": "write"}

#: mapping counts saturate here: the discipline rules only distinguish
#: "unmapped", "mapped once", and "mapped more than once", and the
#: saturation makes per-iteration re-maps inside loops converge.
_MAPS_CAP = 2


@dataclass(frozen=True)
class Violation:
    """One discipline violation, locatable in the source program."""

    rule: str
    func: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.func}:{self.line}: [{self.rule}] {self.message}"


def may_elide(protocols, hook: str, registry) -> bool:
    """True if a call to ``hook`` under ``protocols`` may legally be
    deleted by direct dispatch — the exact condition ``opt_direct``
    gates deletion on (singleton set, optimizable, hook null)."""
    if protocols is None or len(protocols) != 1:
        return False
    (proto,) = protocols
    spec = registry.spec(proto)
    return spec.optimizable and spec.is_null(hook)


def _optimizable(protocols, registry) -> bool:
    """Every possible protocol of the access is optimizable — the gate
    LI and MC rewrite under, hence the gate for accepting their output."""
    return protocols is not None and all(
        registry.spec(p).optimizable for p in protocols
    )


# open-access stack entry: (mode, line, optimizable)
# handle abstract state: (maps, stack, lic, map_line, known)
#   maps:  live mapping count, saturated at _MAPS_CAP (None = unknown origin)
#   stack: tuple of open-access entries (END required), innermost last
#   lic:   frozenset of modes opened by a START whose END is elidable
_NO_LIC = frozenset()
_FRESH_UNKNOWN = (None, (), _NO_LIC, 0, False)


class _FuncChecker:
    """Forward dataflow over one function's CFG."""

    def __init__(self, fname: str, fn: FuncIR, registry, out: set, strict: bool):
        self.fname = fname
        self.fn = fn
        self.registry = registry
        self.out = out
        self.strict = strict
        self.has_unmap = any(
            ins.op == "unmap" for b in fn.blocks.values() for ins in b.instrs
        )

    def report(self, rule: str, line: int, message: str) -> None:
        self.out.add(Violation(rule, self.fname, line, message))

    # -- state plumbing -------------------------------------------------
    @staticmethod
    def _empty_state() -> dict:
        return {"h": {}, "alias": {}, "locks": {}}

    @staticmethod
    def _resolve(state: dict, var):
        if not isinstance(var, str):
            return None
        alias = state["alias"]
        seen = set()
        while var in alias and var not in seen:
            seen.add(var)
            var = alias[var]
        return var

    def _handle(self, state: dict, root) -> tuple:
        return state["h"].setdefault(root, _FRESH_UNKNOWN)

    def merge(self, current: dict | None, incoming: dict) -> dict | None:
        """Union-merge; returns the new state if changed, else None.

        Divergent facts degrade to unknown rather than guessing; a
        divergence the discipline forbids (an access or lock open on
        one path only) is reported as a join violation.
        """
        if current is None:
            return {
                "h": dict(incoming["h"]),
                "alias": dict(incoming["alias"]),
                "locks": dict(incoming["locks"]),
            }
        changed = False
        # aliases: keep only agreements
        alias = {}
        for var, root in current["alias"].items():
            if incoming["alias"].get(var) == root:
                alias[var] = root
        if alias != current["alias"]:
            changed = True
        # handles
        handles = dict(current["h"])
        for root, inc in incoming["h"].items():
            cur = handles.get(root)
            if cur is None:
                handles[root] = inc
                changed = True
                continue
            if cur == inc:
                continue
            merged = self._merge_handle(root, cur, inc)
            if merged != cur:
                handles[root] = merged
                changed = True
        # locks: a key held on one path but not the other is imbalance
        locks = dict(current["locks"])
        for key, line in incoming["locks"].items():
            if key not in locks:
                self.report(
                    "lock-imbalance", line,
                    f"lock {key[1]!r} held on some paths into a join but not others",
                )
                locks[key] = line
                changed = True
        for key, line in current["locks"].items():
            if key not in incoming["locks"]:
                self.report(
                    "lock-imbalance", line,
                    f"lock {key[1]!r} held on some paths into a join but not others",
                )
        if not changed:
            return None
        return {"h": handles, "alias": alias, "locks": locks}

    def _merge_handle(self, root, a: tuple, b: tuple) -> tuple:
        maps_a, stack_a, lic_a, mline_a, known_a = a
        maps_b, stack_b, lic_b, mline_b, known_b = b
        known = known_a and known_b
        maps = None if (maps_a is None or maps_b is None) else max(maps_a, maps_b)
        lic = lic_a | lic_b
        if stack_a == stack_b:
            stack = stack_a
        else:
            # keep the common prefix; an entry open on one path into the
            # join but not the other needs an END that cannot exist.
            common = 0
            while (
                common < len(stack_a)
                and common < len(stack_b)
                and stack_a[common] == stack_b[common]
            ):
                common += 1
            stack = stack_a[:common]
            for mode, line, opt in stack_a[common:] + stack_b[common:]:
                self.report(
                    "path-imbalance", line,
                    f"access on handle {root!r} (START at line {line}) is "
                    "open on some paths into a join but not others",
                )
        return (maps, stack, lic, min(mline_a, mline_b), known)

    # -- transfer -------------------------------------------------------
    def _open_conflict(self, stack, lic, opt) -> tuple | None:
        """Would a new START overlap an open access illegally?  Returns
        (mode, line) of the conflicting open access, or None."""
        if self.strict:
            if stack:
                return stack[-1][:2]
            if lic:
                return (sorted(lic)[-1], 0)
            return None
        # lenient: nesting manufactured by call merging is accepted when
        # every involved access is optimizable; licenses never conflict.
        if stack and not (opt and all(e[2] for e in stack)):
            return stack[-1][:2]
        return None

    def transfer(self, state: dict, block) -> dict:
        state = {
            "h": dict(state["h"]),
            "alias": dict(state["alias"]),
            "locks": dict(state["locks"]),
        }
        reg = self.registry
        for ins in block.instrs:
            op = ins.op
            if op == "map":
                dst = ins.dst
                state["alias"].pop(dst, None)
                maps, stack, lic, mline, known = state["h"].get(
                    dst, (0, (), _NO_LIC, ins.line, True)
                )
                maps = 1 if maps is None else min(_MAPS_CAP, maps + 1)
                state["h"][dst] = (maps, stack, lic, ins.line, True)
                continue
            if op == "mov":
                src = ins.args[0] if ins.args else None
                root = self._resolve(state, src)
                state["h"].pop(ins.dst, None)
                if root is not None and root in state["h"]:
                    state["alias"][ins.dst] = root
                else:
                    state["alias"].pop(ins.dst, None)
                continue
            if op in ("start_read", "start_write"):
                root = self._resolve(state, ins.args[0])
                maps, stack, lic, mline, known = self._handle(state, root)
                want = _MODE_OF[op]
                opt = _optimizable(ins.protocols, reg)
                conflict = self._open_conflict(stack, lic, opt)
                if conflict is not None:
                    mode, line = conflict
                    at = f" opened at line {line}" if line else ""
                    self.report(
                        "double-start", ins.line,
                        f"START_{want.upper()} on handle {root!r} already "
                        f"inside START_{mode.upper()}{at}",
                    )
                if known and maps is not None and maps <= 0:
                    self.report(
                        "use-without-map", ins.line,
                        f"START_{want.upper()} on handle {root!r} after its "
                        "last UNMAP (no live mapping)",
                    )
                if not self.strict and may_elide(ins.protocols, "end_" + want, reg):
                    # the END may legally never come (deleted as a null
                    # hook): license the mode instead of demanding balance
                    lic = lic | {want}
                else:
                    stack = stack + ((want, ins.line, opt),)
                state["h"][root] = (maps, stack, lic, mline, known)
                continue
            if op in ("end_read", "end_write"):
                root = self._resolve(state, ins.args[0])
                maps, stack, lic, mline, known = self._handle(state, root)
                want = _MODE_OF[op]
                # close the innermost open access of matching mode
                idx = None
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i][0] == want:
                        idx = i
                        break
                if idx is not None:
                    stack = stack[:idx] + stack[idx + 1:]
                elif not self.strict and may_elide(ins.protocols, op, reg):
                    # this END is itself a null hook: a no-op call that
                    # closes nothing (the matching START, if any, opened
                    # a license that persists) — cannot misbehave.
                    pass
                elif want in lic:
                    lic = lic - {want}
                elif may_elide(ins.protocols, _START_OF[op], reg) or not known:
                    # START legally deleted by direct dispatch, or a
                    # handle this function cannot account for.
                    pass
                elif stack:
                    mode, line = stack[-1][0], stack[-1][1]
                    self.report(
                        "end-mode-mismatch", ins.line,
                        f"END_{want.upper()} on handle {root!r} but the open "
                        f"access is a {mode} (START at line {line})",
                    )
                else:
                    self.report(
                        "end-without-start", ins.line,
                        f"END_{want.upper()} on handle {root!r} with no "
                        "open access",
                    )
                state["h"][root] = (maps, stack, lic, mline, known)
                continue
            if op in ("deref_load", "deref_store"):
                root = self._resolve(state, ins.args[0])
                maps, stack, lic, mline, known = self._handle(state, root)
                if known and maps is not None and maps <= 0:
                    self.report(
                        "use-without-map", ins.line,
                        f"deref of handle {root!r} after its last UNMAP "
                        "(use after UNMAP)",
                    )
                open_modes = {e[0] for e in stack} | lic
                if op == "deref_store" and open_modes and "write" not in open_modes:
                    self.report(
                        "write-under-read", ins.line,
                        f"write through handle {root!r} while only a read "
                        "access is open",
                    )
                elif not open_modes and known:
                    start_hooks = (
                        ("start_write",) if op == "deref_store"
                        else ("start_read", "start_write")
                    )
                    if not any(may_elide(ins.protocols, h, reg) for h in start_hooks):
                        kind = "write" if op == "deref_store" else "read"
                        self.report(
                            "deref-outside-start", ins.line,
                            f"shared {kind} through handle {root!r} with no "
                            "START open",
                        )
                if ins.dst is not None:
                    state["alias"].pop(ins.dst, None)
                    state["h"].pop(ins.dst, None)
                continue
            if op == "unmap":
                root = self._resolve(state, ins.args[0])
                maps, stack, lic, mline, known = self._handle(state, root)
                if stack:
                    mode, line = stack[-1][0], stack[-1][1]
                    self.report(
                        "unmap-under-open", ins.line,
                        f"UNMAP of handle {root!r} while a {mode} access is "
                        f"open (START at line {line})",
                    )
                if known and maps is not None:
                    if maps <= 0:
                        self.report(
                            "unmap-without-map", ins.line,
                            f"UNMAP of handle {root!r} that is not mapped",
                        )
                    maps = max(0, maps - 1)
                state["h"][root] = (maps, (), _NO_LIC, mline, known)
                continue
            if op == "builtin":
                bname = ins.args[0].value
                if bname in ("ace_lock", "ace_unlock"):
                    operand = ins.args[1]
                    key = (
                        ("const", operand.value)
                        if isinstance(operand, Const)
                        else ("var", operand)
                    )
                    if bname == "ace_lock":
                        if key in state["locks"]:
                            self.report(
                                "lock-reacquire", ins.line,
                                f"ace_lock on {key[1]!r} already held "
                                f"(acquired at line {state['locks'][key]})",
                            )
                        state["locks"][key] = ins.line
                    else:
                        if key not in state["locks"]:
                            self.report(
                                "unlock-without-lock", ins.line,
                                f"ace_unlock on {key[1]!r} with no matching "
                                "ace_lock",
                            )
                        state["locks"].pop(key, None)
                # other builtins (incl. sync points) leave discipline
                # state alone: no code motion crosses them anyway.
                continue
            if op in ("call", "idx_store"):
                # a handle escaping into a callee or a local array can be
                # ended/unmapped through the other name: downgrade it to
                # unknown-origin rather than report facts local analysis
                # can no longer prove.
                for arg in ins.args:
                    root = self._resolve(state, arg)
                    if root in state["h"]:
                        maps, stack, lic, mline, known = state["h"][root]
                        state["h"][root] = (None, stack, lic, mline, False)
                if ins.dst is not None:
                    state["alias"].pop(ins.dst, None)
                    state["h"].pop(ins.dst, None)
                continue
            if op == "ret":
                self._check_exit(state)
                continue
            if ins.dst is not None:
                state["alias"].pop(ins.dst, None)
                state["h"].pop(ins.dst, None)
        return state

    def _check_exit(self, state: dict) -> None:
        handles = sorted(state["h"].items(), key=lambda kv: str(kv[0]))
        for root, (maps, stack, lic, mline, known) in handles:
            for mode, line, opt in stack:
                self.report(
                    "open-access-at-exit", line,
                    f"handle {root!r} still open for {mode} at function "
                    f"exit (START at line {line} has no END)",
                )
            if (
                self.has_unmap
                and known
                and maps is not None
                and maps > 0
                and not stack
            ):
                self.report(
                    "map-leak", mline,
                    f"handle {root!r} mapped at line {mline} is never "
                    "unmapped, but this function unmaps other handles",
                )
        for key, line in sorted(state["locks"].items(), key=repr):
            self.report(
                "lock-leak", line,
                f"lock {key[1]!r} acquired at line {line} still held at "
                "function exit",
            )

    # -- driver ---------------------------------------------------------
    def run(self) -> None:
        fn = self.fn
        in_states: dict = {fn.entry: self._empty_state()}
        work = [fn.entry]
        budget = 0
        while work:
            bname = work.pop(0)
            budget += 1
            if budget > _VISIT_BUDGET:  # pragma: no cover - safety valve
                break
            out_state = self.transfer(in_states[bname], fn.blocks[bname])
            for succ in fn.blocks[bname].successors():
                merged = self.merge(in_states.get(succ), out_state)
                if merged is not None:
                    in_states[succ] = merged
                    if succ not in work:
                        work.append(succ)
        # unreachable blocks are not checked: no path reaches them, so
        # no discipline fact holds there.


def check_program(program: ProgramIR, registry, strict: bool = True) -> list:
    """Check every function; returns sorted :class:`Violation` list.

    Run after :func:`repro.compiler.analysis.analyze` (the elision rule
    consumes the ``protocols`` stamps).  ``strict=True`` for IR straight
    out of lowering, ``strict=False`` to re-certify optimized IR (see
    the module docstring for what lenient mode additionally accepts).
    """
    out: set = set()
    for fname, fn in program.funcs.items():
        _FuncChecker(fname, fn, registry, out, strict).run()
    return sorted(out, key=lambda v: (v.func, v.line, v.rule, v.message))


def check_or_raise(
    program: ProgramIR,
    registry,
    phase: str = "post-lowering",
    strict: bool = True,
) -> int:
    """Raise :class:`~repro.compiler.errors.AnnotationError` on any
    violation; returns the violation count (0) otherwise so drivers can
    record "checked and clean" in their pass stats."""
    violations = check_program(program, registry, strict=strict)
    if violations:
        raise AnnotationError(phase, violations)
    return 0
