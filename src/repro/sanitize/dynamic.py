"""Dynamic access validator: the sanitizer's run-time side.

Opt-in (``run_spmd(..., check=True)``) epoch race detection over the
annotation stream the runtime already sees.  Each node carries a
vector clock advanced at synchronization points (space barriers, lock
transfer); every START_READ/START_WRITE is an *access event* checked
against the region's last writer and concurrent readers with the
classic FastTrack epoch test — a recorded event ``(owner, c)``
happens-before node ``n`` iff ``c <= vc[n][owner]``.  Two accesses to
the same region with no happens-before edge, at least one a write, is
a data race: exactly the §5 discipline the annotations are supposed to
make impossible, so any report here is an application (or protocol)
bug, not a tuning hint.

Also checked:

* **use-after-UNMAP** — an access on a region the node has unmapped
  more times than it mapped (the handle may still *work*, because the
  region cache retains data, which is what makes this bug silent);
* **protocol-observed races** — when the active protocol is
  ``RaceDetect``, its own epoch reports are adopted into this
  checker's ledger so one report covers both detectors.

Zero-cost when off: the runtime installs its checker wrappers as
instance attributes only when ``check=True``; the default construction
path is bit-identical to an unchecked run (``tools/bench.py --gate``
holds cycle equality).  The wrappers themselves add bookkeeping but no
:class:`~repro.sim.Delay`, so even a *checked* run reports the same
simulated cycle count — only wall time pays.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RaceRecord:
    """One detected race: ``kind`` is ``ww``/``rw``/``wr``/``protocol``."""

    kind: str
    rid: int
    nodes: tuple
    detail: str

    def __str__(self) -> str:
        who = ",".join(str(n) for n in self.nodes)
        return f"region {self.rid}: [{self.kind}-race] nodes {who}: {self.detail}"


@dataclass(frozen=True)
class AccessViolation:
    """A non-race discipline violation observed at run time."""

    kind: str
    rid: int
    node: int
    detail: str

    def __str__(self) -> str:
        return f"region {self.rid}: [{self.kind}] node {self.node}: {self.detail}"


class DynamicChecker:
    """Vector-clock race and mapping-discipline checker for one run.

    The runtime calls in at annotation points; nothing here yields or
    charges cycles, so a checked run's simulated clock matches the
    unchecked run exactly.

    Parameters
    ----------
    n_procs:
        Node count (one vector-clock component per node).
    obs:
        Optional layer tracer (``Tracer.tracer("sanitize")``); races are
        emitted as ``sanitize.race`` events so they land in the same
        causal timeline as the protocol traffic that produced them.
    sim:
        Optional simulator, used only to timestamp emitted events.
    """

    def __init__(self, n_procs: int, obs=None, sim=None):
        self.n_procs = n_procs
        self._obs = obs
        self._sim = sim
        self.vc = [[0] * n_procs for _ in range(n_procs)]
        for i in range(n_procs):
            self.vc[i][i] = 1
        self._arrived: set = set()
        self._lock_vc: dict = {}           # lock rid -> released clock
        self._last_write: dict = {}        # rid -> (node, clock)
        self._readers: dict = {}           # rid -> {node: clock}
        self._maps: dict = {}              # (nid, rid) -> live map count
        self._seen: set = set()            # dedupe key set
        self.races: list = []
        self.violations: list = []
        self.sync_rounds = 0
        self.accesses_checked = 0
        self.counters: dict = {}

    # -- synchronization ------------------------------------------------
    def barrier_arrive(self, nid: int) -> None:
        """All-arrived: everyone joins everyone, then ticks its own slot."""
        self._arrived.add(nid)
        if len(self._arrived) < self.n_procs:
            return
        self._arrived.clear()
        merged = [max(vc[i] for vc in self.vc) for i in range(self.n_procs)]
        for i in range(self.n_procs):
            self.vc[i] = list(merged)
            self.vc[i][i] += 1
        self.sync_rounds += 1

    def lock_released(self, nid: int, rid: int) -> None:
        """Called as the node releases: publish its clock on the lock."""
        self._lock_vc[rid] = list(self.vc[nid])
        self.vc[nid][nid] += 1

    def lock_acquired(self, nid: int, rid: int) -> None:
        """Called once the lock is held: join the last releaser's clock."""
        prev = self._lock_vc.get(rid)
        if prev is not None:
            own = self.vc[nid]
            for i in range(self.n_procs):
                if prev[i] > own[i]:
                    own[i] = prev[i]

    # -- mapping discipline ---------------------------------------------
    def map_acquired(self, nid: int, rid: int) -> None:
        key = (nid, rid)
        self._maps[key] = self._maps.get(key, 0) + 1

    def unmapped(self, nid: int, rid: int) -> None:
        key = (nid, rid)
        self._maps[key] = self._maps.get(key, 0) - 1

    def unmapped_use(self, nid: int, rid: int, where: str = "access") -> None:
        """Record a use of an unmapped region (called by the runtime
        wrapper and by the cache-level hook when it sees a dead copy)."""
        self._violation(
            "use-after-unmap", rid, nid,
            f"{where} on region {rid} after its last ACE_UNMAP on node {nid}",
        )

    # -- access events ---------------------------------------------------
    def access(self, nid: int, rid: int, write: bool) -> None:
        """Check one START event against the region's history."""
        self.accesses_checked += 1
        if self._maps.get((nid, rid), 1) <= 0:
            kind = "START_WRITE" if write else "START_READ"
            self.unmapped_use(nid, rid, where=kind)
        own = self.vc[nid]
        lw = self._last_write.get(rid)
        if lw is not None:
            w_node, w_clock = lw
            if w_node != nid and w_clock > own[w_node]:
                kind = "ww" if write else "wr"
                what = "writes" if write else "write then read"
                self._race(kind, rid, (w_node, nid),
                           f"concurrent {what} with no ordering sync")
        if write:
            readers = self._readers.get(rid)
            if readers:
                for r_node, r_clock in readers.items():
                    if r_node != nid and r_clock > own[r_node]:
                        self._race("rw", rid, (r_node, nid),
                                   "read and write with no ordering sync")
            self._last_write[rid] = (nid, own[nid])
            self._readers[rid] = {}
        else:
            self._readers.setdefault(rid, {})[nid] = own[nid]

    # -- cache-level notifications (engine integration) -------------------
    def cache_installed(self, nid: int, rid: int) -> None:
        """A coherent copy landed in the node's region cache."""
        # Residency is protocol business, not discipline: recorded only
        # so the summary can relate races to cold/warm copies.
        self.counters["cache_install"] = self.counters.get("cache_install", 0) + 1

    def cache_invalidated(self, nid: int, rid: int) -> None:
        self.counters["cache_invalidate"] = self.counters.get("cache_invalidate", 0) + 1

    # -- protocol integration ---------------------------------------------
    def adopt_protocol_race(self, epoch: int, rid: int, readers, writers) -> None:
        """Fold a :class:`RaceDetectProtocol` epoch report into the ledger."""
        nodes = tuple(sorted(set(readers) | set(writers)))
        self._race(
            "protocol", rid, nodes,
            f"RaceDetect epoch {epoch}: readers {sorted(readers)} "
            f"writers {sorted(writers)}",
        )

    # -- recording --------------------------------------------------------
    def _race(self, kind: str, rid: int, nodes, detail: str) -> None:
        nodes = tuple(sorted(nodes))
        key = (kind, rid, nodes)
        if key in self._seen:
            return
        self._seen.add(key)
        rec = RaceRecord(kind, rid, nodes, detail)
        self.races.append(rec)
        self._emit("sanitize.race", nodes[-1],
                   {"kind": kind, "rid": rid, "nodes": list(nodes)})

    def _violation(self, kind: str, rid: int, nid: int, detail: str) -> None:
        key = (kind, rid, nid)
        if key in self._seen:
            return
        self._seen.add(key)
        self.violations.append(AccessViolation(kind, rid, nid, detail))
        self._emit("sanitize.violation", nid, {"kind": kind, "rid": rid})

    def _emit(self, event: str, nid: int, data: dict) -> None:
        if self._obs is not None:
            now = self._sim.now if self._sim is not None else 0
            self._obs.emit(now, event, node=nid, data=data)

    # -- reporting --------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.races and not self.violations

    def report(self) -> list:
        """All findings, races first, each ``str()``-renderable."""
        return list(self.races) + list(self.violations)

    def summary(self) -> str:
        lines = [
            f"dynamic sanitizer: {self.accesses_checked} accesses checked, "
            f"{self.sync_rounds} sync rounds, {len(self.races)} race(s), "
            f"{len(self.violations)} violation(s)"
        ]
        lines.extend(f"  {r}" for r in self.report())
        return "\n".join(lines)
