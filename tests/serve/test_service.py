"""Serving harness: completion, determinism, reporting, fault composition."""

from __future__ import annotations

import pytest

from repro.dsm.faults import FaultPlan
from repro.serve import AdaptiveController, ServeWorkload, run_serve

SMALL = ServeWorkload(
    n_keys=16, n_shards=2, n_requests=192, batch=16, rate=60.0,
    read_frac=0.9, shift_read_frac=None, think_cycles=5, seed=13,
)


def test_every_request_served_once():
    _, report = run_serve(SMALL, protocol="SC", n_procs=3)
    assert report["requests"] == SMALL.n_requests
    assert report["latency"]["count"] == SMALL.n_requests
    mix = report["shard_mix"]
    total = sum(m["reads"] + m["writes"] for m in mix.values())
    assert total == SMALL.n_requests


def test_same_seed_identical_cycles():
    _, a = run_serve(SMALL, protocol="SC", n_procs=3)
    _, b = run_serve(SMALL, protocol="SC", n_procs=3)
    assert a["cycles"] == b["cycles"]
    assert a["events"] == b["events"]
    assert a["msgs"] == b["msgs"]
    assert a["traffic"] == b["traffic"]


def test_per_shard_static_protocols():
    _, report = run_serve(SMALL, protocols={0: "DynamicUpdate", 1: "Migratory"}, n_procs=3)
    assert report["mode"] == "static"
    assert report["switches"] == 0
    assert report["protocols_initial"] == {0: "DynamicUpdate", 1: "Migratory"}
    assert report["protocols_final"] == report["protocols_initial"]
    assert report["requests"] == SMALL.n_requests


def test_protocol_choice_mechanisms_are_exclusive():
    with pytest.raises(ValueError):
        run_serve(SMALL, protocol="SC", protocols={0: "SC", 1: "SC"}, n_procs=2)
    with pytest.raises(ValueError):
        run_serve(
            SMALL,
            protocol="SC",
            controller=AdaptiveController({0: "SC", 1: "SC"}),
            n_procs=2,
        )
    with pytest.raises(ValueError):
        run_serve(SMALL, protocols={0: "SC"}, n_procs=2)  # shard 1 uncovered


def test_directory_sharding_preserves_results():
    _, one = run_serve(SMALL, protocol="SC", n_procs=3, n_dir_shards=1)
    _, four = run_serve(SMALL, protocol="SC", n_procs=3, n_dir_shards=4)
    assert four["requests"] == one["requests"]
    assert four["shard_mix"] == one["shard_mix"]


def test_adaptive_switches_on_mix_shift():
    wl = ServeWorkload(
        n_keys=16, n_shards=2, n_requests=384, batch=16, rate=60.0,
        read_frac=0.95, shift_at=0.5, shift_read_frac=0.05,
        think_cycles=5, seed=13,
    )
    controller = AdaptiveController({s: "DynamicUpdate" for s in range(wl.n_shards)})
    _, report = run_serve(wl, controller=controller, n_procs=3)
    assert report["mode"] == "adaptive"
    assert report["requests"] == wl.n_requests
    assert report["switches"] >= 1  # the write-heavy tail forces a switch
    assert "Migratory" in report["protocols_final"].values()
    switched = [d for d in report["decisions"] if d["switch_to"]]
    assert switched and all(d["write_frac"] is not None for d in switched)
    assert "metrics" in report  # adaptive runs attach the window by default


def test_serve_composes_with_fault_plan():
    wl = ServeWorkload(
        n_keys=8, n_shards=2, n_requests=96, batch=16, rate=60.0,
        read_frac=0.9, think_cycles=5, seed=13,
    )
    plan = FaultPlan.drop_retry(seed=5, drop=0.15)
    _, report = run_serve(wl, protocol="SC", n_procs=2, fault_plan=plan)
    assert report["requests"] == wl.n_requests
    _, clean = run_serve(wl, protocol="SC", n_procs=2)
    assert report["cycles"] > clean["cycles"]  # retries cost cycles
