"""Traffic generator: determinism, layout invariants, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ServeWorkload, build_traffic, traffic_digest, zipf_weights


def test_same_seed_same_traffic():
    wl = ServeWorkload(n_requests=512, shift_read_frac=0.2, seed=7)
    a = build_traffic(wl, n_procs=4)
    b = build_traffic(wl, n_procs=4)
    for field in ("keys", "is_read", "arrival", "value", "shard", "node"):
        assert np.array_equal(a[field], b[field]), field
    assert traffic_digest(a) == traffic_digest(b)


def test_different_seed_different_traffic():
    wl = ServeWorkload(n_requests=512, seed=7)
    other = ServeWorkload(n_requests=512, seed=8)
    assert traffic_digest(build_traffic(wl, 4)) != traffic_digest(build_traffic(other, 4))


def test_shard_layout_partitions_keys():
    wl = ServeWorkload(n_keys=37, n_shards=5)  # deliberately non-divisible
    seen = []
    for s in range(wl.n_shards):
        block = list(wl.keys_of_shard(s))
        assert block, f"shard {s} got no keys"
        for k in block:
            assert wl.shard_of_key(k) == s
        seen.extend(block)
    assert seen == list(range(wl.n_keys))  # contiguous blocks, no gaps


def test_zipf_hot_shard_is_shard_zero():
    wl = ServeWorkload(n_keys=64, n_shards=4, n_requests=4096, zipf_s=1.1, seed=3)
    t = build_traffic(wl, n_procs=4)
    counts = np.bincount(t["shard"], minlength=wl.n_shards)
    assert counts[0] == counts.max()  # rank-block sharding: shard 0 hottest
    w = zipf_weights(wl.n_keys, wl.zipf_s)
    assert w[0] == w.max() and w[-1] == w.min()
    assert w.sum() == pytest.approx(1.0)


def test_mix_shift_lands_at_shift_idx():
    wl = ServeWorkload(n_requests=4096, read_frac=1.0, shift_at=0.5, shift_read_frac=0.0)
    t = build_traffic(wl, n_procs=2)
    cut = t["shift_idx"]
    assert cut == 2048
    assert t["is_read"][:cut].all()  # read_frac 1.0 before the shift
    assert not t["is_read"][cut:].any()  # 0.0 after


def test_arrivals_nondecreasing_and_open_loop():
    wl = ServeWorkload(n_requests=1024, rate=25.0, seed=5)
    t = build_traffic(wl, n_procs=4)
    assert (np.diff(t["arrival"]) >= 0).all()
    # Open-loop: mean gap tracks 1000/rate within sampling noise.
    mean_gap = t["arrival"][-1] / wl.n_requests
    assert 0.5 * 1000 / wl.rate < mean_gap < 2.0 * 1000 / wl.rate


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_shards": 0},
        {"n_shards": 65},  # > n_keys (64)
        {"read_frac": 1.5},
        {"shift_read_frac": -0.1},
        {"rate": 0.0},
        {"batch": 0},
    ],
)
def test_validation_rejects_bad_spec(kwargs):
    with pytest.raises(ValueError):
        ServeWorkload(**kwargs)
