"""Controller policy unit tests plus the adaptive-vs-static experiment."""

from __future__ import annotations

import pytest

from repro.protocols import default_registry
from repro.serve import AdaptiveController, ServeWorkload, run_serve


class _FakeStats:
    """Counter stub with the ``get`` surface the controller samples."""

    def __init__(self):
        self.values: dict[str, int] = {}

    def feed(self, shard: int, reads: int, writes: int):
        self.values[f"serve.shard{shard}.reads"] = (
            self.values.get(f"serve.shard{shard}.reads", 0) + reads
        )
        self.values[f"serve.shard{shard}.writes"] = (
            self.values.get(f"serve.shard{shard}.writes", 0) + writes
        )

    def get(self, key: str) -> int:
        return self.values.get(key, 0)


def test_hysteresis_and_cooldown():
    c = AdaptiveController({0: "DynamicUpdate"}, cooldown=2, min_ops=8)
    stats = _FakeStats()
    stats.feed(0, reads=4, writes=28)  # write-heavy: frac 0.875 >= hi
    assert c.epoch(0, stats) == {0: "Migratory"}
    stats.feed(0, reads=30, writes=2)  # read-heavy again, but cooling down
    assert c.epoch(1, stats) == {}
    stats.feed(0, reads=30, writes=2)  # cooldown over: frac 0.0625 <= lo
    assert c.epoch(2, stats) == {0: "DynamicUpdate"}
    # Mid-band write fractions never switch (hysteresis dead zone).
    stats.feed(0, reads=24, writes=8)  # frac 0.25, between lo and hi
    assert c.epoch(3, stats) == {}
    assert c.epoch(4, stats) == {}  # no delta at all: ops 0 < min_ops
    assert c.switches == 2
    assert [d["switch_to"] for d in c.audit() if d["switch_to"]] == [
        "Migratory", "DynamicUpdate",
    ]


def test_cold_shard_keeps_protocol():
    c = AdaptiveController({0: "DynamicUpdate"}, min_ops=8)
    stats = _FakeStats()
    stats.feed(0, reads=1, writes=3)  # frac 0.75 but only 4 ops
    assert c.epoch(0, stats) == {}
    assert c.protocols[0] == "DynamicUpdate"


def test_threshold_validation():
    with pytest.raises(ValueError):
        AdaptiveController({0: "SC"}, hi_write_frac=0.2, lo_write_frac=0.5)


def test_serving_candidates_are_registered():
    names = default_registry.serving_candidates()
    assert names, "no serving candidates derived from the protocol table"
    assert set(names) <= set(default_registry.names())
    assert {"DynamicUpdate", "Migratory"} <= set(default_registry.names())


def test_adaptive_beats_best_static_on_shifted_mix():
    """The issue's acceptance experiment at test scale: a zipfian stream
    whose read/write mix inverts mid-run.  No single static protocol
    fits both halves; the adaptive controller switches at the shift and
    must come out ahead of every uniform static configuration."""
    wl = ServeWorkload(
        n_keys=32, n_shards=2, n_requests=768, batch=32, rate=50.0,
        read_frac=0.95, shift_at=0.5, shift_read_frac=0.1,
        think_cycles=10, seed=11,
    )
    static_cycles = {}
    for name in ("DynamicUpdate", "Migratory", "SC"):
        _, rep = run_serve(wl, protocol=name, n_procs=3)
        assert rep["requests"] == wl.n_requests
        static_cycles[name] = rep["cycles"]
    controller = AdaptiveController({s: "DynamicUpdate" for s in range(wl.n_shards)})
    _, adaptive = run_serve(wl, controller=controller, n_procs=3)
    assert adaptive["requests"] == wl.n_requests
    assert adaptive["switches"] >= 1
    best = min(static_cycles.values())
    assert adaptive["cycles"] < best, (
        f"adaptive {adaptive['cycles']} vs statics {static_cycles}"
    )
