"""Unit tests for the Ace runtime: spaces, dispatch, protocol changes."""

import numpy as np
import pytest

from repro.facade import run_spmd
from repro.protocols.base import ProtocolMisuse


def test_new_space_is_collective_and_shared():
    def prog(ctx):
        sid1 = yield from ctx.new_space("SC")
        sid2 = yield from ctx.new_space("DynamicUpdate")
        return (sid1, sid2)

    res = run_spmd(prog, backend="ace", n_procs=4)
    assert res.results == [(0, 1)] * 4


def test_spmd_divergence_on_new_space_detected():
    def prog(ctx):
        name = "SC" if ctx.nid == 0 else "Null"
        sid = yield from ctx.new_space(name)
        return sid

    with pytest.raises(ProtocolMisuse, match="SPMD divergence"):
        run_spmd(prog, backend="ace", n_procs=2)


def test_gmalloc_registers_region_with_space():
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        rid = yield from ctx.gmalloc(sid, 8)
        h = yield from ctx.map(rid)
        yield from ctx.write_region(h, np.arange(8))
        data = yield from ctx.read_region(h)
        return list(data)

    res = run_spmd(prog, backend="ace", n_procs=2)
    assert res.results[0] == list(range(8))


def test_unallocated_region_rejected():
    def prog(ctx):
        yield from ctx.new_space("SC")
        h = yield from ctx.map(999)
        return h

    with pytest.raises(ProtocolMisuse, match="not allocated"):
        run_spmd(prog, backend="ace", n_procs=1)


def test_change_protocol_swaps_and_preserves_data():
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            rid = yield from ctx.gmalloc(sid, 2)
            h = yield from ctx.map(rid)
            yield from ctx.write_region(h, [5.0, 6.0])
        yield from ctx.barrier()
        yield from ctx.change_protocol(sid, "DynamicUpdate")
        assert ctx.backend.runtime.space_protocol(sid) == "DynamicUpdate"
        if ctx.nid == 0:
            h2 = yield from ctx.map(rid)
            data = yield from ctx.read_region(h2)
            return list(data)
        return None

    res = run_spmd(prog, backend="ace", n_procs=2)
    assert res.results[0] == [5.0, 6.0]


def test_stale_handle_after_change_protocol_rejected():
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        rid = yield from ctx.gmalloc(sid, 1)
        h = yield from ctx.map(rid)
        yield from ctx.change_protocol(sid, "Null")
        yield from ctx.start_read(h)  # stale: mapped under the old protocol

    with pytest.raises(ProtocolMisuse, match="stale handle"):
        run_spmd(prog, backend="ace", n_procs=1)


def test_change_protocol_to_same_is_cheap_noop():
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        rid = yield from ctx.gmalloc(sid, 1)
        h = yield from ctx.map(rid)
        yield from ctx.change_protocol(sid, "SC")
        yield from ctx.start_read(h)  # handle still valid: no generation bump
        yield from ctx.end_read(h)

    run_spmd(prog, backend="ace", n_procs=1)


def test_change_protocol_flushes_dirty_remote_copy():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        if ctx.nid == 1:
            h = yield from ctx.map(boxes["rid"])
            yield from ctx.start_write(h)
            h.data[0] = 77
            yield from ctx.end_write(h)
        yield from ctx.barrier()
        yield from ctx.change_protocol(sid, "StaticUpdate")
        if ctx.nid == 0:
            h = yield from ctx.map(boxes["rid"])
            data = yield from ctx.read_region(h)
            return data[0]

    res = run_spmd(prog, backend="ace", n_procs=2)
    assert res.results[0] == 77.0


def test_dispatch_cost_charged_per_primitive():
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        rid = yield from ctx.gmalloc(sid, 1)
        h = yield from ctx.map(rid)
        for _ in range(10):
            yield from ctx.start_read(h)
            yield from ctx.end_read(h)

    res = run_spmd(prog, backend="ace", n_procs=1)
    assert res.stats.get("ace.start_read") == 10
    assert res.stats.get("ace.end_read") == 10
    assert res.stats.get("ace.map") == 1


def test_space_barrier_dispatches_to_protocol():
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        yield from ctx.barrier(sid)
        yield from ctx.barrier(sid)
        return "ok"

    res = run_spmd(prog, backend="ace", n_procs=4)
    assert res.results == ["ok"] * 4
    assert res.stats.get("ace.barrier") == 8


def test_ace_locks_via_region_protocol():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        rid = boxes["rid"]
        h = yield from ctx.map(rid)
        for _ in range(5):
            yield from ctx.lock(rid)
            yield from ctx.start_write(h)
            h.data[0] += 1
            yield from ctx.end_write(h)
            yield from ctx.unlock(rid)
        yield from ctx.barrier()
        if ctx.nid == 0:
            data = yield from ctx.read_region(h)
            return data[0]

    res = run_spmd(prog, backend="ace", n_procs=4)
    assert res.results[0] == 20.0


def test_crl_backend_rejects_custom_protocols():
    def prog(ctx):
        yield from ctx.new_space("DynamicUpdate")

    with pytest.raises(NotImplementedError, match="single fixed protocol"):
        run_spmd(prog, backend="crl", n_procs=1)


def test_same_program_runs_on_both_backends():
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        rid = yield from ctx.gmalloc(sid, 4)
        h = yield from ctx.map(rid)
        yield from ctx.write_region(h, [1, 2, 3, 4])
        yield from ctx.barrier()
        data = yield from ctx.read_region(h)
        return sum(data)

    for backend in ("ace", "crl"):
        res = run_spmd(prog, backend=backend, n_procs=2)
        assert res.results == [10.0, 10.0]


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        run_spmd(lambda ctx: iter(()), backend="tempest")
