"""Golden-trace pin for the kernel fast path.

``tests/verify/golden_traces.json`` was captured from the *pre-fast-path*
kernel (the single-heap, closure-per-yield implementation).  Every case
in :mod:`repro.verify.golden` re-runs a workload on the current kernel
and must reproduce the stored fingerprint bit for bit: final simulated
time, event-trace digest, and the full stats snapshot — for the
canonical schedule and for a fixed ``jitter_seed``.

If an optimization changes any of these, it changed observable
simulation behavior and is a bug, not a speedup.  Do NOT regenerate the
JSON to make a failure pass; fix the kernel instead.  (Regeneration —
``python -m repro.verify.golden`` — is only legitimate when a paper-
model change deliberately alters the simulation itself.)
"""

import json
from pathlib import Path

import pytest

from repro.verify import golden

_STORED = json.loads((Path(__file__).parent / "golden_traces.json").read_text())


@pytest.mark.parametrize("case", sorted(golden.CASES))
def test_golden_case_matches_seed_kernel(case):
    assert case in _STORED, f"no stored fingerprint for {case!r}; regenerate deliberately"
    got = golden.CASES[case]()
    want = _STORED[case]
    if got != want:
        diff = {
            k: (want.get(k), got.get(k))
            for k in set(want) | set(got)
            if want.get(k) != got.get(k)
        } if isinstance(want, dict) and isinstance(got, dict) else (want, got)
        pytest.fail(f"golden mismatch in {case}: {diff}")


def test_no_stale_stored_cases():
    assert set(_STORED) == set(golden.CASES)
