"""The small-scope model checker: clean tables certify, broken tables refute.

Three batteries:

* every table-driven protocol family verifies clean at the default
  2 nodes x 1 region x 2 ops scope (the certificate scope);
* every seeded mutation — type-well-formed but semantically broken
  tables — is refuted with a minimal counterexample trace, proving the
  checker has teeth (a checker that cannot fail a broken table
  certifies nothing);
* the committed certificates under ``src/repro/verify/certs/`` are
  pinned to the tables' content fingerprints, so editing any row
  without re-running ``tools/modelcheck.py --write-certs`` fails CI.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.protocols.dynamic_update import DYNAMIC_UPDATE_TABLE
from repro.protocols.owned import OWNED_TABLE
from repro.protocols.registry import default_registry
from repro.protocols.self_invalidate import SELF_INVALIDATE_TABLE
from repro.dsm.msi import MSI_TABLE
from repro.verify.modelcheck import (
    ModelCheckError,
    Scope,
    check_table,
    model_for,
    seeded_mutations,
)

CERT_DIR = Path(__file__).resolve().parents[2] / "src" / "repro" / "verify" / "certs"

TABLES = {
    "SC": MSI_TABLE,
    "Owned": OWNED_TABLE,
    "SelfInvalidate": SELF_INVALIDATE_TABLE,
    "DynamicUpdate": DYNAMIC_UPDATE_TABLE,
}

FAMILY = {
    "SC": "invalidation",
    "Owned": "invalidation",
    "SelfInvalidate": "barrier",
    "DynamicUpdate": "update",
}


@pytest.mark.parametrize("name", sorted(TABLES))
def test_table_verifies_clean_at_certificate_scope(name):
    result = check_table(TABLES[name], Scope(nodes=2, regions=1, ops=2))
    assert result.ok, result.violations[0].render()
    assert result.family == FAMILY[name]
    assert result.states > 100  # the scope is small, not trivial
    assert result.fingerprint == TABLES[name].fingerprint()


@pytest.mark.parametrize("name", sorted(TABLES))
def test_every_seeded_mutation_is_refuted(name):
    mutations = seeded_mutations(TABLES[name])
    assert mutations, f"{name}: no seeded mutations generated"
    for label, broken in mutations:
        result = check_table(broken, Scope(nodes=2, regions=1, ops=2))
        assert not result.ok, f"{name}/{label}: checker certified a known-broken table"
        v = result.violations[0]
        # A refutation must carry an actionable minimal counterexample.
        assert v.trace, f"{name}/{label}: violation with no trace"
        assert v.invariant in result.invariants
        rendered = v.render()
        assert "counterexample" in rendered and v.invariant in rendered


def test_mutation_counterexamples_are_short():
    """BFS guarantees minimal-length traces; the canonical SC mutations
    should all reproduce within a dozen steps at the smallest scope."""
    for label, broken in seeded_mutations(MSI_TABLE):
        result = check_table(broken, Scope(nodes=2, regions=1, ops=2))
        assert len(result.violations[0].trace) <= 15, label


@pytest.mark.parametrize("name", sorted(TABLES))
def test_committed_certificate_is_pinned_to_table_fingerprint(name):
    path = CERT_DIR / f"{name}.json"
    assert path.exists(), f"missing certificate {path}; run tools/modelcheck.py --write-certs"
    cert = json.loads(path.read_text())
    assert cert["ok"] is True
    assert cert["violations"] == []
    assert cert["table_fingerprint"] == TABLES[name].fingerprint(), (
        f"{name}: table edited without re-certifying; "
        "run tools/modelcheck.py --write-certs"
    )
    assert cert["family"] == FAMILY[name]
    assert cert["states"] > 0 and cert["transitions"] > 0


def test_registry_table_of_feeds_the_checker():
    """The CLI resolves tables through the registry, not imports."""
    table = default_registry.table_of("Owned")
    assert table is OWNED_TABLE
    # Every shipped protocol is table-driven; the configuration file
    # exports each table's metadata alongside the legacy spec fields.
    cfg = default_registry.config_table()
    for name in default_registry.names():
        assert default_registry.table_of(name) is not None, name
        assert "sync_model" in cfg[name] and "base_state" in cfg[name], name
    assert cfg["Owned"]["sync_model"] == "access"
    assert cfg["Owned"]["writer_model"] == "copy"
    assert cfg["SelfInvalidate"]["sync_model"] == "barrier"
    assert cfg["SelfInvalidate"]["writer_model"] == "epoch"
    assert cfg["SelfInvalidate"]["base_state"] == "invalid"
    assert cfg["HomeWrite"]["home_writer"] is True


def test_model_for_rejects_unmodeled_combination():
    odd = MSI_TABLE.with_(name="Odd", writer_model="serialized")
    with pytest.raises(ModelCheckError):
        model_for(odd, Scope())


def test_stale_read_has_a_readable_trace():
    """The rendered counterexample names concrete steps an engineer can
    replay: node actions, message deliveries, the violated invariant."""
    broken = None
    for label, table in seeded_mutations(MSI_TABLE):
        if label == "invalidate-ack-drops-writeback":
            broken = table
    result = check_table(broken, Scope(nodes=2, regions=1, ops=2))
    text = result.violations[0].render()
    assert "no_stale_read" in text
    assert any(ch.isdigit() for ch in text)  # numbered steps
