"""Tests for the schedule fuzzer: shipped protocols survive the sweep,
a deliberately broken protocol is caught, and seeds are replayable."""

import numpy as np
import pytest

from repro.facade import run_spmd
from repro.protocols import ProtocolRegistry, ProtocolSpec, default_registry
from repro.protocols.caching import CachedCopyProtocol
from repro.sim import Delay
from repro.verify import fuzz_schedules

SEEDS = range(1, 13)


def _counter_program_factory(protocol="SC"):
    def factory():
        boxes = {}

        def prog(ctx):
            sid = yield from ctx.new_space(protocol)
            if ctx.nid == 0:
                boxes["rid"] = yield from ctx.gmalloc(sid, 1)
            yield from ctx.barrier()
            rid = boxes["rid"]
            h = yield from ctx.map(rid)
            seen = []
            for _ in range(4):
                yield from ctx.lock(rid)
                yield from ctx.start_write(h)
                h.data[0] += 1
                seen.append(h.data[0])
                yield from ctx.end_write(h)
                yield from ctx.unlock(rid)
            yield from ctx.barrier()
            data = yield from ctx.read_region(h)
            return (data[0], tuple(seen))

        return prog

    return factory


def _expect_total(n_procs, schedules=None):
    expected = float(n_procs * 4)

    def invariant(result):
        if schedules is not None:
            schedules.append(tuple(seen for _, seen in result.results))
        if any(total != expected for total, _ in result.results):
            return f"lost update: nodes saw {result.results}, expected {expected}"
        return None

    return invariant


@pytest.mark.parametrize("protocol", ["SC", "Counter", "HwSC"])
def test_shipped_protocols_survive_schedule_fuzzing(protocol):
    schedules = []
    report = fuzz_schedules(
        _counter_program_factory(protocol),
        _expect_total(4, schedules),
        n_procs=4,
        seeds=SEEDS,
    )
    assert report.ok, report.summary()
    assert report.seeds_run == len(list(SEEDS))
    # the fuzzer genuinely explored different interleavings: the order in
    # which nodes won the lock differs across seeds
    assert len(set(schedules)) > 1


def test_fuzzer_catches_a_broken_protocol():
    """An update protocol that 'forgets' to wait for propagation acks
    is exactly the bug schedule fuzzing exists to catch."""
    registry = ProtocolRegistry()
    for name in default_registry.names():
        registry.register(default_registry.get(name))

    @registry.register
    class BrokenUpdate(CachedCopyProtocol):
        spec = ProtocolSpec(
            name="BrokenUpdate",
            optimizable=True,
            null_hooks=frozenset({"start_read", "end_read", "start_write"}),
            description="deliberately broken: fire-and-forget updates, no drain",
        )

        def end_write(self, nid, handle):
            region = handle.region
            yield Delay(4)
            data = np.array(handle.data, copy=True)
            targets = [n for n in range(self.machine.n_procs) if n != nid]
            for t in targets:
                self.machine.post(
                    nid, t, self._on_push, region.rid, data,
                    payload_words=region.size, category="proto.BrokenUpdate.push",
                )
            # BUG: returns immediately; the barrier won't wait for pushes

        def _on_push(self, node, src, rid, data):
            copy = self._copies[node.nid].get(rid)
            if copy is not None:
                np.copyto(copy.data, data)
                copy.state = "valid"
            region = self.regions.get(rid)
            if node.nid == region.home:
                np.copyto(region.home_data, data)

    def factory():
        boxes = {}

        def prog(ctx):
            sid = yield from ctx.new_space("BrokenUpdate")
            if ctx.nid == 0:
                boxes["rid"] = yield from ctx.gmalloc(sid, 1)
            yield from ctx.barrier()
            h = yield from ctx.map(boxes["rid"])
            yield from ctx.barrier()
            if ctx.nid == 1:
                yield from ctx.start_write(h)
                h.data[0] = 42.0
                yield from ctx.end_write(h)
            yield from ctx.barrier()  # does NOT drain the broken pushes
            yield from ctx.start_read(h)
            out = h.data[0]
            yield from ctx.end_read(h)
            return out

        return prog

    def invariant(result):
        if any(r != 42.0 for r in result.results):
            return f"stale read after barrier: {result.results}"
        return None

    report = fuzz_schedules(
        factory, invariant, n_procs=4, seeds=range(1, 25), registry=registry
    )
    assert not report.ok
    assert "stale read" in report.summary()


def test_violating_seed_is_replayable():
    """Any reported seed reproduces its schedule exactly."""
    factory = _counter_program_factory("SC")
    r1 = run_spmd(factory(), backend="ace", n_procs=4, jitter_seed=7)
    r2 = run_spmd(factory(), backend="ace", n_procs=4, jitter_seed=7)
    assert r1.time == r2.time
    assert r1.results == r2.results
    r3 = run_spmd(factory(), backend="ace", n_procs=4, jitter_seed=8)
    # different seed: same answer (the protocol is correct), often
    # different schedule; we only require determinism per seed
    assert r3.results == r1.results


def test_report_summary_strings():
    factory = _counter_program_factory("SC")
    ok = fuzz_schedules(factory, _expect_total(2), n_procs=2, seeds=[1, 2, 3])
    assert "no violations" in ok.summary()
    bad = fuzz_schedules(factory, lambda r: "nope", n_procs=2, seeds=[1, 2])
    assert "2/2 schedules" in bad.summary()
    assert bad.violations[0].seed == 1


def test_failing_seeds_deduped_and_sorted():
    from repro.verify.fuzz import FuzzReport, Violation

    report = FuzzReport(seeds_run=5)
    for seed in (9, 3, 9, 1, 3):
        report.violations.append(Violation(seed, "boom"))
    assert report.failing_seeds == [1, 3, 9]
    # summary uses the canonical list, so two reports with the same
    # failing set render identically whatever the sweep order was.
    assert "failing seeds [1, 3, 9]" in report.summary()
