"""Schedule-fuzz the update-protocol family with a producer-consumer
workload: whatever the interleaving, every consumer must observe the
epoch's value after the space barrier."""

import pytest

from repro.verify import fuzz_schedules

SEEDS = range(1, 11)


def _producer_consumer_factory(protocol):
    def factory():
        boxes = {}

        def prog(ctx):
            sid = yield from ctx.new_space(protocol)
            if ctx.nid == 0:
                boxes["rid"] = yield from ctx.gmalloc(sid, 2)
            yield from ctx.barrier(sid)
            h = yield from ctx.map(boxes["rid"])
            yield from ctx.barrier(sid)
            seen = []
            for epoch in range(4):
                writer = 0 if protocol == "StaticUpdate" else epoch % ctx.n_procs
                if ctx.nid == writer:
                    yield from ctx.start_write(h)
                    h.data[0] = epoch + 1
                    h.data[1] = (epoch + 1) * 10
                    yield from ctx.end_write(h)
                yield from ctx.barrier(sid)
                yield from ctx.start_read(h)
                seen.append((h.data[0], h.data[1]))
                yield from ctx.end_read(h)
                yield from ctx.barrier(sid)
            return seen

        return prog

    return factory


def _invariant(result):
    expected = [(float(e + 1), float((e + 1) * 10)) for e in range(4)]
    for nid, seen in enumerate(result.results):
        if seen != expected:
            return f"node {nid} saw {seen}, expected {expected}"
    return None


@pytest.mark.parametrize(
    "protocol", ["DynamicUpdate", "StaticUpdate", "BufferedUpdate", "PipelinedWrite", "RaceDetect"]
)
def test_update_protocols_survive_schedule_fuzzing(protocol):
    report = fuzz_schedules(
        _producer_consumer_factory(protocol), _invariant, n_procs=4, seeds=SEEDS
    )
    assert report.ok, f"{protocol}: {report.summary()}"
